#!/usr/bin/env python3
"""Campus AR scenario: trace-driven demand estimation + Heu placement.

Models the paper's motivating deployment - a campus-scale web AR
application (navigation overlays, recognition of buildings) served by
a small MEC network:

1. synthesize AR frame traces with the statistics of Braud et al. [5]
   (64 KB JPEG frames at 90-120 fps),
2. estimate the discrete (data-rate, reward) distribution ``DR`` from
   the traces - exactly how a provider would build it from history,
3. place a lecture-break burst of requests with algorithm Heu and
   narrate where every pipeline lands (including task migrations).

Run:
    python examples/ar_campus.py [seed]
"""

import sys
from dataclasses import replace

from repro import Heu, ProblemInstance, SimulationConfig, run_offline
from repro.requests.request import ARRequest
from repro.requests.tasks import standard_ar_pipeline
from repro.requests.traces import (TraceSynthesizer,
                                   rate_distribution_from_traces)
from repro.rng import RngForks


def build_workload(instance, seed, num_requests=40):
    """Trace-driven requests: every user's DR comes from history."""
    forks = RngForks(seed)
    synth = TraceSynthesizer(rng=forks.child("traces"))
    history = [synth.synthesize(duration_s=6.0) for _ in range(8)]
    station_rng = forks.child("stations")
    price_rng = forks.child("prices")
    task_rng = forks.child("tasks")

    requests = []
    for j in range(num_requests):
        unit_price = float(price_rng.uniform(12.0, 15.0))
        distribution = rate_distribution_from_traces(
            history, num_levels=5, unit_price=unit_price)
        requests.append(ARRequest(
            request_id=j,
            serving_station=int(station_rng.choice(
                instance.network.station_ids)),
            pipeline=standard_ar_pipeline(int(task_rng.integers(3, 6))),
            distribution=distribution,
            deadline_ms=200.0,
            c_unit_mhz_per_mbps=instance.c_unit,
        ))
    return requests


def main(seed: int = 11) -> None:
    config = SimulationConfig(seed=seed)
    config = replace(config, network=replace(config.network,
                                             num_base_stations=10))
    instance = ProblemInstance.build(config)
    workload = build_workload(instance, seed)

    sample = workload[0].distribution
    print("Historical DR estimate from synthesized campus traces:")
    for rate, prob, reward in zip(sample.rates_mbps,
                                  sample.probabilities, sample.rewards):
        print(f"  rate {rate:6.1f} MB/s  p={prob:.3f}  "
              f"reward ${reward:6.1f}")

    algorithm = Heu()
    result = run_offline(algorithm, instance, workload, seed=seed)

    print(f"\nHeu placed the lecture-break burst "
          f"({len(workload)} requests):")
    print(f"  total reward   : ${result.total_reward:.0f}")
    print(f"  admitted       : {result.num_admitted}/{len(workload)}")
    print(f"  avg latency    : {result.average_latency_ms():.1f} ms "
          f"(deadline 200 ms)")
    print(f"  task migrations: {algorithm.last_num_migrations}")

    print("\nPer-station placements:")
    by_station = {}
    for decision in result.decisions.values():
        if decision.admitted:
            by_station.setdefault(decision.primary_station,
                                  []).append(decision)
    for sid in sorted(by_station):
        group = by_station[sid]
        migrated = sum(1 for d in group if d.migrated_tasks)
        print(f"  bs{sid:<2} hosts {len(group):2d} pipelines "
              f"({migrated} with migrated tasks), rewards "
              f"${sum(d.reward for d in group):7.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
