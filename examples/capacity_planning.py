#!/usr/bin/env python3
"""Capacity planning: how many base stations does a workload need?

Uses the Fig. 5 machinery as a planning tool: sweep the number of base
stations for a fixed 150-request workload, run Heu on each topology,
and report the smallest deployment meeting a reward target and a
latency budget - the question a provider adopting MEC actually asks.

Run:
    python examples/capacity_planning.py [seed]
"""

import sys

from repro import Heu, ProblemInstance, run_offline
from repro.experiments.settings import config_with_stations

STATION_SWEEP = (5, 10, 15, 20, 30, 40)
NUM_REQUESTS = 150
LATENCY_BUDGET_MS = 80.0


def main(seed: int = 3) -> None:
    rows = []
    for num_stations in STATION_SWEEP:
        config = config_with_stations(num_stations, seed=seed)
        instance = ProblemInstance.build(config, seed=seed)
        workload = instance.new_workload(NUM_REQUESTS, seed=seed)
        result = run_offline(Heu(), instance, workload, seed=seed)
        rows.append((num_stations, result))

    best_reward = max(r.total_reward for _n, r in rows)
    print(f"Heu on {NUM_REQUESTS} requests, sweeping |BS|:\n")
    print(f"{'stations':>9} {'reward $':>10} {'of best':>8} "
          f"{'admitted':>9} {'avg latency':>12}")
    for num_stations, result in rows:
        print(f"{num_stations:>9} {result.total_reward:>10.0f} "
              f"{result.total_reward / best_reward:>7.0%} "
              f"{result.num_admitted:>9} "
              f"{result.average_latency_ms():>9.1f} ms")

    # Where would extra capacity pay the most on the chosen topology?
    from repro.core.sensitivity import capacity_value_per_station

    config = config_with_stations(20, seed=seed)
    instance = ProblemInstance.build(config, seed=seed)
    workload = instance.new_workload(NUM_REQUESTS, seed=seed)
    ranked = capacity_value_per_station(instance, workload)
    hot = [v for v in ranked if v.shadow_price > 0][:3]
    if hot:
        print("\nAt 20 stations, extra capacity pays the most at:")
        for value in hot:
            print(f"  bs{value.station_id}: "
                  f"${value.shadow_price:.1f} per extra MB/s of "
                  f"servable rate")

    chosen = None
    for num_stations, result in rows:
        if (result.total_reward >= 0.9 * best_reward
                and result.average_latency_ms() <= LATENCY_BUDGET_MS):
            chosen = (num_stations, result)
            break
    print()
    if chosen:
        num_stations, result = chosen
        print(f"Recommendation: {num_stations} stations - first "
              f"deployment reaching 90% of peak reward "
              f"(${result.total_reward:.0f}) within the "
              f"{LATENCY_BUDGET_MS:.0f} ms latency budget.")
    else:
        print("No swept deployment meets the targets; extend the "
              "sweep or relax the budget.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
