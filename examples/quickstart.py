#!/usr/bin/env python3
"""Quickstart: place a batch of AR requests and compare algorithms.

Builds the paper's default MEC network (20 base stations, Section VI-A
parameters), draws a 150-request workload with uncertain data rates,
and runs the two proposed offline algorithms against the three
baselines on the *same* realizations.

Run:
    python examples/quickstart.py [seed]
"""

import sys

from repro import (Appro, GreedyOffline, Heu, HeuKktOffline,
                   OcorpOffline, ProblemInstance, SimulationConfig,
                   run_offline)


def main(seed: int = 7) -> None:
    config = SimulationConfig(seed=seed)
    instance = ProblemInstance.build(config)
    print(f"MEC network: {len(instance.network)} base stations, "
          f"{instance.network.total_capacity_mhz():.0f} MHz total, "
          f"slot size C_l = {instance.slot_size_mhz:.0f} MHz")

    algorithms = [Appro(), Heu(), GreedyOffline(), OcorpOffline(),
                  HeuKktOffline()]
    print(f"\nPlacing {config.requests.num_requests} AR requests "
          f"(data rates {config.requests.data_rate_range_mbps} MB/s, "
          f"revealed only at scheduling time):\n")
    header = (f"{'algorithm':>10} {'reward $':>10} {'admitted':>9} "
              f"{'rewarded':>9} {'avg latency':>12} {'runtime':>9}")
    print(header)
    print("-" * len(header))
    for algorithm in algorithms:
        workload = instance.new_workload(seed=seed)
        result = run_offline(algorithm, instance, workload, seed=seed)
        print(f"{result.algorithm:>10} {result.total_reward:>10.0f} "
              f"{result.num_admitted:>9} {result.num_rewarded:>9} "
              f"{result.average_latency_ms():>9.1f} ms "
              f"{result.runtime_s:>7.3f} s")

    print("\nThe proposed algorithms (Appro, Heu) hedge against the "
          "data-rate uncertainty\nwith resource-slot-indexed placement "
          "and expected-reward-aware selection;\nthe baselines pack by "
          "point estimates and pay for it in forfeited rewards.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
