#!/usr/bin/env python3
"""Online learning demo: watch DynamicRR tune its threshold C^th.

Streams a bursty arrival pattern through the slotted online engine
under algorithm DynamicRR (Algorithm 3) and reports:

* the successive-elimination state of the threshold bandit (which arms
  survived, how often each was played),
* the reward/latency outcome against the online baselines on the same
  arrivals,
* the empirical regret curve of the threshold bandit.

Run:
    python examples/online_adaptation.py [seed]
"""

import sys

from repro import (DynamicRR, GreedyOnline, HeuKktOnline, OcorpOnline,
                   OnlineEngine, ProblemInstance, SimulationConfig)

HORIZON = 150
NUM_REQUESTS = 350


def main(seed: int = 5) -> None:
    config = SimulationConfig(seed=seed)
    instance = ProblemInstance.build(config)

    print(f"Monitoring period T = {HORIZON} slots "
          f"({HORIZON * config.online.slot_length_ms / 1000:.1f} s), "
          f"{NUM_REQUESTS} arrivals\n")

    print(f"{'policy':>10} {'reward $':>10} {'admitted':>9} "
          f"{'avg latency':>12}")
    results = {}
    dynamic_policy = None
    for factory in (DynamicRR, GreedyOnline, OcorpOnline,
                    HeuKktOnline):
        policy = factory()
        workload = instance.new_workload(NUM_REQUESTS, seed=seed,
                                         horizon_slots=HORIZON)
        engine = OnlineEngine(instance, workload, horizon_slots=HORIZON,
                              rng=seed)
        result = engine.run(policy)
        results[result.algorithm] = result
        if isinstance(policy, DynamicRR):
            dynamic_policy = policy
        print(f"{result.algorithm:>10} {result.total_reward:>10.0f} "
              f"{result.num_admitted:>9} "
              f"{result.average_latency_ms():>9.1f} ms")

    assert dynamic_policy is not None
    bandit = dynamic_policy.bandit
    grid = bandit.grid
    policy_state = bandit.policy
    print("\nThreshold bandit state after the run "
          f"(kappa={grid.num_arms}, eps={grid.epsilon:.0f} MHz):")
    for arm in range(grid.num_arms):
        active = "active" if arm in policy_state.active_arms() \
            else "eliminated"
        print(f"  C^th={grid.value(arm):6.0f} MHz  "
              f"plays={policy_state.count(arm):3d}  "
              f"mean={policy_state.mean(arm):.3f}  [{active}]")
    print(f"\nExploitation choice: C^th = "
          f"{dynamic_policy.current_threshold_mhz():.0f} MHz")

    curve = dynamic_policy.tracker.regret_curve()
    if curve.size:
        marks = [int(curve.size * f) - 1 for f in (0.25, 0.5, 0.75, 1.0)]
        print("Empirical regret (vs best played arm): "
              + ", ".join(f"t={m + 1}:{curve[m]:.1f}" for m in marks))
        print("Theorem 3 shape bound at T: "
              f"{bandit.regret_bound(lipschitz_eta=0.001):.1f} "
              "(up to constants)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
