#!/usr/bin/env python3
"""Failure injection: DynamicRR routing around a base-station outage.

The paper motivates MEC offloading with "network uncertainties" beyond
demand uncertainty.  This example knocks three base stations out for
the middle third of the monitoring period and shows how DynamicRR's
per-slot LP-PT placement routes around the hole, with the engine's
event timeline narrating the episode.

Run:
    python examples/failure_injection.py [seed]
"""

import sys

from repro import DynamicRR, OnlineEngine, ProblemInstance, \
    SimulationConfig
from repro.sim.timeline import strip_chart, summarize_events

HORIZON = 120
NUM_REQUESTS = 300
DEAD_STATIONS = (0, 1, 2)


def run(instance, workload, outages, seed):
    engine = OnlineEngine(instance, workload, horizon_slots=HORIZON,
                          rng=seed, outages=outages)
    policy = DynamicRR(rng=seed)
    result = engine.run(policy)
    return engine, result


def main(seed: int = 9) -> None:
    config = SimulationConfig(seed=seed)
    instance = ProblemInstance.build(config)
    window = (HORIZON // 3, 2 * HORIZON // 3)
    outages = {sid: window for sid in DEAD_STATIONS}

    workload = instance.new_workload(NUM_REQUESTS, seed=seed,
                                     horizon_slots=HORIZON)
    _, healthy = run(instance, workload, None, seed)
    workload = instance.new_workload(NUM_REQUESTS, seed=seed,
                                     horizon_slots=HORIZON)
    engine, degraded = run(instance, workload, outages, seed)

    lost_capacity = sum(
        instance.network.station(sid).capacity_mhz
        for sid in DEAD_STATIONS) / instance.network.total_capacity_mhz()
    print(f"Outage: stations {DEAD_STATIONS} down for slots "
          f"{window[0]}..{window[1]} "
          f"({lost_capacity:.0%} of capacity)\n")
    print(f"{'scenario':>10} {'reward $':>10} {'admitted':>9} "
          f"{'avg latency':>12}")
    for label, result in (("healthy", healthy), ("degraded", degraded)):
        print(f"{label:>10} {result.total_reward:>10.0f} "
              f"{result.num_admitted:>9} "
              f"{result.average_latency_ms():>9.1f} ms")
    delta = 1.0 - degraded.total_reward / healthy.total_reward
    print(f"\nReward lost to the outage: {delta:.1%} "
          f"(vs {lost_capacity:.0%} capacity lost for a third of the "
          f"horizon)")

    placed_on_dead = sum(
        1 for d in degraded.decisions.values()
        if d.admitted and d.primary_station in DEAD_STATIONS
        and window[0] <= d.waiting_ms / 50.0 <= window[1])
    print(f"Requests started on dead stations during the outage: "
          f"{placed_on_dead}")

    print("\nEvent density over the degraded run:")
    print(strip_chart(engine.events, horizon_slots=HORIZON, width=60))
    totals = summarize_events(engine.events)
    print(f"\nTotals: {totals}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9)
