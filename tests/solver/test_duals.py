"""Tests for LP dual extraction."""

import pytest

from repro.exceptions import InfeasibleProblemError
from repro.solver.duals import solve_lp_with_duals
from repro.solver.model import LinearProgram


class TestTextbookDuals:
    def make_lp(self):
        # max 3x + 2y s.t. x + y <= 4 (binding), x <= 10 (slack).
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=3.0)
        lp.add_variable("y", objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 4.0, name="cap")
        lp.add_constraint({"x": 1.0}, "<=", 10.0, name="loose")
        return lp

    def test_objective_matches_primal(self):
        dual = solve_lp_with_duals(self.make_lp())
        assert dual.objective == pytest.approx(12.0)  # x=4, y=0

    def test_binding_row_has_positive_price(self):
        dual = solve_lp_with_duals(self.make_lp())
        # Relaxing cap by 1 gains 3 (one more x).
        assert dual.shadow_price("cap") == pytest.approx(3.0)
        assert "cap" in dual.binding()

    def test_slack_row_has_zero_price(self):
        dual = solve_lp_with_duals(self.make_lp())
        assert dual.shadow_price("loose") == pytest.approx(0.0)
        assert dual.slacks["loose"] == pytest.approx(6.0)
        assert "loose" not in dual.binding()

    def test_absent_constraint_price_zero(self):
        dual = solve_lp_with_duals(self.make_lp())
        assert dual.shadow_price("nope") == 0.0

    def test_duality_gap_zero(self):
        """Strong duality: sum of duals x rhs equals the optimum for a
        problem whose optimum is supported by rows alone."""
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 2.0, name="r1")
        lp.add_constraint({"y": 1.0}, "<=", 3.0, name="r2")
        dual = solve_lp_with_duals(lp)
        dual_value = (dual.shadow_price("r1") * 2.0
                      + dual.shadow_price("r2") * 3.0)
        assert dual_value == pytest.approx(dual.objective)

    def test_equality_row_dual(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=5.0)
        lp.add_constraint({"x": 1.0}, "==", 2.0, name="fix")
        dual = solve_lp_with_duals(lp)
        assert dual.objective == pytest.approx(10.0)
        assert dual.shadow_price("fix") == pytest.approx(5.0)

    def test_infeasible_raises(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleProblemError):
            solve_lp_with_duals(lp)


class TestMinimization:
    def test_sign_convention(self):
        # min x s.t. x >= 3: tightening costs, dual reported for the
        # negated <= form.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, ">=", 3.0, name="floor")
        dual = solve_lp_with_duals(lp)
        assert dual.objective == pytest.approx(3.0)
        assert "floor" in dual.binding()
