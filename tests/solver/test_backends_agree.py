"""Cross-validation: the from-scratch solvers agree with HiGHS.

Property-based tests generate random feasible programs and assert both
LP backends find the same optimum, and both ILP backends find the same
optimum.  This is the license to use HiGHS for the big experiment
sweeps while claiming the from-scratch solver as the reference
implementation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProblemError
from repro.solver.interface import solve_ilp, solve_lp
from repro.solver.model import LinearProgram


def random_lp(seed: int, n_vars: int, n_rows: int,
              integer: bool) -> LinearProgram:
    """A random bounded-feasible program (x=0 always feasible)."""
    rng = np.random.default_rng(seed)
    lp = LinearProgram(name=f"rand{seed}", maximize=True)
    for j in range(n_vars):
        lp.add_variable(f"x{j}", low=0.0,
                        high=float(rng.uniform(0.5, 3.0)),
                        objective=float(rng.uniform(-1.0, 5.0)),
                        integer=integer)
    for i in range(n_rows):
        coeffs = {f"x{j}": float(rng.uniform(0.0, 2.0))
                  for j in range(n_vars)}
        lp.add_constraint(coeffs, "<=", float(rng.uniform(1.0, 6.0)))
    return lp


class TestLpBackendsAgree:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_programs(self, seed):
        lp = random_lp(seed, n_vars=5, n_rows=4, integer=False)
        scipy_sol = solve_lp(lp, backend="scipy")
        simplex_sol = solve_lp(lp, backend="simplex")
        assert scipy_sol.objective == pytest.approx(
            simplex_sol.objective, abs=1e-6)
        assert lp.check_feasible(simplex_sol.values) == []

    def test_larger_program(self):
        lp = random_lp(99, n_vars=25, n_rows=15, integer=False)
        a = solve_lp(lp, backend="scipy").objective
        b = solve_lp(lp, backend="simplex").objective
        assert a == pytest.approx(b, abs=1e-5)


class TestIlpBackendsAgree:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_integer_programs(self, seed):
        lp = random_lp(seed, n_vars=4, n_rows=3, integer=True)
        scipy_sol = solve_ilp(lp, backend="scipy")
        bnb_sol = solve_ilp(lp, backend="bnb")
        assert scipy_sol.objective == pytest.approx(
            bnb_sol.objective, abs=1e-6)
        assert lp.check_feasible(bnb_sol.values) == []

    def test_bnb_over_simplex_oracle(self):
        lp = random_lp(7, n_vars=4, n_rows=3, integer=True)
        a = solve_ilp(lp, backend="scipy").objective
        b = solve_ilp(lp, backend="bnb", lp_backend="simplex").objective
        assert a == pytest.approx(b, abs=1e-6)


class TestPaperLpAgreement:
    def test_actual_relaxation_instance(self, small_instance,
                                        tiny_workload):
        from repro.core.lp_relaxation import build_lp_relaxation

        lp, _ = build_lp_relaxation(small_instance, tiny_workload)
        a = solve_lp(lp, backend="scipy")
        b = solve_lp(lp, backend="simplex")
        assert a.objective == pytest.approx(b.objective, rel=1e-6)

    def test_actual_ilp_rm_instance(self, small_instance, tiny_workload):
        from repro.core.ilp_rm import build_ilp_rm

        ilp, _ = build_ilp_rm(small_instance, tiny_workload)
        a = solve_ilp(ilp, backend="scipy")
        b = solve_ilp(ilp, backend="bnb")
        assert a.objective == pytest.approx(b.objective, rel=1e-6)


class TestInterface:
    def test_unknown_backends(self):
        lp = random_lp(0, 2, 1, integer=False)
        from repro.exceptions import SolverError
        with pytest.raises(SolverError):
            solve_lp(lp, backend="gurobi")
        with pytest.raises(SolverError):
            solve_ilp(lp, backend="cplex")

    def test_solution_helpers(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", high=1.0, objective=1.0)
        lp.add_variable("y", high=1.0, objective=0.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        sol = solve_lp(lp)
        assert sol.value("x") == pytest.approx(1.0)
        assert "x" in sol.nonzero()
        assert "y" not in sol.nonzero()
        assert sol.solve_time_s >= 0.0

    def test_infeasible_propagates(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleProblemError):
            solve_lp(lp, backend="scipy")
        with pytest.raises(InfeasibleProblemError):
            solve_lp(lp, backend="simplex")
