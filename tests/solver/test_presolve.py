"""Unit and property tests for LP presolve."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProblemError
from repro.solver.model import LinearProgram
from repro.solver.presolve import presolve, solve_with_presolve
from repro.solver.scipy_backend import solve_lp_scipy
from repro.solver.simplex import solve_with_simplex


class TestReductions:
    def test_fixed_variable_substituted(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=2.0, high=2.0, objective=3.0)
        lp.add_variable("y", low=0.0, high=5.0, objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 6.0)
        reduced, recover, offset = presolve(lp)
        assert reduced.num_variables == 1
        assert offset == pytest.approx(6.0)
        # The constraint rhs absorbed the fixed part: y <= 4.
        con = reduced.constraints[0]
        assert con.rhs == pytest.approx(4.0)
        full = recover({"y": 4.0})
        assert full == {"x": 2.0, "y": 4.0}

    def test_singleton_row_becomes_bound(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 2.0}, "<=", 6.0)   # x <= 3
        lp.add_constraint({"x": 1.0}, ">=", 1.0)   # x >= 1
        reduced, _recover, _offset = presolve(lp)
        assert reduced.num_constraints == 0
        var = reduced.variable("x")
        assert var.low == pytest.approx(1.0)
        assert var.high == pytest.approx(3.0)

    def test_negative_coefficient_singleton_flips_sense(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": -1.0}, "<=", -2.0)  # x >= 2
        reduced, _r, _o = presolve(lp)
        assert reduced.variable("x").low == pytest.approx(2.0)

    def test_conflicting_singletons_infeasible(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleProblemError):
            presolve(lp)

    def test_equality_singleton_fixes_variable(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=0.0, high=10.0, objective=1.0)
        lp.add_variable("y", low=0.0, high=1.0, objective=1.0)
        lp.add_constraint({"x": 1.0}, "==", 4.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 4.5)
        reduced, recover, offset = presolve(lp)
        assert reduced.num_variables == 1
        assert offset == pytest.approx(4.0)
        con = reduced.constraints[0]
        assert con.rhs == pytest.approx(0.5)

    def test_reduced_empty_row_checked(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=3.0, high=3.0, objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 2.0)  # 3 <= 2: infeasible
        with pytest.raises(InfeasibleProblemError):
            presolve(lp)


class TestSolveWithPresolve:
    def test_matches_direct_solve(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=1.0, high=1.0, objective=2.0)
        lp.add_variable("y", high=3.0, objective=1.0)
        lp.add_variable("z", high=2.0, objective=1.5)
        lp.add_constraint({"x": 1.0, "y": 1.0, "z": 1.0}, "<=", 4.0)
        lp.add_constraint({"z": 1.0}, "<=", 1.5)
        direct_obj, _ = solve_with_simplex(lp)
        pre_obj, values = solve_with_presolve(lp, solve_with_simplex)
        assert pre_obj == pytest.approx(direct_obj)
        assert lp.check_feasible(values) == []

    def test_fully_fixed_model(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=2.0, high=2.0, objective=5.0)
        obj, values = solve_with_presolve(lp, solve_with_simplex)
        assert obj == pytest.approx(10.0)
        assert values == {"x": 2.0}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_presolved_simplex_matches_scipy_property(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        lp = LinearProgram(maximize=True)
        n = 5
        for j in range(n):
            low = float(rng.uniform(0.0, 1.0))
            high = low if rng.random() < 0.3 else low + float(
                rng.uniform(0.5, 2.0))
            lp.add_variable(f"x{j}", low=low, high=high,
                            objective=float(rng.uniform(-1.0, 3.0)))
        for i in range(3):
            k = int(rng.integers(1, n + 1))
            cols = rng.choice(n, size=k, replace=False)
            coeffs = {f"x{j}": float(rng.uniform(0.1, 2.0))
                      for j in cols}
            lp.add_constraint(coeffs, "<=", float(rng.uniform(4.0, 12.0)))
        try:
            scipy_obj, _ = solve_lp_scipy(lp)
        except InfeasibleProblemError:
            # The random bounds can force a constraint's lhs above its
            # rhs even at all lower bounds (e.g. seed=505); the
            # property then is that both paths agree on infeasibility.
            with pytest.raises(InfeasibleProblemError):
                solve_with_presolve(lp, solve_with_simplex)
            return
        pre_obj, values = solve_with_presolve(lp, solve_with_simplex)
        assert pre_obj == pytest.approx(scipy_obj, abs=1e-6)
        assert lp.check_feasible(values) == []
