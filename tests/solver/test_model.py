"""Unit tests for the LinearProgram model container."""

import math

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.solver.model import LinearProgram


class TestVariables:
    def test_add_and_lookup(self):
        lp = LinearProgram()
        var = lp.add_variable("x", low=0.0, high=2.0, objective=3.0)
        assert var.index == 0
        assert lp.variable("x").objective == 3.0
        assert lp.num_variables == 1

    def test_duplicate_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ConfigurationError):
            lp.add_variable("x")

    def test_inverted_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ConfigurationError):
            lp.add_variable("x", low=2.0, high=1.0)

    def test_unknown_lookup(self):
        with pytest.raises(ConfigurationError):
            LinearProgram().variable("nope")

    def test_has_integers(self):
        lp = LinearProgram()
        lp.add_variable("x")
        assert not lp.has_integers
        lp.add_variable("y", integer=True)
        assert lp.has_integers


class TestConstraints:
    def test_senses(self):
        lp = LinearProgram()
        lp.add_variable("x")
        for sense in ("<=", ">=", "=="):
            lp.add_constraint({"x": 1.0}, sense, 1.0)
        assert lp.num_constraints == 3

    def test_bad_sense(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ConfigurationError):
            lp.add_constraint({"x": 1.0}, "<", 1.0)

    def test_unknown_variable(self):
        lp = LinearProgram()
        with pytest.raises(ConfigurationError):
            lp.add_constraint({"x": 1.0}, "<=", 1.0)

    def test_duplicate_name(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "<=", 1.0, name="c")
        with pytest.raises(ConfigurationError):
            lp.add_constraint({"x": 1.0}, "<=", 2.0, name="c")

    def test_empty_row_trivially_ok(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 0.0}, "<=", 1.0)  # all-zero coefficients

    def test_empty_row_infeasible_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ConfigurationError):
            lp.add_constraint({"x": 0.0}, ">=", 1.0)


class TestExport:
    def test_dense_rows_shapes(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 4.0)
        lp.add_constraint({"x": 1.0}, ">=", 1.0)
        lp.add_constraint({"y": 1.0}, "==", 2.0)
        a_ub, b_ub, a_eq, b_eq = lp.dense_rows()
        assert a_ub.shape == (2, 2)
        assert a_eq.shape == (1, 2)
        # >= rows are negated into <= form.
        assert a_ub[1, 0] == -1.0 and b_ub[1] == -1.0

    def test_objective_vector(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=1.5)
        lp.add_variable("y", objective=-2.0)
        assert np.allclose(lp.objective_vector(), [1.5, -2.0])

    def test_bounds(self):
        lp = LinearProgram()
        lp.add_variable("x", low=1.0, high=2.0)
        lp.add_variable("y")
        assert lp.bounds() == [(1.0, 2.0), (0.0, math.inf)]

    def test_evaluate_objective(self):
        lp = LinearProgram()
        lp.add_variable("x", objective=2.0)
        lp.add_variable("y", objective=3.0)
        assert lp.evaluate_objective({"x": 1.0, "y": 2.0}) == 8.0
        assert lp.evaluate_objective({"x": 1.0}) == 2.0  # missing -> 0


class TestFeasibilityCheck:
    def test_detects_violations(self):
        lp = LinearProgram()
        lp.add_variable("x", low=0.0, high=1.0, integer=True)
        lp.add_constraint({"x": 1.0}, "<=", 0.5, name="cap")
        assert lp.check_feasible({"x": 0.0}) == []
        assert "constraint:cap" in lp.check_feasible({"x": 1.0})
        assert "bound:x" in lp.check_feasible({"x": 2.0})
        assert "integrality:x" in lp.check_feasible({"x": 0.4})

    def test_equality_violation(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_constraint({"x": 1.0}, "==", 1.0, name="eq")
        assert "constraint:eq" in lp.check_feasible({"x": 0.5})
        assert lp.check_feasible({"x": 1.0}) == []

    def test_repr(self):
        lp = LinearProgram(name="demo", maximize=False)
        lp.add_variable("x", integer=True)
        text = repr(lp)
        assert "demo" in text and "ILP" in text and "min" in text
