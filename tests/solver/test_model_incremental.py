"""Bulk construction, incremental edits, and sparse export of the model.

These APIs form the warm-started LP hot path: vectorized builders
append whole column blocks (`add_variables_bulk`), mutate single rows
in place (`update_constraint*`), and export CSR matrices in O(nnz)
(`sparse_rows`).  The tests pin the contract the solvers rely on -
byte-identical semantics to the scalar/dense paths.
"""

import math

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError
from repro.solver.model import LinearProgram


def knapsack_lp() -> LinearProgram:
    """A small mixed-sense LP touching every export branch."""
    lp = LinearProgram(name="knap")
    lp.add_variables_bulk(
        ["x0", "x1", "x2", "x3"],
        (0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 1.0, 1.0),
        np.array([3.0, 1.0, 4.0, 1.5]))
    lp.add_constraint_indexed({0: 2.0, 1: 1.0, 2: 3.0}, "<=", 4.0,
                              name="cap")
    lp.add_constraint_indexed({1: 1.0, 3: 1.0}, ">=", 0.5, name="floor")
    lp.add_constraint_indexed({0: 1.0, 3: -1.0}, "==", 0.0, name="tie")
    return lp


class TestBulkVariables:
    def test_block_appends_after_existing(self):
        lp = LinearProgram()
        lp.add_variable("w")
        first = lp.add_variables_bulk(["a", "b"], (0.0, 0.0),
                                      (1.0, 2.0), (0.5, 0.25))
        assert first == 1
        assert lp.num_variables == 3
        assert [v.name for v in lp.variables] == ["w", "a", "b"]
        assert lp.variable("b").high == 2.0
        assert lp.variable("b").objective == 0.25

    def test_numpy_objectives_round_trip(self):
        lp = LinearProgram()
        objs = np.linspace(0.1, 0.9, 5)
        lp.add_variables_bulk([f"y{i}" for i in range(5)],
                              (0.0,) * 5, (1.0,) * 5, objs)
        assert lp.objective_vector().tolist() == objs.tolist()

    def test_mismatched_lengths_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ConfigurationError):
            lp.add_variables_bulk(["a", "b"], (0.0,), (1.0, 1.0),
                                  (0.0, 0.0))

    def test_duplicate_rejected(self):
        lp = LinearProgram()
        lp.add_variable("a")
        with pytest.raises(ConfigurationError):
            lp.add_variables_bulk(["b", "a"], (0.0, 0.0), (1.0, 1.0),
                                  (0.0, 0.0))

    def test_inverted_bounds_rejected(self):
        lp = LinearProgram()
        with pytest.raises(ConfigurationError):
            lp.add_variables_bulk(["a"], (2.0,), (1.0,), (0.0,))

    def test_variable_names_in_column_order(self):
        lp = knapsack_lp()
        assert lp.variable_names() == ["x0", "x1", "x2", "x3"]


class TestIndexedConstraints:
    def test_row_content(self):
        lp = knapsack_lp()
        con = lp.constraints[0]
        assert con.coeffs == {0: 2.0, 1: 1.0, 2: 3.0}
        assert con.sense == "<=" and con.rhs == 4.0

    def test_structural_zero_dropped(self):
        lp = LinearProgram()
        lp.add_variables_bulk(["a", "b"], (0.0,) * 2, (1.0,) * 2,
                              (0.0,) * 2)
        con = lp.add_constraint_indexed({0: 0.0, 1: 1.0}, "<=", 1.0)
        assert con.coeffs == {1: 1.0}

    def test_out_of_range_rejected(self):
        lp = LinearProgram()
        lp.add_variable("a")
        with pytest.raises(ConfigurationError):
            lp.add_constraint_indexed({1: 1.0}, "<=", 1.0)
        with pytest.raises(ConfigurationError):
            lp.add_constraint_indexed({-1: 1.0}, "<=", 1.0)

    def test_empty_row_rules(self):
        lp = LinearProgram()
        lp.add_variable("a")
        lp.add_constraint_indexed({0: 0.0}, "<=", 1.0)  # trivially ok
        with pytest.raises(ConfigurationError):
            lp.add_constraint_indexed({0: 0.0}, ">=", 1.0)


class TestIncrementalEdits:
    def test_update_rhs_keeps_row_position(self):
        lp = knapsack_lp()
        before = [c.name for c in lp.constraints]
        lp.update_constraint_indexed("cap", {0: 2.0, 1: 1.0, 2: 3.0},
                                     rhs=5.0)
        assert [c.name for c in lp.constraints] == before
        assert lp.constraints[0].rhs == 5.0
        assert lp.constraints[0].sense == "<="

    def test_update_coeffs_by_name(self):
        lp = knapsack_lp()
        lp.update_constraint("floor", coeffs={"x1": 2.0})
        assert lp.constraints[1].coeffs == {1: 2.0}
        assert lp.constraints[1].rhs == 0.5  # rhs untouched

    def test_unknown_row_rejected(self):
        lp = knapsack_lp()
        with pytest.raises(ConfigurationError):
            lp.update_constraint_indexed("nope", {0: 1.0})

    def test_set_variable_bounds_and_objective(self):
        lp = knapsack_lp()
        lp.set_variable_bounds("x1", 0.25, 0.75)
        lp.set_objective("x1", 9.0)
        var = lp.variable("x1")
        assert (var.low, var.high, var.objective) == (0.25, 0.75, 9.0)

    def test_version_bumps_on_every_edit(self):
        lp = knapsack_lp()
        seen = {lp.version}
        lp.update_constraint_indexed("cap", {0: 1.0})
        seen.add(lp.version)
        lp.set_variable_bounds("x0", 0.0, 0.5)
        seen.add(lp.version)
        lp.set_objective("x0", 1.0)
        seen.add(lp.version)
        assert len(seen) == 4  # strictly increasing

    def test_content_key_tracks_content(self):
        lp = knapsack_lp()
        key = lp.content_key()
        assert lp.content_key() == key  # stable while unmutated
        assert knapsack_lp().content_key() == key  # content-based
        lp.update_constraint_indexed("cap", {0: 2.0, 1: 1.0, 2: 3.0},
                                     rhs=5.0)
        assert lp.content_key() != key


class TestSparseExport:
    def test_sparse_matches_dense(self):
        lp = knapsack_lp()
        a_ub, b_ub, a_eq, b_eq = lp.sparse_rows()
        d_ub, db_ub, d_eq, db_eq = lp.dense_rows()
        assert isinstance(a_ub, sparse.csr_array)
        np.testing.assert_array_equal(a_ub.toarray(), d_ub)
        np.testing.assert_array_equal(a_eq.toarray(), d_eq)
        np.testing.assert_array_equal(b_ub, db_ub)
        np.testing.assert_array_equal(b_eq, db_eq)

    def test_sparse_is_canonical_csr(self):
        lp = knapsack_lp()
        a_ub, _, a_eq, _ = lp.sparse_rows()
        ref_ub = sparse.csr_array(lp.dense_rows()[0])
        assert a_ub.indptr.tolist() == ref_ub.indptr.tolist()
        assert a_ub.indices.tolist() == ref_ub.indices.tolist()
        assert a_ub.data.tolist() == ref_ub.data.tolist()

    def test_export_cache_invalidated_by_edit(self):
        lp = knapsack_lp()
        first = lp.sparse_rows()
        assert lp.sparse_rows() is first  # cached while unmutated
        lp.update_constraint_indexed("cap", {0: 1.0}, rhs=2.0)
        second = lp.sparse_rows()
        assert second is not first
        assert second[0].toarray()[0, 0] == 1.0

    def test_empty_groups_have_column_width(self):
        lp = LinearProgram()
        lp.add_variables_bulk(["a", "b"], (0.0,) * 2, (1.0,) * 2,
                              (1.0,) * 2)
        lp.add_constraint_indexed({0: 1.0}, "<=", 1.0)
        a_ub, _, a_eq, b_eq = lp.sparse_rows()
        assert a_eq.shape == (0, 2)
        assert b_eq.size == 0


class TestUniformBounds:
    def test_shared_pair(self):
        lp = LinearProgram()
        lp.add_variables_bulk(["a", "b", "c"], (0.0,) * 3, (1.0,) * 3,
                              (0.0,) * 3)
        assert lp.uniform_bounds() == (0.0, 1.0)

    def test_disagreement_returns_none(self):
        lp = LinearProgram()
        lp.add_variable("a", low=0.0, high=1.0)
        lp.add_variable("b", low=0.0, high=math.inf)
        assert lp.uniform_bounds() is None

    def test_empty_model_returns_none(self):
        assert LinearProgram().uniform_bounds() is None

    def test_cache_tracks_edits(self):
        lp = LinearProgram()
        lp.add_variables_bulk(["a", "b"], (0.0,) * 2, (1.0,) * 2,
                              (0.0,) * 2)
        assert lp.uniform_bounds() == (0.0, 1.0)
        lp.set_variable_bounds("b", 0.0, 0.5)
        assert lp.uniform_bounds() is None
        lp.set_variable_bounds("b", 0.0, 1.0)
        assert lp.uniform_bounds() == (0.0, 1.0)
