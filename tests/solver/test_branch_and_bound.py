"""Unit tests for the from-scratch branch-and-bound ILP solver."""

import pytest

from repro.exceptions import InfeasibleProblemError
from repro.solver.branch_and_bound import solve_with_branch_and_bound
from repro.solver.model import LinearProgram
from repro.solver.scipy_backend import solve_lp_scipy
from repro.solver.simplex import solve_with_simplex


def solve_bnb(lp, oracle=solve_lp_scipy):
    return solve_with_branch_and_bound(lp, oracle)


class TestKnapsack:
    def make_knapsack(self):
        # max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary.
        lp = LinearProgram(maximize=True)
        lp.add_variable("a", high=1.0, objective=10.0, integer=True)
        lp.add_variable("b", high=1.0, objective=13.0, integer=True)
        lp.add_variable("c", high=1.0, objective=7.0, integer=True)
        lp.add_constraint({"a": 3.0, "b": 4.0, "c": 2.0}, "<=", 6.0)
        return lp

    def test_optimum(self):
        obj, values = solve_bnb(self.make_knapsack())
        assert obj == pytest.approx(20.0)  # b + c
        assert values["b"] == 1.0 and values["c"] == 1.0
        assert values["a"] == 0.0

    def test_with_simplex_oracle(self):
        obj, _ = solve_bnb(self.make_knapsack(),
                           oracle=solve_with_simplex)
        assert obj == pytest.approx(20.0)

    def test_integrality_enforced(self):
        _obj, values = solve_bnb(self.make_knapsack())
        for val in values.values():
            assert val == pytest.approx(round(val))


class TestGeneralInteger:
    def test_non_binary_integers(self):
        # max x + y, 2x + y <= 7, x + 3y <= 9, integer.
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0, integer=True)
        lp.add_variable("y", objective=1.0, integer=True)
        lp.add_constraint({"x": 2.0, "y": 1.0}, "<=", 7.0)
        lp.add_constraint({"x": 1.0, "y": 3.0}, "<=", 9.0)
        obj, values = solve_bnb(lp)
        # LP relaxation peaks at x=2.4, y=2.2 (4.6); best integer is 4.
        assert obj == pytest.approx(4.0)
        assert lp.check_feasible(values) == []

    def test_minimization(self):
        # min 3x + 4y s.t. x + y >= 2.5, integer.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=3.0, integer=True)
        lp.add_variable("y", objective=4.0, integer=True)
        lp.add_constraint({"x": 1.0, "y": 1.0}, ">=", 2.5)
        obj, values = solve_bnb(lp)
        assert obj == pytest.approx(9.0)  # x=3, y=0

    def test_mixed_integer(self):
        # y continuous, x integer.
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=2.0, integer=True)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 3.5)
        lp.add_constraint({"x": 1.0}, "<=", 2.5)
        obj, values = solve_bnb(lp)
        assert values["x"] == pytest.approx(2.0)
        assert values["y"] == pytest.approx(1.5)
        assert obj == pytest.approx(5.5)


class TestFailures:
    def test_infeasible_root(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0, integer=True)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleProblemError):
            solve_bnb(lp)

    def test_integer_infeasible(self):
        # 0.4 <= x <= 0.6 has no integer point.
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=0.0, high=1.0, objective=1.0,
                        integer=True)
        lp.add_constraint({"x": 1.0}, ">=", 0.4)
        lp.add_constraint({"x": 1.0}, "<=", 0.6)
        with pytest.raises(InfeasibleProblemError):
            solve_bnb(lp)

    def test_pure_lp_passthrough(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", high=1.5, objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.5)
        obj, values = solve_bnb(lp)
        assert obj == pytest.approx(1.5)
