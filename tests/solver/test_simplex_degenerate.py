"""Phase-1 -> phase-2 hand-off on degenerate / redundant systems.

A linearly dependent equality system leaves one artificial variable
basic *at zero* after phase 1.  The fix under test drives out what it
can and drops the remaining redundant rows before building the
phase-2 tableau; previously those rows poisoned the basis and the
second phase could pivot on a zero row.
"""

import pytest

from repro.solver.model import LinearProgram
from repro.solver.simplex import solve_with_simplex, \
    solve_with_simplex_state


def redundant_lp() -> LinearProgram:
    """max x + 2y with a duplicated (dependent) equality row."""
    lp = LinearProgram(maximize=True)
    lp.add_variable("x", objective=1.0)
    lp.add_variable("y", objective=2.0)
    lp.add_constraint({"x": 1.0, "y": 1.0}, "==", 2.0, name="sum")
    # Exactly 2 * the first row: redundant, keeps an artificial basic
    # at zero through phase 1.
    lp.add_constraint({"x": 2.0, "y": 2.0}, "==", 4.0, name="sum2")
    lp.add_constraint({"x": 1.0}, "<=", 1.5, name="cap")
    return lp


class TestRedundantRows:
    def test_duplicated_equality_rows(self):
        obj, values = solve_with_simplex(redundant_lp())
        # obj = x + 2(2 - x) = 4 - x, maximized at x = 0.
        assert obj == pytest.approx(4.0)
        assert values["x"] == pytest.approx(0.0)
        assert values["y"] == pytest.approx(2.0)

    def test_three_dependent_rows(self):
        # x + y == 3, 2x + 2y == 6, 3x + 3y == 9: rank 1, m = 3.
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "==", 3.0)
        lp.add_constraint({"x": 2.0, "y": 2.0}, "==", 6.0)
        lp.add_constraint({"x": 3.0, "y": 3.0}, "==", 9.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(3.0)
        assert values["x"] + values["y"] == pytest.approx(3.0)

    def test_mixed_senses_with_dependency(self):
        # The >= row is implied by the == row; optimum sits at a
        # degenerate vertex.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=3.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "==", 4.0)
        lp.add_constraint({"x": 2.0, "y": 2.0}, ">=", 8.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(4.0)
        assert values["x"] == pytest.approx(4.0)
        assert values["y"] == pytest.approx(0.0)

    def test_agrees_with_scipy(self):
        from repro.solver.scipy_backend import solve_lp_scipy

        lp = redundant_lp()
        obj_simplex, _ = solve_with_simplex(lp)
        obj_scipy, _ = solve_lp_scipy(lp)
        assert obj_simplex == pytest.approx(obj_scipy, abs=1e-8)

    def test_state_solver_matches_plain(self):
        lp = redundant_lp()
        obj_plain, values_plain = solve_with_simplex(lp)
        obj_state, values_state, basis, warm_used = \
            solve_with_simplex_state(lp)
        assert not warm_used
        assert obj_state == obj_plain
        assert values_state == values_plain
        assert basis is not None and len(basis) > 0
