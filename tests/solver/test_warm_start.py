"""Warm-started solves agree with cold ones.

The exactness contract of :class:`WarmStartState` has two tiers:

* the solution cache (same model object, unchanged version) returns
  the *previous* solution outright - trivially exact;
* after a mutation, the scipy backend simply solves cold (exact by
  construction), while the simplex backend may skip phase 1 via the
  carried basis - exact to solver tolerance, verified here against an
  independent cold solve on every step of randomized edit sequences.
"""

import numpy as np
import pytest

from repro.solver.interface import WarmStartState, solve_lp
from repro.solver.model import LinearProgram

#: Edit sequences requested by the issue: 200 randomized perturbations.
NUM_SEQUENCES = 200


def make_lp(rng: np.random.Generator) -> LinearProgram:
    """A small random packing LP (always feasible: x = 0 works)."""
    n = 4
    lp = LinearProgram(name="warm")
    lp.add_variables_bulk([f"x{i}" for i in range(n)],
                          (0.0,) * n, (1.0,) * n,
                          rng.uniform(0.5, 2.0, size=n))
    lp.add_constraint_indexed(
        {i: float(c) for i, c in
         enumerate(rng.uniform(0.5, 1.5, size=n))},
        "<=", float(rng.uniform(1.0, 2.0)), name="cap0")
    lp.add_constraint_indexed({0: 1.0, 2: 1.0}, "<=", 1.5, name="cap1")
    return lp


def perturb(lp: LinearProgram, rng: np.random.Generator) -> None:
    """One random in-place edit (keeps the LP feasible and bounded)."""
    kind = rng.integers(0, 3)
    if kind == 0:
        lp.update_constraint_indexed(
            "cap0",
            {i: float(c) for i, c in
             enumerate(rng.uniform(0.5, 1.5, size=lp.num_variables))},
            rhs=float(rng.uniform(1.0, 2.0)))
    elif kind == 1:
        lp.set_objective(f"x{rng.integers(0, lp.num_variables)}",
                         float(rng.uniform(0.5, 2.0)))
    else:
        lp.set_variable_bounds(f"x{rng.integers(0, lp.num_variables)}",
                               0.0, float(rng.uniform(0.5, 1.0)))


class TestSolutionCache:
    def test_unmutated_resolve_is_a_hit(self):
        lp = make_lp(np.random.default_rng(7))
        state = WarmStartState()
        first = solve_lp(lp, warm_start=state)
        again = solve_lp(lp, warm_start=state)
        assert state.hits == 1 and state.misses == 1
        assert state.last_mode == "hit"
        assert again.objective == first.objective
        assert again.values == first.values

    def test_mutation_invalidates(self):
        lp = make_lp(np.random.default_rng(7))
        state = WarmStartState()
        solve_lp(lp, warm_start=state)
        lp.update_constraint_indexed("cap1", {0: 1.0, 2: 1.0}, rhs=0.5)
        solve_lp(lp, warm_start=state)
        assert state.hits == 0 and state.misses == 2

    def test_different_model_object_misses(self):
        rng = np.random.default_rng(7)
        state = WarmStartState()
        solve_lp(make_lp(rng), warm_start=state)
        solve_lp(make_lp(rng), warm_start=state)
        assert state.hits == 0 and state.misses == 2

    def test_backend_change_misses(self):
        lp = make_lp(np.random.default_rng(7))
        state = WarmStartState()
        solve_lp(lp, backend="scipy", warm_start=state)
        solve_lp(lp, backend="simplex", warm_start=state)
        assert state.hits == 0

    def test_clear_drops_state(self):
        lp = make_lp(np.random.default_rng(7))
        state = WarmStartState()
        solve_lp(lp, warm_start=state)
        state.clear()
        solve_lp(lp, warm_start=state)
        assert state.hits == 0 and state.misses == 2


class TestWarmEqualsColdProperty:
    def test_scipy_sequences_exact(self):
        """Warm and cold agree bitwise across randomized sequences.

        The scipy path never reuses solver-internal state, so after
        every perturbation the warm solve must be *exactly* the cold
        solve.  200 sequences x 3 edits each.
        """
        rng = np.random.default_rng(20260808)
        for seq in range(NUM_SEQUENCES):
            lp = make_lp(rng)
            state = WarmStartState()
            for _ in range(3):
                perturb(lp, rng)
                warm = solve_lp(lp, warm_start=state)
                cold = solve_lp(lp)
                assert warm.objective == cold.objective
                assert warm.values == cold.values

    def test_simplex_sequences_within_tolerance(self):
        """Basis-warmed simplex agrees with cold to solver tolerance."""
        rng = np.random.default_rng(99)
        reused = 0
        for seq in range(40):
            lp = make_lp(rng)
            state = WarmStartState()
            for _ in range(4):
                perturb(lp, rng)
                warm = solve_lp(lp, backend="simplex", warm_start=state)
                cold = solve_lp(lp, backend="simplex")
                assert warm.objective == pytest.approx(cold.objective,
                                                       abs=1e-7)
                for name, val in cold.values.items():
                    assert warm.values[name] == pytest.approx(val,
                                                              abs=1e-7)
            reused += state.basis_reuses
        assert reused > 0  # the warm path actually ran


class TestSpanAnnotation:
    def test_lp_solve_span_reports_warm_mode(self):
        from repro.telemetry import Tracer, use_tracer

        lp = make_lp(np.random.default_rng(3))
        state = WarmStartState()
        tracer = Tracer()
        with use_tracer(tracer):
            solve_lp(lp, warm_start=state)
            solve_lp(lp, warm_start=state)
        spans = [e for e in tracer.events()
                 if e["kind"] == "span" and e["name"] == "lp_solve"]
        assert [s["labels"]["warm"] for s in spans] == ["miss", "hit"]
