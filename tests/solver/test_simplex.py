"""Unit tests for the from-scratch two-phase simplex."""

import math

import pytest

from repro.exceptions import (InfeasibleProblemError,
                              UnboundedProblemError)
from repro.solver.model import LinearProgram
from repro.solver.simplex import solve_with_simplex


class TestTextbookCases:
    def test_simple_max(self):
        # max 3x + 2y s.t. x + y <= 4, x <= 2.
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=3.0)
        lp.add_variable("y", objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "<=", 4.0)
        lp.add_constraint({"x": 1.0}, "<=", 2.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(10.0)
        assert values["x"] == pytest.approx(2.0)
        assert values["y"] == pytest.approx(2.0)

    def test_simple_min(self):
        # min x + y s.t. x + 2y >= 4, 3x + y >= 6.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 2.0}, ">=", 4.0)
        lp.add_constraint({"x": 3.0, "y": 1.0}, ">=", 6.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(2.8)
        assert values["x"] == pytest.approx(1.6)
        assert values["y"] == pytest.approx(1.2)

    def test_equality_constraint(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=1.0)
        lp.add_constraint({"x": 1.0, "y": 1.0}, "==", 3.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(3.0)
        assert values["x"] + values["y"] == pytest.approx(3.0)

    def test_upper_bounds(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=0.0, high=0.7, objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 5.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(0.7)

    def test_lower_bound_shift(self):
        # min x with x >= 2 and x <= 10.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", low=2.0, high=10.0, objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 10.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(2.0)

    def test_free_variable(self):
        # min x + 5 y, x free, x >= -3 via constraint; y >= 0.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", low=-math.inf, objective=1.0)
        lp.add_variable("y", objective=5.0)
        lp.add_constraint({"x": 1.0}, ">=", -3.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(-3.0)
        assert values["x"] == pytest.approx(-3.0)


class TestEdgeCases:
    def test_infeasible(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(InfeasibleProblemError):
            solve_with_simplex(lp)

    def test_unbounded(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=0.0)
        lp.add_constraint({"y": 1.0}, "<=", 1.0)
        with pytest.raises(UnboundedProblemError):
            solve_with_simplex(lp)

    def test_no_constraints_bounded(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", low=0.0, high=3.0, objective=2.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(6.0)

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        with pytest.raises(UnboundedProblemError):
            solve_with_simplex(lp)

    def test_degenerate_does_not_cycle(self):
        # A classically degenerate program (Beale-like); Bland's rule
        # must terminate.
        lp = LinearProgram(maximize=False)
        lp.add_variable("x1", objective=-0.75)
        lp.add_variable("x2", objective=150.0)
        lp.add_variable("x3", objective=-0.02)
        lp.add_variable("x4", objective=6.0)
        lp.add_constraint({"x1": 0.25, "x2": -60.0, "x3": -0.04,
                           "x4": 9.0}, "<=", 0.0)
        lp.add_constraint({"x1": 0.5, "x2": -90.0, "x3": -0.02,
                           "x4": 3.0}, "<=", 0.0)
        lp.add_constraint({"x3": 1.0}, "<=", 1.0)
        obj, _ = solve_with_simplex(lp)
        assert obj == pytest.approx(-0.05)

    def test_zero_rhs_equality(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=0.0)
        lp.add_constraint({"x": 1.0, "y": -1.0}, "==", 0.0)
        lp.add_constraint({"y": 1.0}, "<=", 2.0)
        obj, values = solve_with_simplex(lp)
        assert obj == pytest.approx(2.0)
        assert values["x"] == pytest.approx(values["y"])

    def test_solution_feasible(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", high=1.0, objective=1.0)
        lp.add_variable("y", high=1.0, objective=2.0)
        lp.add_constraint({"x": 1.0, "y": 2.0}, "<=", 2.5)
        _obj, values = solve_with_simplex(lp)
        assert lp.check_feasible(values) == []
