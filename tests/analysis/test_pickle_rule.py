"""Positive/negative fixtures for PKL001."""

from repro.analysis import analyze_source


def rules_hit(source, relpath="repro/experiments/mod.py"):
    return [f.rule for f in analyze_source(source, relpath,
                                           select=["PKL001"])]


class TestPkl001UnpicklablePayloads:
    def test_lambda_in_runspec_flagged(self):
        source = (
            "def build(config):\n"
            "    return RunSpec(mode='offline',\n"
            "                   factory=lambda: object(),\n"
            "                   x=1.0, seed=0, config=config,\n"
            "                   num_requests=10)\n")
        assert rules_hit(source) == ["PKL001"]

    def test_local_function_in_runspec_flagged(self):
        source = (
            "def build(config):\n"
            "    def make():\n"
            "        return object()\n"
            "    return RunSpec(mode='offline', factory=make,\n"
            "                   x=1.0, seed=0, config=config,\n"
            "                   num_requests=10)\n")
        assert rules_hit(source) == ["PKL001"]

    def test_local_class_in_event_detail_flagged(self):
        source = (
            "def emit(slot):\n"
            "    class Payload:\n"
            "        pass\n"
            "    return Event(slot=slot, kind='admit',\n"
            "                 detail=Payload)\n")
        assert rules_hit(source) == ["PKL001"]

    def test_closure_reference_through_nested_scope_flagged(self):
        source = (
            "def outer(config):\n"
            "    def make():\n"
            "        return object()\n"
            "    def inner():\n"
            "        return RunSpec(mode='offline', factory=make,\n"
            "                       x=1.0, seed=0, config=config,\n"
            "                       num_requests=10)\n"
            "    return inner()\n")
        assert rules_hit(source) == ["PKL001"]

    def test_module_level_factory_ok(self):
        source = (
            "def make_algorithm():\n"
            "    return object()\n"
            "def build(config):\n"
            "    return RunSpec(mode='offline',\n"
            "                   factory=make_algorithm,\n"
            "                   x=1.0, seed=0, config=config,\n"
            "                   num_requests=10)\n")
        assert rules_hit(source) == []

    def test_lambda_outside_payload_calls_ok(self):
        source = (
            "def pick(records):\n"
            "    return sorted(records, key=lambda r: r.seed)\n")
        assert rules_hit(source) == []
