"""Symbol table, call-graph construction, reachability, and DOT."""

from repro.analysis.callgraph import (SymbolTable, build_callgraph,
                                      node_key, pool_entry_points,
                                      split_node_key)
from repro.analysis.framework import module_from_source
from repro.analysis.symbols import summarize_module


def build(files):
    summaries = {
        relpath: summarize_module(module_from_source(source, relpath))
        for relpath, source in files.items()}
    table = SymbolTable(summaries)
    return summaries, table, build_callgraph(summaries, table)


class TestResolution:
    def test_same_module_function_call(self):
        _, _, graph = build({"repro/a.py": (
            "def helper():\n    return 1\n"
            "def top():\n    return helper()\n")})
        assert (node_key("repro/a.py", "helper"), False) \
            in graph.edges[node_key("repro/a.py", "top")]

    def test_cross_module_imported_function(self):
        _, _, graph = build({
            "repro/a.py": "def helper():\n    return 1\n",
            "repro/b.py": (
                "from repro.a import helper\n"
                "def top():\n    return helper()\n")})
        assert (node_key("repro/a.py", "helper"), False) \
            in graph.edges[node_key("repro/b.py", "top")]

    def test_module_alias_attribute_call(self):
        _, _, graph = build({
            "repro/a.py": "def helper():\n    return 1\n",
            "repro/b.py": (
                "from repro import a\n"
                "def top():\n    return a.helper()\n")})
        assert (node_key("repro/a.py", "helper"), False) \
            in graph.edges[node_key("repro/b.py", "top")]

    def test_self_method_call_binds(self):
        files = {"repro/a.py": (
            "class Engine:\n"
            "    def step(self):\n        return self._advance(1)\n"
            "    def _advance(self, n):\n        return n\n")}
        summaries, table, graph = build(files)
        src = node_key("repro/a.py", "Engine.step")
        assert (node_key("repro/a.py", "Engine._advance"), False) \
            in graph.edges[src]
        resolution = graph.resolution(src, 0)
        assert resolution.bound

    def test_annotated_parameter_receiver(self):
        _, _, graph = build({
            "repro/a.py": (
                "class Engine:\n"
                "    def run(self):\n        return 1\n"),
            "repro/b.py": (
                "from repro.a import Engine\n"
                "def drive(engine: Engine):\n"
                "    return engine.run()\n")})
        assert (node_key("repro/a.py", "Engine.run"), False) \
            in graph.edges[node_key("repro/b.py", "drive")]

    def test_unresolved_method_widens_to_namesakes(self):
        files = {"repro/a.py": (
            "class Engine:\n"
            "    def run(self):\n        return 1\n"
            "def drive(thing):\n"
            "    return thing.run()\n")}
        _, _, graph = build(files)
        src = node_key("repro/a.py", "drive")
        assert (node_key("repro/a.py", "Engine.run"), True) \
            in graph.edges[src]
        assert graph.resolution(src, 0).kind == "overapprox"

    def test_external_call_resolves_qualified(self):
        files = {"repro/a.py": (
            "import time\n"
            "def stamp():\n    return time.time()\n")}
        _, _, graph = build(files)
        resolution = graph.resolution(node_key("repro/a.py", "stamp"),
                                      0)
        assert resolution.kind == "external"
        assert resolution.qualified == "time.time"

    def test_self_referential_type_chain_terminates(self):
        # x = x.narrow() must not recurse forever during resolution.
        _, _, graph = build({"repro/a.py": (
            "def weird(x):\n"
            "    x = x.narrow()\n"
            "    return x.narrow()\n")})
        assert graph.nodes


class TestReachability:
    FILES = {
        "repro/a.py": (
            "def leaf():\n    return 1\n"
            "def mid():\n    return leaf()\n"
            "def entry():\n    return mid()\n"
            "def unrelated():\n    return 2\n")}

    def test_transitive_closure_and_parents(self):
        _, _, graph = build(self.FILES)
        entry = node_key("repro/a.py", "entry")
        parents = graph.reachable([entry])
        assert node_key("repro/a.py", "leaf") in parents
        assert node_key("repro/a.py", "unrelated") not in parents
        chain = graph.chain_to(parents,
                               node_key("repro/a.py", "leaf"))
        assert [split_node_key(k)[1] for k in chain] \
            == ["entry", "mid", "leaf"]

    def test_pool_entry_points_found(self):
        files = {"repro/a.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(x):\n    return x\n"
            "def main(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, xs))\n")}
        summaries, table, _ = build(files)
        assert pool_entry_points(summaries, table) \
            == [node_key("repro/a.py", "work")]


class TestDot:
    def test_dot_output_is_deterministic_and_marks_widened(self):
        files = {"repro/a.py": (
            "class Engine:\n"
            "    def run(self):\n        return 1\n"
            "def drive(thing):\n"
            "    return thing.run()\n")}
        _, _, graph1 = build(files)
        _, _, graph2 = build(files)
        dot = graph1.to_dot()
        assert dot == graph2.to_dot()
        assert dot.startswith("digraph callgraph {")
        assert "style=dashed" in dot
