"""Baseline save/load round-trip and application semantics."""

import json

import pytest

from repro.analysis import analyze_source
from repro.analysis.baseline import (BASELINE_SCHEMA, apply_baseline,
                                     load_baseline,
                                     refreeze_baseline,
                                     save_baseline)
from repro.exceptions import ConfigurationError

VIOLATING = (
    "import time\n"
    "def stamp():\n"
    "    return time.time()\n"
    "def stamp2():\n"
    "    return time.time()\n")


def findings_for(source, relpath="repro/x/mod.py"):
    return analyze_source(source, relpath, select=["DET001"])


class TestBaselineRoundTrip:
    def test_save_then_load_preserves_multiplicity(self, tmp_path):
        findings = findings_for(VIOLATING)
        assert len(findings) == 2
        path = save_baseline(tmp_path / "base.json", findings)
        counts = load_baseline(path)
        # both call sites share the stripped-line fingerprint
        assert sum(counts.values()) == 2
        assert len(counts) == 1

    def test_file_is_schema_stamped_and_sorted(self, tmp_path):
        path = save_baseline(tmp_path / "base.json",
                             findings_for(VIOLATING))
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == BASELINE_SCHEMA
        assert data["findings"][0]["count"] == 2
        assert data["findings"][0]["rule"] == "DET001"

    def test_empty_baseline_round_trips(self, tmp_path):
        path = save_baseline(tmp_path / "base.json", [])
        assert load_baseline(path) == {}


class TestBaselineApplication:
    def test_matched_findings_are_consumed(self):
        findings = findings_for(VIOLATING)
        baseline = {findings[0].fingerprint: 2}
        new, matched, stale = apply_baseline(findings, baseline)
        assert new == []
        assert matched == 2
        assert stale == []

    def test_excess_findings_surface_as_new(self):
        findings = findings_for(VIOLATING)
        baseline = {findings[0].fingerprint: 1}
        new, matched, stale = apply_baseline(findings, baseline)
        assert len(new) == 1
        assert matched == 1
        assert stale == []

    def test_leftover_capacity_is_stale(self):
        findings = findings_for(VIOLATING)
        ghost = ("NUM001", "repro/gone.py", "a == 0.0")
        baseline = {findings[0].fingerprint: 2, ghost: 1}
        new, matched, stale = apply_baseline(findings, baseline)
        assert new == []
        assert matched == 2
        assert stale == [ghost]


class TestBaselineErrors:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_baseline(tmp_path / "absent.json")

    def test_non_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_wrong_schema_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9",
                                    "findings": []}),
                        encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": BASELINE_SCHEMA,
            "findings": [{"rule": "DET001"}]}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestRefreeze:
    def test_refreeze_prunes_fixed_findings_and_counts_them(
            self, tmp_path):
        path = tmp_path / "base.json"
        # freeze two findings, then fix one and refreeze
        save_baseline(path, findings_for(VIOLATING))
        one_left = findings_for(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")
        _, pruned = refreeze_baseline(path, one_left)
        assert pruned == 1
        assert sum(load_baseline(path).values()) == 1

    def test_refreeze_without_previous_baseline_prunes_nothing(
            self, tmp_path):
        path = tmp_path / "base.json"
        _, pruned = refreeze_baseline(path, findings_for(VIOLATING))
        assert pruned == 0
        assert sum(load_baseline(path).values()) == 2

    def test_refreeze_over_corrupt_baseline_prunes_nothing(
            self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("not json", encoding="utf-8")
        _, pruned = refreeze_baseline(path, findings_for(VIOLATING))
        assert pruned == 0
        assert sum(load_baseline(path).values()) == 2

    def test_unchanged_findings_prune_nothing(self, tmp_path):
        path = tmp_path / "base.json"
        findings = findings_for(VIOLATING)
        save_baseline(path, findings)
        _, pruned = refreeze_baseline(path, findings)
        assert pruned == 0
