"""Module-summary extraction: the file-local facts the whole-program
pass is built from (and caches)."""

from repro.analysis.framework import module_from_source
from repro.analysis.symbols import (ModuleSummary, module_dotted_name,
                                    summarize_module, unit_family)


def summarize(source, relpath="repro/x/mod.py"):
    return summarize_module(module_from_source(source, relpath))


class TestModuleNaming:
    def test_dotted_name_strips_extension(self):
        assert module_dotted_name("repro/service/loop.py") \
            == "repro.service.loop"

    def test_package_init_maps_to_package(self):
        assert module_dotted_name("repro/service/__init__.py") \
            == "repro.service"


class TestUnitFamily:
    def test_mhz_and_mbps_suffixes(self):
        assert unit_family("demand_mhz") == "mhz"
        assert unit_family("uplink_mbps") == "mbps"
        assert unit_family("slot") is None


class TestImports:
    def test_plain_and_aliased_imports_resolve(self):
        summary = summarize(
            "import time\n"
            "import numpy as np\n"
            "from repro.sim import events\n"
            "from repro.sim.events import Event as Ev\n")
        assert summary.imports["time"] == "time"
        assert summary.imports["np"] == "numpy"
        assert summary.imports["events"] == "repro.sim.events"
        assert summary.imports["Ev"] == "repro.sim.events.Event"

    def test_relative_import_resolves_against_package(self):
        summary = summarize(
            "from .events import Event\n",
            relpath="repro/sim/timeline.py")
        assert summary.imports["Event"] == "repro.sim.events.Event"


class TestFunctionFacts:
    def test_calls_params_and_returns_are_recorded(self):
        summary = summarize(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")
        fn = summary.functions["stamp"]
        assert [site.chain for site in fn.calls] == ["time.time"]
        # the returned expression is that call's value
        assert ("call", "0") in {tuple(o)
                                 for o in fn.return_origins}

    def test_origins_flow_through_local_assignment(self):
        summary = summarize(
            "def wrap(x):\n"
            "    y = x\n"
            "    z = (y, 1)\n"
            "    return z\n")
        fn = summary.functions["wrap"]
        assert ("param", "0") in {tuple(o)
                                  for o in fn.return_origins}

    def test_global_writes_rebind_and_mutate(self):
        summary = summarize(
            "_CACHE = {}\n"
            "_MODE = 'a'\n"
            "def poke(k):\n"
            "    global _MODE\n"
            "    _MODE = 'b'\n"
            "    _CACHE[k] = 1\n")
        fn = summary.functions["poke"]
        kinds = {(row[0], row[1]) for row in fn.global_writes}
        assert ("rebind", "_MODE") in kinds
        assert ("mutate", "_CACHE") in kinds
        assert summary.globals["_CACHE"] == "mutable"

    def test_local_shadow_is_not_a_global_write(self):
        summary = summarize(
            "_CACHE = {}\n"
            "def pure(k):\n"
            "    _CACHE = {}\n"
            "    _CACHE[k] = 1\n"
            "    return _CACHE\n")
        assert summary.functions["pure"].global_writes == []

    def test_self_attr_store_and_type_are_recorded(self):
        summary = summarize(
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self, seed):\n"
            "        self._seed = seed\n"
            "        self._lock = threading.Lock()\n")
        fn = summary.functions["Engine.__init__"]
        assert any(row[0] == "_seed" for row in fn.attr_stores)
        assert ("_lock", "threading.Lock") in {
            (row[0], row[1]) for row in fn.attr_types}

    def test_pool_targets_detected(self):
        summary = summarize(
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def work(x):\n"
            "    return x\n"
            "def main(xs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        pool.submit(work, xs[0])\n"
            "        return list(pool.map(work, xs))\n")
        assert "work" in summary.pool_targets


class TestRoundTrip:
    def test_summary_survives_dict_round_trip(self):
        summary = summarize(
            "import time\n"
            "_CACHE = {}\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._t = time.time()\n"
            "def run(demand_mhz):\n"
            "    return demand_mhz\n")
        clone = ModuleSummary.from_dict(summary.to_dict())
        assert clone.to_dict() == summary.to_dict()
        assert sorted(clone.functions) == sorted(summary.functions)
