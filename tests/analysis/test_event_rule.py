"""EVT001 coverage + mutation tests against the *real* tree.

The mutation tests copy the three source-of-truth modules
(``events.py``, ``timeline.py``, ``audit.py``) into a fixture tree and
verify that un-wiring one event kind - removing its glyph, or removing
it from the invariant monitor's kind tables - fails the pass.
"""

from pathlib import Path

import repro.sim.events
import repro.sim.timeline
import repro.telemetry.audit
from repro.analysis import run_analysis

_REAL = {
    "repro/sim/events.py": Path(repro.sim.events.__file__),
    "repro/sim/timeline.py": Path(repro.sim.timeline.__file__),
    "repro/telemetry/audit.py": Path(repro.telemetry.audit.__file__),
}


def copy_tree(tmp_path, mutate=None, skip=()):
    """Copy the real modules into ``tmp_path``, optionally mutating."""
    for relpath, source in _REAL.items():
        if relpath in skip:
            continue
        text = source.read_text(encoding="utf-8")
        if mutate is not None:
            text = mutate(relpath, text)
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return tmp_path


def evt_findings(root):
    return run_analysis([root], select=["EVT001"]).findings


class TestEvt001:
    def test_real_tree_is_fully_wired(self, tmp_path):
        root = copy_tree(tmp_path)
        assert evt_findings(root) == []

    def test_removing_a_glyph_fails_the_pass(self, tmp_path):
        def drop_migrate_glyph(relpath, text):
            if relpath.endswith("timeline.py"):
                mutated = text.replace(
                    '    EventKind.MIGRATE: "m",\n', "")
                assert mutated != text, "glyph line not found"
                return mutated
            return text

        root = copy_tree(tmp_path, mutate=drop_migrate_glyph)
        findings = evt_findings(root)
        assert len(findings) == 1
        assert findings[0].rule == "EVT001"
        assert "MIGRATE" in findings[0].message
        assert findings[0].path.endswith("timeline.py")

    def test_unwiring_audit_coverage_fails_the_pass(self, tmp_path):
        def rename_preempt(relpath, text):
            if relpath.endswith("audit.py"):
                return text.replace('"preempt_wait"',
                                    '"preempt_hold"')
            return text

        root = copy_tree(tmp_path, mutate=rename_preempt)
        findings = evt_findings(root)
        assert len(findings) == 1
        assert "PREEMPT_WAIT" in findings[0].message
        assert findings[0].path.endswith("audit.py")

    def test_incomplete_fixture_tree_is_silent(self, tmp_path):
        root = copy_tree(tmp_path, skip=("repro/telemetry/audit.py",))
        assert evt_findings(root) == []

    def test_shipped_source_tree_passes(self):
        src_root = _REAL["repro/sim/events.py"].parents[2]
        assert src_root.name == "src"
        assert evt_findings(src_root) == []
