"""Positive/negative fixtures for the five whole-program rules."""

from repro.analysis import run_analysis


def scan(tmp_path, files, select):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return run_analysis([tmp_path], select=select).findings


class TestDet010:
    def test_two_hop_taint_into_event_payload(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "import time\n"
            "class Event:\n"
            "    pass\n"
            "def _stamp():\n"
            "    return time.time()\n"
            "def _enrich(slot):\n"
            "    return (_stamp(), slot)\n"
            "def emit(slot):\n"
            "    return Event(value=_enrich(slot))\n")},
            ["DET010"])
        assert len(findings) == 1
        assert findings[0].rule == "DET010"
        assert "time.time()" in findings[0].message
        assert "_stamp" in findings[0].message

    def test_cross_module_taint_into_checkpoint(self, tmp_path):
        findings = scan(tmp_path, {
            "repro/clock.py": (
                "import time\n"
                "def wall_s():\n"
                "    return time.time()\n"),
            "repro/ckpt.py": (
                "from repro.clock import wall_s\n"
                "class ServiceCheckpoint:\n"
                "    pass\n"
                "def snapshot(slot):\n"
                "    return ServiceCheckpoint(slot=slot,"
                " at=wall_s())\n")},
            ["DET010"])
        assert [f.path for f in findings] == ["repro/ckpt.py"]

    def test_journal_record_is_a_sink(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "import time\n"
            "def log(journal, slot):\n"
            "    journal.record((slot, time.time()))\n")},
            ["DET010"])
        assert len(findings) == 1
        assert "record" in findings[0].message

    def test_clean_payload_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "class Event:\n"
            "    pass\n"
            "def emit(slot, reward):\n"
            "    return Event(slot=slot, reward=reward)\n")},
            ["DET010"])
        assert findings == []

    def test_sanitizer_module_launders_taint(self, tmp_path):
        # wall_s lives in a telemetry exposition module: calls into
        # it return clean values by declaration.
        findings = scan(tmp_path, {
            "repro/telemetry/metrics.py": (
                "import time\n"
                "def wall_s():\n"
                "    return time.time()\n"),
            "repro/a.py": (
                "from repro.telemetry.metrics import wall_s\n"
                "class Event:\n"
                "    pass\n"
                "def emit(slot):\n"
                "    return Event(at=wall_s())\n")},
            ["DET010"])
        assert findings == []

    def test_policy_record_is_not_a_sink(self, tmp_path):
        # bandit policies expose .record(arm, reward); only journal
        # receivers are serialization sinks.
        findings = scan(tmp_path, {"repro/a.py": (
            "import time\n"
            "def learn(policy, arm):\n"
            "    policy.record(arm, time.time())\n")},
            ["DET010"])
        assert findings == []


class TestConc001:
    POSITIVE = {"repro/run.py": (
        "from concurrent.futures import ProcessPoolExecutor\n"
        "_MEMO = {}\n"
        "def _remember(spec):\n"
        "    _MEMO[spec] = 1\n"
        "def execute_run(spec):\n"
        "    _remember(spec)\n"
        "    return spec\n"
        "def main(specs):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return list(pool.map(execute_run, specs))\n")}

    def test_global_mutation_behind_helper_is_caught(self, tmp_path):
        findings = scan(tmp_path, self.POSITIVE, ["CONC001"])
        assert len(findings) == 1
        assert "_MEMO" in findings[0].message
        assert "execute_run -> _remember" in findings[0].message

    def test_unreachable_writer_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/run.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_MEMO = {}\n"
            "def offline(spec):\n"
            "    _MEMO[spec] = 1\n"
            "def execute_run(spec):\n"
            "    return spec\n"
            "def main(specs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(execute_run, specs))\n")},
            ["CONC001"])
        assert findings == []

    def test_local_shadow_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/run.py": (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def execute_run(spec):\n"
            "    memo = {}\n"
            "    memo[spec] = 1\n"
            "    return memo\n"
            "def main(specs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(execute_run, specs))\n")},
            ["CONC001"])
        assert findings == []

    def test_blessed_current_idiom_is_exempt(self, tmp_path):
        findings = scan(tmp_path, {
            "repro/telemetry/tracer.py": (
                "_current = None\n"
                "def set_tracer(tracer):\n"
                "    global _current\n"
                "    _current = tracer\n"),
            "repro/run.py": (
                "from concurrent.futures import"
                " ProcessPoolExecutor\n"
                "from repro.telemetry.tracer import set_tracer\n"
                "def execute_run(spec):\n"
                "    set_tracer(spec)\n"
                "    return spec\n"
                "def main(specs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(execute_run,"
                " specs))\n")},
            ["CONC001"])
        assert findings == []

    def test_contextvar_write_is_exempt(self, tmp_path):
        findings = scan(tmp_path, {"repro/run.py": (
            "import contextvars\n"
            "from concurrent.futures import ProcessPoolExecutor\n"
            "_slot = contextvars.ContextVar('slot')\n"
            "def execute_run(spec):\n"
            "    _slot = 3\n"
            "    return spec\n"
            "def main(specs):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(execute_run, specs))\n")},
            ["CONC001"])
        assert findings == []

    def test_service_tick_is_an_entry_point(self, tmp_path):
        findings = scan(tmp_path, {"repro/service/loop.py": (
            "_SEEN = {}\n"
            "class AdmissionService:\n"
            "    def tick(self, slot):\n"
            "        _SEEN[slot] = True\n"
            "        return slot\n")},
            ["CONC001"])
        assert len(findings) == 1
        assert "_SEEN" in findings[0].message


class TestConc002:
    def test_blocking_call_behind_helper_is_caught(self, tmp_path):
        findings = scan(tmp_path, {"repro/srv.py": (
            "import time\n"
            "def _poll():\n"
            "    time.sleep(0.1)\n"
            "async def serve():\n"
            "    _poll()\n")},
            ["CONC002"])
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "serve -> _poll" in findings[0].message

    def test_direct_blocking_call_anchors_at_site(self, tmp_path):
        findings = scan(tmp_path, {"repro/srv.py": (
            "import time\n"
            "async def serve():\n"
            "    time.sleep(0.1)\n")},
            ["CONC002"])
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_sync_only_blocking_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/srv.py": (
            "import time\n"
            "def watch():\n"
            "    time.sleep(0.1)\n"
            "async def serve(n):\n"
            "    return n\n")},
            ["CONC002"])
        assert findings == []

    def test_executor_hop_is_exempt(self, tmp_path):
        # the blocking function is passed by reference, not called.
        findings = scan(tmp_path, {"repro/srv.py": (
            "import asyncio\n"
            "import time\n"
            "def _poll():\n"
            "    time.sleep(0.1)\n"
            "async def serve():\n"
            "    loop = asyncio.get_running_loop()\n"
            "    await loop.run_in_executor(None, _poll)\n")},
            ["CONC002"])
        assert findings == []


class TestPkl010:
    def test_lock_two_hops_inside_payload_is_caught(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "import threading\n"
            "class Inner:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._inner = Inner()\n"
            "class RunSpec:\n"
            "    pass\n"
            "def make(engine: Engine):\n"
            "    return RunSpec(engine=engine)\n")},
            ["PKL010"])
        assert len(findings) == 1
        assert "threading.Lock" in findings[0].message
        assert "Inner._lock" in findings[0].message

    def test_lambda_attr_in_closure_is_caught(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._fn = lambda x: x\n"
            "class ServiceCheckpoint:\n"
            "    pass\n"
            "def snap(engine: Engine):\n"
            "    return ServiceCheckpoint(engine=engine)\n")},
            ["PKL010"])
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_plain_data_closure_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "class Engine:\n"
            "    def __init__(self, seed):\n"
            "        self._seed = seed\n"
            "        self._slots = []\n"
            "class RunSpec:\n"
            "    pass\n"
            "def make(engine: Engine):\n"
            "    return RunSpec(engine=engine)\n")},
            ["PKL010"])
        assert findings == []

    def test_lock_outside_payload_closure_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "import threading\n"
            "class Pool:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "class RunSpec:\n"
            "    pass\n"
            "def make(seed):\n"
            "    return RunSpec(seed=seed)\n")},
            ["PKL010"])
        assert findings == []

    def test_annotated_field_pulls_class_into_closure(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "import threading\n"
            "class Engine:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "class RunSpec:\n"
            "    engine: Engine\n")},
            ["PKL010"])
        assert len(findings) == 1
        assert "threading.RLock" in findings[0].message


class TestUnit010:
    def test_mismatched_family_across_modules(self, tmp_path):
        findings = scan(tmp_path, {
            "repro/caps.py": (
                "def capacity_mhz():\n"
                "    return 1200.0\n"),
            "repro/admit.py": (
                "from repro.caps import capacity_mhz\n"
                "def admit(demand_mbps):\n"
                "    return demand_mbps\n"
                "def go():\n"
                "    return admit(capacity_mhz())\n")},
            ["UNIT010"])
        assert len(findings) == 1
        assert "demand_mbps" in findings[0].message
        assert "mhz" in findings[0].message

    def test_matching_family_is_negative(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "def capacity_mhz():\n"
            "    return 1200.0\n"
            "def admit(demand_mhz):\n"
            "    return demand_mhz\n"
            "def go():\n"
            "    return admit(capacity_mhz())\n")},
            ["UNIT010"])
        assert findings == []

    def test_units_converter_is_the_blessed_crossing(self, tmp_path):
        findings = scan(tmp_path, {
            "repro/units.py": (
                "def rate_mbps(value_mhz, factor):\n"
                "    return value_mhz * factor\n"),
            "repro/a.py": (
                "from repro.units import rate_mbps\n"
                "def capacity_mhz():\n"
                "    return 1200.0\n"
                "def admit(demand_mbps):\n"
                "    return demand_mbps\n"
                "def go():\n"
                "    return admit(rate_mbps(capacity_mhz(),"
                " 2.0))\n")},
            ["UNIT010"])
        assert findings == []

    def test_mismatched_assignment_from_return(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "def capacity_mhz():\n"
            "    return 1200.0\n"
            "def use():\n"
            "    rate_mbps = capacity_mhz()\n"
            "    return rate_mbps\n")},
            ["UNIT010"])
        assert len(findings) == 1
        assert "mbps" in findings[0].message

    def test_keyword_argument_mismatch(self, tmp_path):
        findings = scan(tmp_path, {"repro/a.py": (
            "def admit(demand_mhz):\n"
            "    return demand_mhz\n"
            "def go(uplink_mbps):\n"
            "    return admit(demand_mhz=uplink_mbps)\n")},
            ["UNIT010"])
        assert len(findings) == 1
