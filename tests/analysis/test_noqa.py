"""``# repro: noqa`` suppression semantics."""

from repro.analysis import analyze_source
from repro.analysis.framework import module_from_source, parse_noqa

VIOLATION = (
    "import time\n"
    "def stamp():\n"
    "    return time.time(){pragma}\n")


def det001(source):
    return [f.rule for f in analyze_source(source, "repro/x/mod.py",
                                           select=["DET001"])]


class TestNoqaSuppression:
    def test_matching_code_suppresses(self):
        source = VIOLATION.format(
            pragma="  # repro: noqa DET001")
        assert det001(source) == []

    def test_justification_text_allowed(self):
        source = VIOLATION.format(
            pragma="  # repro: noqa DET001 -- advisory metric")
        assert det001(source) == []

    def test_bare_noqa_suppresses_everything(self):
        source = VIOLATION.format(pragma="  # repro: noqa")
        assert det001(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = VIOLATION.format(
            pragma="  # repro: noqa NUM001")
        assert det001(source) == ["DET001"]

    def test_pragma_on_other_line_does_not_suppress(self):
        source = ("import time  # repro: noqa DET001\n"
                  "def stamp():\n"
                  "    return time.time()\n")
        assert det001(source) == ["DET001"]

    def test_plain_flake8_noqa_is_not_ours(self):
        source = VIOLATION.format(pragma="  # noqa")
        assert det001(source) == ["DET001"]

    def test_multiple_codes(self):
        source = VIOLATION.format(
            pragma="  # repro: noqa NUM001, DET001")
        assert det001(source) == []

    def test_suppression_is_counted(self):
        from repro.analysis.framework import (resolve_rules,
                                              run_rules)
        module = module_from_source(
            VIOLATION.format(pragma="  # repro: noqa DET001"),
            "repro/x/mod.py")
        report = run_rules([module], resolve_rules(["DET001"]))
        assert report.findings == []
        assert report.suppressed == 1

    def test_parse_noqa_table(self):
        lines = [
            "x = 1",
            "y = 2  # repro: noqa",
            "z = 3  # repro: noqa DET001,NUM001 -- why",
        ]
        table = parse_noqa(lines)
        assert 1 not in table
        assert table[2] == {"*"}
        assert table[3] == {"DET001", "NUM001"}
