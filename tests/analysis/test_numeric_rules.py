"""Positive/negative fixtures for NUM001 and UNIT001."""

from repro.analysis import analyze_source


def rules_hit(source, relpath="repro/core/mod.py", select=None):
    return [f.rule for f in analyze_source(source, relpath,
                                           select=select)]


class TestNum001FloatEquality:
    def test_float_literal_equality_flagged(self):
        source = (
            "def keep(coef):\n"
            "    return coef != 0.0\n")
        assert rules_hit(source, select=["NUM001"]) == ["NUM001"]

    def test_domain_name_pair_flagged(self):
        source = (
            "def same(total_reward, journaled_reward):\n"
            "    return total_reward == journaled_reward\n")
        assert rules_hit(source, select=["NUM001"]) == ["NUM001"]

    def test_negative_int_comparison_ok(self):
        source = (
            "def empty(count):\n"
            "    return count == 0\n")
        assert rules_hit(source, select=["NUM001"]) == []

    def test_negative_string_sense_ok(self):
        source = (
            "def is_le(sense):\n"
            "    return sense == '<='\n")
        assert rules_hit(source, select=["NUM001"]) == []

    def test_isclose_untouched(self):
        source = (
            "import math\n"
            "def same(total_reward, journaled_reward):\n"
            "    return math.isclose(total_reward, journaled_reward)\n")
        assert rules_hit(source, select=["NUM001"]) == []


class TestUnit001SuffixDiscipline:
    def test_binop_mixing_flagged(self):
        source = (
            "def demand(capacity_mhz, rate_mbps):\n"
            "    return capacity_mhz - rate_mbps\n")
        assert rules_hit(source, select=["UNIT001"]) == ["UNIT001"]

    def test_comparison_mixing_flagged(self):
        source = (
            "def fits(capacity_mhz, rate_mbps):\n"
            "    return rate_mbps < capacity_mhz\n")
        assert rules_hit(source, select=["UNIT001"]) == ["UNIT001"]

    def test_direct_assignment_mismatch_flagged(self):
        source = (
            "def alias(rate_mbps):\n"
            "    demand_mhz = rate_mbps\n"
            "    return demand_mhz\n")
        assert rules_hit(source, select=["UNIT001"]) == ["UNIT001"]

    def test_same_family_arithmetic_ok(self):
        source = (
            "def headroom(capacity_mhz, reserved_mhz):\n"
            "    return capacity_mhz - reserved_mhz\n")
        assert rules_hit(source, select=["UNIT001"]) == []

    def test_converter_call_ok(self):
        source = (
            "from repro.units import demand_mhz\n"
            "def need(rate_mbps, c_unit):\n"
            "    return demand_mhz(rate_mbps, c_unit)\n")
        assert rules_hit(source, select=["UNIT001"]) == []

    def test_units_module_allowlisted(self):
        source = (
            "def mbps_to_mhz(rate_mbps, factor_mhz):\n"
            "    return rate_mbps * factor_mhz\n")
        assert rules_hit(source, relpath="repro/units.py",
                         select=["UNIT001"]) == []
