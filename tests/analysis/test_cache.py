"""Incremental-cache semantics for the whole-program pass.

The cache stores *file-local* module summaries keyed on content hash;
the global stages (symbol table, call graph, taint) always re-run.
That split is what these tests pin down: an edit to one file
re-extracts only that file (N-1 hits), yet still refreshes
interprocedural findings in its unchanged callers.
"""

import json

from repro.analysis.cli import main
from repro.analysis.framework import cache_version, run_analysis

CLEAN_HELPER = ("def helper(slot):\n"
                "    return slot\n")

TAINTED_HELPER = ("import time\n"
                  "def helper(slot):\n"
                  "    return time.time()\n")

CALLER = ("from repro.helper import helper\n"
          "class Event:\n"
          "    pass\n"
          "def emit(slot):\n"
          "    return Event(at=helper(slot))\n")


def write_tree(tmp_path, helper_source):
    (tmp_path / "repro").mkdir(parents=True, exist_ok=True)
    (tmp_path / "repro" / "helper.py").write_text(
        helper_source, encoding="utf-8")
    (tmp_path / "repro" / "caller.py").write_text(
        CALLER, encoding="utf-8")


def scan(tmp_path, cache_path):
    return run_analysis([tmp_path], select=["DET010"],
                        cache_path=cache_path)


class TestCacheCounters:
    def test_cold_then_warm_hit_counts(self, tmp_path):
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        cold = scan(tmp_path, cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = scan(tmp_path, cache)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)

    def test_editing_one_file_reextracts_only_it(self, tmp_path):
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        scan(tmp_path, cache)
        (tmp_path / "repro" / "helper.py").write_text(
            CLEAN_HELPER + "\n# trailing comment\n",
            encoding="utf-8")
        report = scan(tmp_path, cache)
        assert (report.cache_hits, report.cache_misses) == (1, 1)


class TestCacheSoundness:
    def test_edited_callee_refreshes_caller_findings(self, tmp_path):
        # caller.py never changes, but editing helper.py to return
        # wall-clock must surface a DET010 finding *in caller.py*.
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        assert scan(tmp_path, cache).findings == []
        write_tree(tmp_path, TAINTED_HELPER)
        report = scan(tmp_path, cache)
        assert report.cache_hits == 1  # caller.py summary reused
        assert len(report.findings) == 1
        assert report.findings[0].path == "repro/caller.py"
        # ...and fixing it clears the finding again.
        write_tree(tmp_path, CLEAN_HELPER)
        assert scan(tmp_path, cache).findings == []

    def test_version_mismatch_discards_entries(self, tmp_path):
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        scan(tmp_path, cache)
        data = json.loads(cache.read_text(encoding="utf-8"))
        assert data["version"] == cache_version()
        data["version"] = "extractor=0"
        cache.write_text(json.dumps(data), encoding="utf-8")
        report = scan(tmp_path, cache)
        assert (report.cache_hits, report.cache_misses) == (0, 2)

    def test_corrupt_cache_file_starts_empty(self, tmp_path):
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report = scan(tmp_path, cache)
        assert report.cache_misses == 2
        assert report.findings == []

    def test_vanished_files_are_pruned_on_save(self, tmp_path):
        write_tree(tmp_path, CLEAN_HELPER)
        cache = tmp_path / "cache.json"
        scan(tmp_path, cache)
        (tmp_path / "repro" / "caller.py").unlink()
        scan(tmp_path, cache)
        data = json.loads(cache.read_text(encoding="utf-8"))
        assert sorted(data["entries"]) == ["repro/helper.py"]


class TestJsonStability:
    def test_json_report_is_byte_stable_across_runs(self, tmp_path,
                                                    capsys):
        # two findings on one line exercise the extended sort key
        write_tree(tmp_path, TAINTED_HELPER)
        args = [str(tmp_path), "--no-baseline", "--no-cache",
                "--format", "json"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        second = capsys.readouterr().out
        assert first == second
        assert json.loads(first)["findings"]
