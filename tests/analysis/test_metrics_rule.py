"""MET001 coverage + mutation tests against the *real* tree.

Mirrors the EVT001 test strategy: copy the source-of-truth modules
(``events.py``, ``audit.py``, ``metrics.py``) plus one instrumentation
site into a fixture tree, then verify that un-wiring a metric - either
dropping a kind from EVENT_METRIC_MAP or deleting the instrumentation
site that increments the mapped name - fails the pass.
"""

from pathlib import Path

import repro.core.dynamic_rr
import repro.core.heu
import repro.core.rounding
import repro.service.loop
import repro.sim.events
import repro.sim.online_engine
import repro.telemetry.audit
import repro.telemetry.metrics
from repro.analysis import run_analysis

_REAL = {
    "repro/sim/events.py": Path(repro.sim.events.__file__),
    "repro/telemetry/audit.py": Path(repro.telemetry.audit.__file__),
    "repro/telemetry/metrics.py": Path(repro.telemetry.metrics.__file__),
    # Every module holding an instrumentation site for a mapped metric
    # must ride along, or its metrics read as dead in the fixture tree.
    "repro/service/loop.py": Path(repro.service.loop.__file__),
    "repro/sim/online_engine.py": Path(
        repro.sim.online_engine.__file__),
    "repro/core/dynamic_rr.py": Path(repro.core.dynamic_rr.__file__),
    "repro/core/rounding.py": Path(repro.core.rounding.__file__),
    "repro/core/heu.py": Path(repro.core.heu.__file__),
}


def copy_tree(tmp_path, mutate=None, skip=()):
    for relpath, source in _REAL.items():
        if relpath in skip:
            continue
        text = source.read_text(encoding="utf-8")
        if mutate is not None:
            text = mutate(relpath, text)
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text, encoding="utf-8")
    return tmp_path


def met_findings(root):
    return run_analysis([root], select=["MET001"]).findings


class TestMet001:
    def test_removing_map_entry_fails_the_pass(self, tmp_path):
        def drop_shed(relpath, text):
            if relpath.endswith("metrics.py"):
                mutated = text.replace(
                    '    "shed": ("service_shed_total",),\n', "")
                assert mutated != text, "map entry not found"
                return mutated
            return text

        root = copy_tree(tmp_path, mutate=drop_shed)
        findings = met_findings(root)
        assert len(findings) == 1
        assert findings[0].rule == "MET001"
        assert "'shed'" in findings[0].message
        assert "maps to no metric" in findings[0].message
        assert findings[0].path.endswith("metrics.py")

    def test_removing_instrumentation_site_fails_the_pass(self,
                                                          tmp_path):
        def unmeter_shed(relpath, text):
            if relpath.endswith("loop.py"):
                mutated = text.replace('"service_shed_total"',
                                       '"service_shed_disabled"')
                assert mutated != text, "instrumentation not found"
                return mutated
            return text

        root = copy_tree(tmp_path, mutate=unmeter_shed)
        findings = met_findings(root)
        assert len(findings) == 1
        assert "'service_shed_total'" in findings[0].message
        assert "no instrumentation site" in findings[0].message

    def test_missing_map_table_is_one_finding(self, tmp_path):
        def rename_table(relpath, text):
            if relpath.endswith("metrics.py"):
                return text.replace("EVENT_METRIC_MAP",
                                    "EVENT_METRIC_TABLE")
            return text

        root = copy_tree(tmp_path, mutate=rename_table)
        findings = met_findings(root)
        assert len(findings) == 1
        assert "EVENT_METRIC_MAP" in findings[0].message

    def test_incomplete_fixture_tree_is_silent(self, tmp_path):
        sources_of_truth = ("repro/sim/events.py",
                            "repro/telemetry/audit.py",
                            "repro/telemetry/metrics.py")
        for missing in sources_of_truth:
            root = copy_tree(tmp_path / missing.replace("/", "_"),
                             skip=(missing,))
            assert met_findings(root) == []

    def test_map_entries_do_not_cover_themselves(self, tmp_path):
        """A name that appears only inside EVENT_METRIC_MAP (no real
        instrumentation site) must still be flagged."""

        def only_in_map(relpath, text):
            if relpath.endswith("loop.py"):
                return text.replace('"service_deferred_total"',
                                    '"service_deferred_disabled"')
            return text

        root = copy_tree(tmp_path, mutate=only_in_map)
        findings = met_findings(root)
        assert any("'service_deferred_total'" in f.message
                   for f in findings)

    def test_shipped_source_tree_passes(self):
        src_root = _REAL["repro/sim/events.py"].parents[2]
        assert src_root.name == "src"
        assert met_findings(src_root) == []
