"""Exit-code matrix and report formats for ``python -m repro.analysis``."""

import json
import subprocess
import sys
from pathlib import Path

from repro.analysis.cli import (EXIT_ERROR, EXIT_FINDINGS, EXIT_OK,
                                main)

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = (
    "def advance(clock):\n"
    "    return clock.now_ms() + 50\n")

VIOLATING = (
    "import time\n"
    "def stamp():\n"
    "    return time.time()\n")


def write_module(tmp_path, source, relpath="repro/x/mod.py"):
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_0(self, tmp_path):
        write_module(tmp_path, CLEAN)
        assert main([str(tmp_path), "--no-baseline"]) == EXIT_OK

    def test_seeded_violation_exits_1(self, tmp_path):
        write_module(tmp_path, VIOLATING)
        assert main([str(tmp_path),
                     "--no-baseline"]) == EXIT_FINDINGS

    def test_missing_path_exits_2(self, tmp_path):
        assert main([str(tmp_path / "nowhere")]) == EXIT_ERROR

    def test_unparsable_file_exits_2(self, tmp_path):
        write_module(tmp_path, "def broken(:\n")
        assert main([str(tmp_path)]) == EXIT_ERROR

    def test_unknown_rule_exits_2(self, tmp_path):
        write_module(tmp_path, CLEAN)
        assert main([str(tmp_path), "--select",
                     "ZZZ999"]) == EXIT_ERROR

    def test_malformed_baseline_exits_2(self, tmp_path):
        write_module(tmp_path, VIOLATING)
        bad = tmp_path / "base.json"
        bad.write_text("{}", encoding="utf-8")
        assert main([str(tmp_path), "--baseline",
                     str(bad)]) == EXIT_ERROR


class TestBaselineWorkflow:
    def test_write_baseline_then_rerun_exits_0(self, tmp_path,
                                               capsys):
        write_module(tmp_path, VIOLATING)
        baseline = tmp_path / "base.json"
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--write-baseline"]) == EXIT_OK
        assert baseline.exists()
        assert main([str(tmp_path), "--baseline",
                     str(baseline)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_no_baseline_flag_overrides(self, tmp_path):
        write_module(tmp_path, VIOLATING)
        baseline = tmp_path / "base.json"
        main([str(tmp_path), "--baseline", str(baseline),
              "--write-baseline"])
        assert main([str(tmp_path), "--baseline", str(baseline),
                     "--no-baseline"]) == EXIT_FINDINGS

    def test_new_violation_escapes_baseline(self, tmp_path):
        write_module(tmp_path, VIOLATING)
        baseline = tmp_path / "base.json"
        main([str(tmp_path), "--baseline", str(baseline),
              "--write-baseline"])
        write_module(
            tmp_path,
            VIOLATING + "def extra():\n    return time.time_ns()\n")
        assert main([str(tmp_path), "--baseline",
                     str(baseline)]) == EXIT_FINDINGS


class TestReportFormats:
    def test_text_report_names_rule_and_hint(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATING)
        main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "hint:" in out
        assert "new finding(s)" in out

    def test_json_format_parses(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATING)
        main([str(tmp_path), "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.analysis-report/1"
        assert payload["findings"][0]["rule"] == "DET001"

    def test_output_artifact_written(self, tmp_path, capsys):
        write_module(tmp_path, VIOLATING)
        artifact = tmp_path / "report.json"
        main([str(tmp_path), "--no-baseline", "--output",
              str(artifact)])
        capsys.readouterr()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["findings"][0]["rule"] == "DET001"

    def test_list_rules_catalogues_all_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003", "NUM001",
                        "UNIT001", "PKL001", "EVT001", "MET001",
                        "DET010", "CONC001", "CONC002", "PKL010",
                        "UNIT010"):
            assert rule_id in out


class TestWholeProgramFlags:
    def test_stats_line_on_stderr(self, tmp_path, capsys):
        write_module(tmp_path, CLEAN)
        main([str(tmp_path), "--no-baseline", "--no-cache",
              "--stats"])
        err = capsys.readouterr().err
        assert "stats:" in err
        assert "cache hit(s)" in err
        assert "call graph" in err
        assert "wall" in err

    def test_cache_round_trip_reported_in_stats(self, tmp_path,
                                                capsys):
        write_module(tmp_path, CLEAN)
        cache = tmp_path / "cache.json"
        main([str(tmp_path), "--no-baseline", "--cache", str(cache),
              "--stats"])
        assert "0 cache hit(s) / 1 miss(es)" in \
            capsys.readouterr().err
        main([str(tmp_path), "--no-baseline", "--cache", str(cache),
              "--stats"])
        assert "1 cache hit(s) / 0 miss(es)" in \
            capsys.readouterr().err

    def test_dot_artifact_written(self, tmp_path, capsys):
        write_module(tmp_path, CLEAN)
        dot = tmp_path / "callgraph.dot"
        main([str(tmp_path), "--no-baseline", "--no-cache", "--dot",
              str(dot)])
        capsys.readouterr()
        assert dot.read_text(
            encoding="utf-8").startswith("digraph callgraph {")

    def test_dot_without_dataflow_rules_exits_2(self, tmp_path,
                                                capsys):
        write_module(tmp_path, CLEAN)
        code = main([str(tmp_path), "--no-baseline", "--no-cache",
                     "--select", "DET001", "--dot",
                     str(tmp_path / "g.dot")])
        capsys.readouterr()
        assert code == EXIT_ERROR

    def test_write_baseline_reports_pruned_count(self, tmp_path,
                                                 capsys):
        write_module(tmp_path, VIOLATING)
        baseline = tmp_path / "base.json"
        main([str(tmp_path), "--baseline", str(baseline),
              "--write-baseline"])
        assert "(0 stale entries pruned)" in \
            capsys.readouterr().out
        write_module(tmp_path, CLEAN)
        main([str(tmp_path), "--baseline", str(baseline),
              "--write-baseline"])
        assert "(1 stale entry pruned)" in capsys.readouterr().out


class TestShippedTree:
    def test_module_invocation_on_src_exits_0(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert result.returncode == EXIT_OK, result.stdout + \
            result.stderr
