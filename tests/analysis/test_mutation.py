"""Whole-program mutation tests against the *real* tree.

Following the EVT001/MET001 idiom: copy the shipped sources into a
fixture tree, seed exactly one violation, and verify the
interprocedural pass catches it - in strict mode and through a
baseline frozen on the clean tree.  These are the acceptance tests
for DET010 (a wall-clock read two call-hops upstream of an Event
payload) and CONC001 (a module-level dict written from a
worker-reachable helper).
"""

import shutil
from pathlib import Path

from repro.analysis import run_analysis, save_baseline
from repro.analysis.baseline import apply_baseline, load_baseline

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

DET010_HELPERS = '''    def _stamp_now(self) -> float:
        return time.time()

    def _enrich_detail(self, slot: int) -> tuple:
        return (self._stamp_now(), slot)

'''

CONC001_HELPERS = '''_RESULT_MEMO: dict = {}


def _memoize_result(spec, result):
    _RESULT_MEMO[id(spec)] = result
    return result


'''


def copy_tree(tmp_path):
    root = tmp_path / "tree"
    shutil.copytree(REPO_SRC / "repro", root / "repro")
    return root


def seed_det010(root):
    """time.time() two call-hops upstream of an Event payload."""
    target = root / "repro" / "service" / "loop.py"
    text = target.read_text(encoding="utf-8")
    anchor = "    def tick(self"
    assert anchor in text
    text = text.replace(anchor, DET010_HELPERS + anchor, 1)
    old = "        self._ops_journal.record(event)"
    assert old in text
    new = ("        event = Event(slot=event.slot, kind=event.kind,\n"
           "                      payload={'at':"
           " self._enrich_detail(event.slot)})\n" + old)
    target.write_text(text.replace(old, new, 1), encoding="utf-8")


def seed_conc001(root):
    """Module-level dict written from a worker-reachable helper."""
    target = root / "repro" / "experiments" / "executor.py"
    text = target.read_text(encoding="utf-8")
    anchor = "def execute_run("
    assert anchor in text
    text = text.replace(anchor, CONC001_HELPERS + anchor, 1)
    marker = text.index(anchor)
    body_at = text.index("\n", text.index(":", marker)) + 1
    text = text[:body_at] + "    _memoize_result(None, None)\n" \
        + text[body_at:]
    target.write_text(text, encoding="utf-8")


def findings_for(root, select):
    return run_analysis([root], select=select).findings


class TestCleanTree:
    def test_copied_tree_is_clean(self, tmp_path):
        root = copy_tree(tmp_path)
        assert findings_for(
            root, ["DET010", "CONC001", "CONC002", "PKL010",
                   "UNIT010"]) == []


class TestDet010Mutation:
    def test_strict_mode_catches_two_hop_clock_leak(self, tmp_path):
        root = copy_tree(tmp_path)
        seed_det010(root)
        findings = findings_for(root, ["DET010"])
        assert findings, "seeded clock leak not caught"
        assert all(f.rule == "DET010" for f in findings)
        assert any("time.time()" in f.message
                   and "_enrich_detail" in f.message
                   for f in findings)
        assert all(f.path.endswith("service/loop.py")
                   for f in findings)

    def test_baseline_mode_still_catches_it(self, tmp_path):
        root = copy_tree(tmp_path)
        clean = findings_for(root, ["DET010"])
        baseline_path = save_baseline(tmp_path / "base.json", clean)
        seed_det010(root)
        findings = findings_for(root, ["DET010"])
        new, _, _ = apply_baseline(findings,
                                   load_baseline(baseline_path))
        assert new, "clock leak escaped through the baseline"


class TestConc001Mutation:
    def test_strict_mode_catches_worker_global_write(self, tmp_path):
        root = copy_tree(tmp_path)
        seed_conc001(root)
        findings = findings_for(root, ["CONC001"])
        assert len(findings) == 1
        assert "_RESULT_MEMO" in findings[0].message
        assert "execute_run -> _memoize_result" \
            in findings[0].message
        assert findings[0].path.endswith("experiments/executor.py")

    def test_baseline_mode_still_catches_it(self, tmp_path):
        root = copy_tree(tmp_path)
        clean = findings_for(root, ["CONC001"])
        baseline_path = save_baseline(tmp_path / "base.json", clean)
        seed_conc001(root)
        findings = findings_for(root, ["CONC001"])
        new, _, _ = apply_baseline(findings,
                                   load_baseline(baseline_path))
        assert len(new) == 1
        assert "_RESULT_MEMO" in new[0].message
