"""Positive/negative fixtures for DET001, DET002, and DET003."""

from repro.analysis import analyze_source


def rules_hit(source, relpath="repro/sim/mod.py", select=None):
    return [f.rule for f in analyze_source(source, relpath,
                                           select=select)]


class TestDet001WallClock:
    def test_time_time_flagged(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")
        assert rules_hit(source, select=["DET001"]) == ["DET001"]

    def test_perf_counter_from_import_flagged(self):
        source = (
            "from time import perf_counter\n"
            "def stamp():\n"
            "    return perf_counter()\n")
        assert rules_hit(source, select=["DET001"]) == ["DET001"]

    def test_datetime_now_flagged_both_import_forms(self):
        plain = (
            "import datetime\n"
            "def stamp():\n"
            "    return datetime.datetime.now()\n")
        from_form = (
            "from datetime import datetime\n"
            "def stamp():\n"
            "    return datetime.now()\n")
        assert rules_hit(plain, select=["DET001"]) == ["DET001"]
        assert rules_hit(from_form, select=["DET001"]) == ["DET001"]

    def test_negative_simulated_clock_ok(self):
        source = (
            "def advance(clock):\n"
            "    return clock.now_ms() + 50\n")
        assert rules_hit(source, select=["DET001"]) == []

    def test_allowlisted_tracer_module_ok(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.perf_counter()\n")
        assert rules_hit(source, relpath="repro/telemetry/tracer.py",
                         select=["DET001"]) == []
        assert rules_hit(source, relpath="repro/telemetry/ledger.py",
                         select=["DET001"]) == []


class TestDet002GlobalRng:
    def test_stdlib_random_flagged(self):
        source = (
            "import random\n"
            "def draw():\n"
            "    return random.random()\n")
        assert rules_hit(source, select=["DET002"]) == ["DET002"]

    def test_stdlib_from_import_flagged(self):
        source = (
            "from random import shuffle\n"
            "def mix(items):\n"
            "    shuffle(items)\n")
        assert rules_hit(source, select=["DET002"]) == ["DET002"]

    def test_numpy_legacy_global_flagged(self):
        source = (
            "import numpy as np\n"
            "def seed_all(seed):\n"
            "    np.random.seed(seed)\n")
        assert rules_hit(source, select=["DET002"]) == ["DET002"]

    def test_unseeded_default_rng_flagged(self):
        source = (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n")
        assert rules_hit(source, select=["DET002"]) == ["DET002"]

    def test_seeded_default_rng_ok(self):
        source = (
            "import numpy as np\n"
            "def fresh(seed):\n"
            "    return np.random.default_rng(seed)\n")
        assert rules_hit(source, select=["DET002"]) == []

    def test_generator_draw_ok(self):
        source = (
            "def draw(rng):\n"
            "    return rng.integers(10)\n")
        assert rules_hit(source, select=["DET002"]) == []

    def test_rng_module_allowlisted(self):
        source = (
            "import numpy as np\n"
            "def fresh():\n"
            "    return np.random.default_rng()\n")
        assert rules_hit(source, relpath="repro/rng.py",
                         select=["DET002"]) == []


class TestDet003UnorderedSerialization:
    def test_set_iteration_in_to_record_flagged(self):
        source = (
            "def to_record(stations):\n"
            "    return [s for s in set(stations)]\n")
        assert rules_hit(source, select=["DET003"]) == ["DET003"]

    def test_keys_iteration_in_export_flagged(self):
        source = (
            "def export_rows(table):\n"
            "    out = []\n"
            "    for key in table.keys():\n"
            "        out.append(key)\n"
            "    return out\n")
        assert rules_hit(source, select=["DET003"]) == ["DET003"]

    def test_sorted_wrapper_ok(self):
        source = (
            "def to_record(stations):\n"
            "    return [s for s in sorted(set(stations))]\n")
        assert rules_hit(source, select=["DET003"]) == []

    def test_non_serialization_context_ok(self):
        source = (
            "def total(stations):\n"
            "    return sum(1 for s in set(stations))\n")
        assert rules_hit(source, select=["DET003"]) == []

    def test_telemetry_module_is_always_a_context(self):
        source = (
            "def widen(stations):\n"
            "    return [s for s in set(stations)]\n")
        assert rules_hit(source, relpath="repro/telemetry/custom.py",
                         select=["DET003"]) == ["DET003"]
