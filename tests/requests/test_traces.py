"""Unit tests for the synthetic AR frame traces."""

import pytest

from repro.exceptions import ConfigurationError
from repro.requests.traces import (FrameTrace, TraceSynthesizer,
                                   rate_distribution_from_traces)


class TestFrameTrace:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FrameTrace((0.0,), (64.0,))  # too short
        with pytest.raises(ConfigurationError):
            FrameTrace((0.0, 1.0), (64.0,))  # length mismatch
        with pytest.raises(ConfigurationError):
            FrameTrace((1.0, 0.5), (64.0, 64.0))  # decreasing time
        with pytest.raises(ConfigurationError):
            FrameTrace((0.0, 1.0), (64.0, 0.0))  # non-positive size

    def test_basic_stats(self):
        trace = FrameTrace((0.0, 0.01, 0.02), (64.0, 64.0, 64.0))
        assert trace.num_frames == 3
        assert trace.duration_s == pytest.approx(0.02)
        assert trace.mean_fps() == pytest.approx(100.0)
        # 128 KB over 0.02 s = 6.4 MB/s.
        assert trace.mean_rate_mbps() == pytest.approx(6.4)

    def test_windowed_rates(self):
        timestamps = tuple(i * 0.01 for i in range(101))
        sizes = (64.0,) * 101
        trace = FrameTrace(timestamps, sizes)
        rates = trace.windowed_rates_mbps(0.25)
        assert len(rates) == 4
        for rate in rates:
            assert rate == pytest.approx(6.4, rel=0.05)

    def test_window_too_long(self):
        trace = FrameTrace((0.0, 0.01), (64.0, 64.0))
        with pytest.raises(ConfigurationError):
            trace.windowed_rates_mbps(0.0)


class TestTraceSynthesizer:
    def test_matches_published_statistics(self):
        """Braud et al. [5]: 64 KB frames at 90-120 fps."""
        synth = TraceSynthesizer(rng=0)
        trace = synth.synthesize(duration_s=5.0)
        assert 85.0 <= trace.mean_fps() <= 125.0
        mean_size = (sum(trace.frame_sizes_kb)
                     / trace.num_frames)
        assert 45.0 <= mean_size <= 85.0

    def test_raw_rate_times_amplification_hits_paper_range(self):
        """Raw ~6 MB/s x pipeline amplification lands in 30-50 MB/s."""
        synth = TraceSynthesizer(rng=1)
        trace = synth.synthesize(duration_s=5.0)
        amplified = trace.mean_rate_mbps() * 4.5
        assert 20.0 <= amplified <= 60.0

    def test_deterministic(self):
        a = TraceSynthesizer(rng=7).synthesize(2.0)
        b = TraceSynthesizer(rng=7).synthesize(2.0)
        assert a.timestamps_s == b.timestamps_s
        assert a.frame_sizes_kb == b.frame_sizes_kb

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceSynthesizer(fps_range=(120.0, 90.0))
        with pytest.raises(ConfigurationError):
            TraceSynthesizer(frame_size_kb=0.0)
        with pytest.raises(ConfigurationError):
            TraceSynthesizer(frame_size_jitter=1.0)
        with pytest.raises(ConfigurationError):
            TraceSynthesizer(rng=0).synthesize(0.0)


class TestRateDistributionFromTraces:
    def test_distribution_fits_history(self):
        synth = TraceSynthesizer(rng=3)
        traces = [synth.synthesize(4.0) for _ in range(3)]
        dist = rate_distribution_from_traces(traces, num_levels=5,
                                             unit_price=13.0)
        assert 1 <= dist.num_levels <= 5
        assert dist.probabilities.sum() == pytest.approx(1.0)
        # Rates should land in the paper's 30-50 MB/s ballpark.
        assert 15.0 <= dist.min_rate_mbps
        assert dist.max_rate_mbps <= 70.0

    def test_rewards_scale_with_price(self):
        synth = TraceSynthesizer(rng=3)
        traces = [synth.synthesize(4.0)]
        d1 = rate_distribution_from_traces(traces, 4, unit_price=10.0)
        d2 = rate_distribution_from_traces(traces, 4, unit_price=20.0)
        assert d2.rewards[0] == pytest.approx(2.0 * d1.rewards[0])

    def test_single_level(self):
        synth = TraceSynthesizer(rng=3)
        traces = [synth.synthesize(4.0)]
        dist = rate_distribution_from_traces(traces, 1, unit_price=13.0)
        assert dist.num_levels == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            rate_distribution_from_traces([], 5, 13.0)
        synth = TraceSynthesizer(rng=0)
        traces = [synth.synthesize(2.0)]
        with pytest.raises(ConfigurationError):
            rate_distribution_from_traces(traces, 0, 13.0)
        with pytest.raises(ConfigurationError):
            rate_distribution_from_traces(traces, 5, 13.0,
                                          pipeline_amplification=0.0)
