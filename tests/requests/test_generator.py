"""Unit tests for the workload generators."""

import pytest

from repro.config import NetworkConfig, RequestConfig
from repro.exceptions import ConfigurationError
from repro.network.topology import generate_topology
from repro.requests.generator import RequestGenerator, slotted_arrivals


@pytest.fixture(scope="module")
def net():
    return generate_topology(NetworkConfig(num_base_stations=6), rng=0)


@pytest.fixture()
def generator(net):
    return RequestGenerator(RequestConfig(), net, rng=0)


class TestGenerateOne:
    def test_fields_within_config(self, generator, net):
        cfg = generator.config
        req = generator.generate_one(0)
        assert req.request_id == 0
        assert req.serving_station in net.station_ids
        assert cfg.tasks_range[0] <= len(req.pipeline) <= cfg.tasks_range[1]
        assert req.deadline_ms == cfg.deadline_ms
        assert req.c_unit_mhz_per_mbps == cfg.c_unit_mhz_per_mbps
        lo, hi = cfg.data_rate_range_mbps
        assert lo <= req.distribution.min_rate_mbps
        assert req.distribution.max_rate_mbps <= hi

    def test_explicit_station(self, generator):
        req = generator.generate_one(1, serving_station=4)
        assert req.serving_station == 4

    def test_rewards_within_price_bounds(self, generator):
        cfg = generator.config
        lo, hi = cfg.reward_unit_range
        rlo, rhi = cfg.data_rate_range_mbps
        for j in range(20):
            req = generator.generate_one(j)
            rewards = req.distribution.rewards
            assert rewards.max() <= hi * rhi * 1.1  # + jitter headroom
            assert rewards.min() >= lo * rlo * 0.9


class TestGenerateBatch:
    def test_batch_size_and_ids(self, generator):
        batch = generator.generate_batch(12)
        assert len(batch) == 12
        assert [r.request_id for r in batch] == list(range(12))
        assert all(r.arrival_slot == 0 for r in batch)

    def test_default_size_from_config(self, net):
        gen = RequestGenerator(RequestConfig(num_requests=7), net, rng=0)
        assert len(gen.generate_batch()) == 7

    def test_negative_size_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_batch(-1)

    def test_deterministic_with_seed(self, net):
        a = RequestGenerator(RequestConfig(), net, rng=5).generate_batch(5)
        b = RequestGenerator(RequestConfig(), net, rng=5).generate_batch(5)
        for ra, rb in zip(a, b):
            assert ra.serving_station == rb.serving_station
            assert len(ra.pipeline) == len(rb.pipeline)
            assert ra.expected_reward == pytest.approx(rb.expected_reward)


class TestGenerateArrivals:
    def test_arrivals_sorted_and_in_horizon(self, generator):
        arrivals = generator.generate_arrivals(20, horizon_slots=50)
        slots = [r.arrival_slot for r in arrivals]
        assert slots == sorted(slots)
        assert all(0 <= s < 50 for s in slots)

    def test_bad_horizon_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.generate_arrivals(5, horizon_slots=0)


class TestSlottedArrivals:
    def test_bucketing(self, generator):
        arrivals = generator.generate_arrivals(30, horizon_slots=40)
        buckets = slotted_arrivals(arrivals, horizon_slots=40)
        assert len(buckets) == 40
        total = sum(len(b) for b in buckets)
        assert total == 30
        for t, bucket in enumerate(buckets):
            assert all(r.arrival_slot == t for r in bucket)

    def test_out_of_horizon_dropped(self, generator):
        arrivals = generator.generate_arrivals(30, horizon_slots=40)
        buckets = slotted_arrivals(arrivals, horizon_slots=10)
        kept = sum(len(b) for b in buckets)
        assert kept == sum(1 for r in arrivals if r.arrival_slot < 10)

    def test_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            slotted_arrivals([], horizon_slots=0)
