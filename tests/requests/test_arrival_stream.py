"""Tests for the lazy, checkpointable Poisson arrival stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RequestConfig
from repro.exceptions import ConfigurationError
from repro.requests.arrivals import PoissonArrivalStream
from repro.requests.generator import RequestGenerator


def make_stream(small_instance, mean=3.0, seed=7, limit=None):
    generator = RequestGenerator(RequestConfig(), small_instance.network,
                                 rng=np.random.default_rng(seed))
    return PoissonArrivalStream(generator, mean,
                                rng=np.random.default_rng(seed + 1),
                                limit=limit)


def drain(stream, slots):
    batches = []
    for _ in range(slots):
        batches.append(stream.next_batch())
    return batches


class TestBasics:
    def test_slots_are_consecutive_from_zero(self, small_instance):
        stream = make_stream(small_instance)
        slots = [slot for slot, _ in drain(stream, 10)]
        assert slots == list(range(10))

    def test_ids_are_monotonic_and_dense(self, small_instance):
        stream = make_stream(small_instance, mean=4.0)
        ids = [r.request_id for _, batch in drain(stream, 30)
               for r in batch]
        assert ids == list(range(len(ids)))
        assert stream.emitted == len(ids)

    def test_requests_carry_their_arrival_slot(self, small_instance):
        stream = make_stream(small_instance, mean=4.0)
        for slot, batch in drain(stream, 20):
            for request in batch:
                assert request.arrival_slot == slot

    def test_same_seed_same_stream(self, small_instance):
        a = make_stream(small_instance, seed=11)
        b = make_stream(small_instance, seed=11)
        for _ in range(25):
            slot_a, batch_a = a.next_batch()
            slot_b, batch_b = b.next_batch()
            assert slot_a == slot_b
            assert [r.request_id for r in batch_a] == \
                [r.request_id for r in batch_b]
            assert [r.expected_demand_mhz for r in batch_a] == \
                [r.expected_demand_mhz for r in batch_b]


class TestLimit:
    def test_limit_caps_total_arrivals(self, small_instance):
        stream = make_stream(small_instance, mean=5.0, limit=12)
        total = sum(len(batch) for _, batch in drain(stream, 40))
        assert total == 12
        assert stream.exhausted

    def test_exhausted_stream_yields_empty_batches(self, small_instance):
        stream = make_stream(small_instance, mean=5.0, limit=3)
        drain(stream, 10)
        slot, batch = stream.next_batch()
        assert batch == []
        assert slot == 10  # slots keep counting

    def test_zero_limit_is_immediately_exhausted(self, small_instance):
        stream = make_stream(small_instance, limit=0)
        assert stream.exhausted
        _, batch = stream.next_batch()
        assert batch == []


class TestCheckpoint:
    def test_restore_replays_identical_remainder(self, small_instance):
        baseline = make_stream(small_instance, seed=3)
        drain(baseline, 15)
        state = baseline.export_state()
        tail_a = drain(baseline, 15)

        resumed = make_stream(small_instance, seed=999)  # wrong seed
        resumed.restore_state(state)
        tail_b = drain(resumed, 15)

        for (slot_a, batch_a), (slot_b, batch_b) in zip(tail_a, tail_b):
            assert slot_a == slot_b
            assert [r.request_id for r in batch_a] == \
                [r.request_id for r in batch_b]
            assert [r.expected_demand_mhz for r in batch_a] == \
                [r.expected_demand_mhz for r in batch_b]
            assert [r.serving_station for r in batch_a] == \
                [r.serving_station for r in batch_b]

    def test_export_does_not_advance_the_stream(self, small_instance):
        stream = make_stream(small_instance, seed=5)
        drain(stream, 5)
        before = stream.export_state()
        stream.export_state()
        assert stream.export_state()["next_slot"] == before["next_slot"]
        assert stream.next_slot == 5


class TestValidation:
    def test_rejects_nonpositive_mean(self, small_instance):
        with pytest.raises(ConfigurationError):
            make_stream(small_instance, mean=0.0)

    def test_rejects_negative_limit(self, small_instance):
        with pytest.raises(ConfigurationError):
            make_stream(small_instance, limit=-1)


class TestFinitePathsUnchanged:
    """The pre-existing finite helpers must stay byte-identical."""

    def test_poisson_arrivals_reference_draw(self):
        from repro.requests.arrivals import poisson_arrivals

        slots = poisson_arrivals(10, 50,
                                 rng=np.random.default_rng(42))
        reference = sorted(int(s) for s in np.random.default_rng(42)
                           .integers(0, 50, size=10))
        assert slots == reference
