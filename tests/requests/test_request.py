"""Unit tests for the ARRequest realization protocol."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SchedulingError
from repro.requests.distributions import RateRewardDistribution
from repro.requests.request import ARRequest
from repro.requests.tasks import standard_ar_pipeline


def make_request(request_id=0, **kwargs):
    dist = RateRewardDistribution(
        rates_mbps=[30.0, 50.0],
        probabilities=[0.7, 0.3],
        rewards=[450.0, 460.0],
    )
    defaults = dict(
        request_id=request_id, serving_station=0,
        pipeline=standard_ar_pipeline(4), distribution=dist,
        deadline_ms=200.0, c_unit_mhz_per_mbps=20.0)
    defaults.update(kwargs)
    return ARRequest(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_request(request_id=-1)
        with pytest.raises(ConfigurationError):
            make_request(serving_station=-1)
        with pytest.raises(ConfigurationError):
            make_request(deadline_ms=0.0)
        with pytest.raises(ConfigurationError):
            make_request(arrival_slot=-1)
        with pytest.raises(ConfigurationError):
            make_request(stream_duration_slots=0)
        with pytest.raises(ConfigurationError):
            make_request(c_unit_mhz_per_mbps=0.0)


class TestDistributionViews:
    def test_expected_rate_and_demand(self):
        req = make_request()
        assert req.expected_rate_mbps == pytest.approx(36.0)
        assert req.expected_demand_mhz == pytest.approx(720.0)

    def test_max_demand(self):
        req = make_request()
        assert req.max_demand_mhz == pytest.approx(1000.0)

    def test_expected_reward(self):
        req = make_request()
        assert req.expected_reward == pytest.approx(453.0)

    def test_demand_of_rate(self):
        req = make_request()
        assert req.demand_of_rate_mhz(40.0) == pytest.approx(800.0)


class TestRealization:
    def test_unrealized_access_raises(self):
        req = make_request()
        assert not req.is_realized
        with pytest.raises(SchedulingError):
            _ = req.realized_rate_mbps
        with pytest.raises(SchedulingError):
            _ = req.realized_reward

    def test_realize_is_idempotent(self):
        req = make_request()
        first = req.realize(np.random.default_rng(0))
        second = req.realize(np.random.default_rng(999))
        assert first == second
        assert req.is_realized

    def test_realized_values_consistent(self):
        req = make_request()
        rate, reward = req.realize(np.random.default_rng(0))
        assert req.realized_rate_mbps == rate
        assert req.realized_reward == reward
        assert req.realized_demand_mhz == pytest.approx(rate * 20.0)

    def test_force_realization(self):
        req = make_request()
        req.force_realization(30.0, 450.0)
        assert req.realized_rate_mbps == 30.0
        # Same values again are fine.
        req.force_realization(30.0, 450.0)
        # Conflicting values raise.
        with pytest.raises(SchedulingError):
            req.force_realization(50.0, 460.0)

    def test_reset_realization(self):
        req = make_request()
        req.force_realization(30.0, 450.0)
        req.reset_realization()
        assert not req.is_realized


class TestWork:
    def test_total_work(self):
        req = make_request(stream_duration_slots=40)
        req.force_realization(30.0, 450.0)
        # 30 MB/s for 40 slots of 50 ms = 2 s -> 60 MB.
        assert req.total_work_mb(50.0) == pytest.approx(60.0)

    def test_total_work_validation(self):
        req = make_request()
        req.force_realization(30.0, 450.0)
        with pytest.raises(ConfigurationError):
            req.total_work_mb(0.0)

    def test_repr_mentions_state(self):
        req = make_request()
        assert "unrealized" in repr(req)
        req.force_realization(30.0, 450.0)
        assert "realized" in repr(req)
