"""Unit tests for AR task pipelines."""

import pytest

from repro.exceptions import ConfigurationError
from repro.requests.tasks import (ARTask, STANDARD_STAGES, TaskPipeline,
                                  standard_ar_pipeline)


class TestARTask:
    def test_output_mb(self):
        task = ARTask(name="t", output_kb=64.0)
        assert task.output_mb == pytest.approx(0.064)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ARTask(name="", output_kb=1.0)
        with pytest.raises(ConfigurationError):
            ARTask(name="t", output_kb=0.0)
        with pytest.raises(ConfigurationError):
            ARTask(name="t", output_kb=1.0, compute_weight=0.0)


class TestStandardStages:
    """The four-stage pipeline of Braud et al. [5]."""

    def test_stage_names_and_sizes(self):
        names = [t.name for t in STANDARD_STAGES]
        assert names == ["render_object", "track_objects",
                         "update_world_model", "recognize_objects"]
        sizes = [t.output_kb for t in STANDARD_STAGES]
        assert sizes == [100.0, 64.0, 64.0, 64.0]

    def test_render_is_heaviest(self):
        weights = [t.compute_weight for t in STANDARD_STAGES]
        assert weights[0] == max(weights)


class TestTaskPipeline:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskPipeline([])

    def test_len_iter_getitem(self):
        pipeline = standard_ar_pipeline(4)
        assert len(pipeline) == 4
        assert list(pipeline)[0].name == "render_object"
        assert pipeline[1].name == "track_objects"

    def test_total_compute_weight(self):
        pipeline = standard_ar_pipeline(4)
        assert pipeline.total_compute_weight == pytest.approx(5.0)

    def test_total_output_mb(self):
        pipeline = standard_ar_pipeline(4)
        assert pipeline.total_output_mb == pytest.approx(0.292)

    def test_heaviest_index_is_render(self):
        assert standard_ar_pipeline(4).heaviest_index() == 0

    def test_heaviest_ties_break_earliest(self):
        pipeline = TaskPipeline([
            ARTask("a", 1.0, compute_weight=1.0),
            ARTask("b", 1.0, compute_weight=1.0),
        ])
        assert pipeline.heaviest_index() == 0

    def test_split(self):
        pipeline = standard_ar_pipeline(4)
        head, tail = pipeline.split(1)
        assert len(head) == 1 and len(tail) == 3
        assert head[0].name == "render_object"
        assert (head.total_compute_weight + tail.total_compute_weight
                == pytest.approx(pipeline.total_compute_weight))

    def test_split_bounds(self):
        pipeline = standard_ar_pipeline(3)
        with pytest.raises(ConfigurationError):
            pipeline.split(0)
        with pytest.raises(ConfigurationError):
            pipeline.split(3)


class TestStandardPipelineFactory:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
    def test_lengths(self, n):
        assert len(standard_ar_pipeline(n)) == n

    def test_extension_stages_named(self):
        pipeline = standard_ar_pipeline(6)
        assert pipeline[4].name == "refine_stage_1"
        assert pipeline[5].name == "refine_stage_2"

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            standard_ar_pipeline(0)
        with pytest.raises(ConfigurationError):
            standard_ar_pipeline(9)
