"""Unit and property tests for the (rate, reward) joint distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.requests.distributions import (RateRewardDistribution,
                                          make_decaying_distribution)


@pytest.fixture()
def dist():
    return RateRewardDistribution(
        rates_mbps=[30.0, 40.0, 50.0],
        probabilities=[0.5, 0.3, 0.2],
        rewards=[400.0, 500.0, 450.0],
    )


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([1.0, 2.0], [1.0], [1.0, 2.0])

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([1.0, 2.0], [0.4, 0.4], [1.0, 1.0])

    def test_rates_strictly_increasing(self):
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([2.0, 1.0], [0.5, 0.5], [1.0, 1.0])
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([1.0, 1.0], [0.5, 0.5], [1.0, 1.0])

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([-1.0, 2.0], [0.5, 0.5], [1.0, 1.0])
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([1.0, 2.0], [0.5, 0.5], [-1.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            RateRewardDistribution([], [], [])

    def test_views_read_only(self, dist):
        with pytest.raises(ValueError):
            dist.rates_mbps[0] = 99.0


class TestExpectations:
    def test_expected_rate(self, dist):
        assert dist.expected_rate() == pytest.approx(
            30 * 0.5 + 40 * 0.3 + 50 * 0.2)

    def test_expected_reward(self, dist):
        assert dist.expected_reward() == pytest.approx(
            400 * 0.5 + 500 * 0.3 + 450 * 0.2)

    def test_truncated_rate_below_support(self, dist):
        assert dist.expected_truncated_rate(0.0) == 0.0

    def test_truncated_rate_above_support(self, dist):
        assert dist.expected_truncated_rate(100.0) == pytest.approx(
            dist.expected_rate())

    def test_truncated_rate_mid(self, dist):
        # min(rho, 35): 30*0.5 + 35*0.3 + 35*0.2
        assert dist.expected_truncated_rate(35.0) == pytest.approx(
            30 * 0.5 + 35 * 0.5)

    def test_truncation_monotone(self, dist):
        caps = np.linspace(0, 60, 20)
        values = [dist.expected_truncated_rate(c) for c in caps]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_reward_within_zero_cap(self, dist):
        assert dist.expected_reward_within(-1.0) == 0.0
        assert dist.expected_reward_within(10.0) == 0.0

    def test_reward_within_partial(self, dist):
        # Only the 30 MB/s level fits.
        assert dist.expected_reward_within(35.0) == pytest.approx(200.0)

    def test_reward_within_full(self, dist):
        assert dist.expected_reward_within(50.0) == pytest.approx(
            dist.expected_reward())

    def test_probability_within(self, dist):
        assert dist.probability_within(35.0) == pytest.approx(0.5)
        assert dist.probability_within(50.0) == pytest.approx(1.0)

    def test_reward_of_rate(self, dist):
        assert dist.reward_of_rate(40.0) == 500.0
        with pytest.raises(ConfigurationError):
            dist.reward_of_rate(41.0)


class TestSampling:
    def test_sample_in_support(self, dist):
        rng = np.random.default_rng(0)
        for _ in range(50):
            rate, reward = dist.sample(rng)
            assert rate in (30.0, 40.0, 50.0)
            assert reward == dist.reward_of_rate(rate)

    def test_sample_frequencies(self, dist):
        rng = np.random.default_rng(1)
        samples = [dist.sample(rng)[0] for _ in range(4000)]
        freq30 = sum(1 for s in samples if s == 30.0) / len(samples)
        assert freq30 == pytest.approx(0.5, abs=0.05)

    def test_sample_deterministic_with_seed(self, dist):
        a = [dist.sample(np.random.default_rng(3)) for _ in range(5)]
        b = [dist.sample(np.random.default_rng(3)) for _ in range(5)]
        assert a == b


class TestFactory:
    def test_decay_makes_large_rates_rare(self):
        dist = make_decaying_distribution((30.0, 50.0), 5, 0.6, 13.0, rng=0)
        probs = dist.probabilities
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_uniform_when_decay_one(self):
        dist = make_decaying_distribution((30.0, 50.0), 4, 1.0, 13.0, rng=0)
        assert np.allclose(dist.probabilities, 0.25)

    def test_rewards_demand_independent(self):
        """Paper Section I: rewards and data rates are independent.

        Within one request the reward column must be (nearly) flat
        across rate levels - not proportional to the level.
        """
        dist = make_decaying_distribution((30.0, 50.0), 5, 0.6, 13.0,
                                          rng=0, price_jitter=0.0)
        rewards = dist.rewards
        assert np.allclose(rewards, rewards[0])

    def test_reward_scale_follows_price_and_range(self):
        dist = make_decaying_distribution((30.0, 50.0), 5, 0.6, 13.0,
                                          rng=0, price_jitter=0.0)
        assert 13.0 * 30.0 <= dist.rewards[0] <= 13.0 * 50.0

    def test_single_level(self):
        dist = make_decaying_distribution((30.0, 50.0), 1, 0.6, 13.0, rng=0)
        assert dist.num_levels == 1
        assert dist.rates_mbps[0] == pytest.approx(40.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_decaying_distribution((50.0, 30.0), 5, 0.6, 13.0)
        with pytest.raises(ConfigurationError):
            make_decaying_distribution((30.0, 50.0), 0, 0.6, 13.0)
        with pytest.raises(ConfigurationError):
            make_decaying_distribution((30.0, 50.0), 5, 0.0, 13.0)
        with pytest.raises(ConfigurationError):
            make_decaying_distribution((30.0, 50.0), 5, 0.6, -1.0)

    @settings(max_examples=25, deadline=None)
    @given(levels=st.integers(min_value=1, max_value=10),
           decay=st.floats(min_value=0.1, max_value=1.0),
           seed=st.integers(min_value=0, max_value=500))
    def test_factory_always_valid_property(self, levels, decay, seed):
        dist = make_decaying_distribution((30.0, 50.0), levels, decay,
                                          13.0, rng=seed)
        assert dist.probabilities.sum() == pytest.approx(1.0)
        assert dist.expected_rate() <= 50.0
        assert dist.expected_rate() >= 30.0
        assert dist.expected_reward_within(50.0) == pytest.approx(
            dist.expected_reward())
