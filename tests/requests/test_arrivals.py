"""Unit and statistical tests for the arrival processes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.requests.arrivals import (assign_arrival_slots, burst_arrivals,
                                     diurnal_arrivals, poisson_arrivals)


class TestPoisson:
    def test_sorted_and_in_horizon(self):
        slots = poisson_arrivals(50, 100, rng=0)
        assert slots == sorted(slots)
        assert all(0 <= s < 100 for s in slots)
        assert len(slots) == 50

    def test_roughly_uniform(self):
        slots = poisson_arrivals(4000, 100, rng=1)
        first_half = sum(1 for s in slots if s < 50)
        assert first_half == pytest.approx(2000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(5, 0)
        with pytest.raises(ConfigurationError):
            poisson_arrivals(-1, 10)


class TestDiurnal:
    def test_sorted_and_in_horizon(self):
        slots = diurnal_arrivals(50, 100, rng=0)
        assert slots == sorted(slots)
        assert all(0 <= s < 100 for s in slots)

    def test_peak_concentration(self):
        """A sharp single peak concentrates arrivals mid-horizon."""
        slots = diurnal_arrivals(4000, 100, peak_sharpness=20.0,
                                 num_peaks=1, rng=2)
        middle = sum(1 for s in slots if 25 <= s < 75)
        assert middle > 0.6 * len(slots)

    def test_zero_sharpness_is_uniform(self):
        slots = diurnal_arrivals(4000, 100, peak_sharpness=0.0, rng=3)
        first_half = sum(1 for s in slots if s < 50)
        assert first_half == pytest.approx(2000, rel=0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(5, 10, peak_sharpness=-1.0)
        with pytest.raises(ConfigurationError):
            diurnal_arrivals(5, 10, num_peaks=0)


class TestBurst:
    def test_burst_window_density(self):
        slots = burst_arrivals(1000, 100, burst_start=40,
                               burst_length=10, burst_fraction=0.6,
                               rng=0)
        in_burst = sum(1 for s in slots if 40 <= s < 50)
        assert in_burst == pytest.approx(600, abs=60)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            burst_arrivals(10, 100, burst_start=95, burst_length=10)
        with pytest.raises(ConfigurationError):
            burst_arrivals(10, 100, burst_start=-1, burst_length=5)
        with pytest.raises(ConfigurationError):
            burst_arrivals(10, 100, burst_start=0, burst_length=5,
                           burst_fraction=1.5)


class TestAssign:
    def test_round_trip(self, small_instance):
        requests = small_instance.new_workload(10, seed=0)
        slots = poisson_arrivals(10, 40, rng=0)
        stamped = assign_arrival_slots(requests, slots)
        assert sorted(r.arrival_slot for r in stamped) == slots
        assert {r.request_id for r in stamped} == {
            r.request_id for r in requests}
        # Distribution identity preserved.
        by_id_old = {r.request_id: r for r in requests}
        for request in stamped:
            old = by_id_old[request.request_id]
            assert request.expected_reward == pytest.approx(
                old.expected_reward)

    def test_length_mismatch(self, small_instance):
        requests = small_instance.new_workload(3, seed=0)
        with pytest.raises(ConfigurationError):
            assign_arrival_slots(requests, [0, 1])

    def test_stamped_requests_run_online(self, small_instance):
        """Burst arrivals drive the engine end to end."""
        from repro.core.dynamic_rr import DynamicRR
        from repro.sim.online_engine import OnlineEngine

        requests = small_instance.new_workload(20, seed=1)
        slots = burst_arrivals(20, 40, burst_start=10, burst_length=5,
                               rng=1)
        stamped = assign_arrival_slots(requests, slots)
        engine = OnlineEngine(small_instance, stamped,
                              horizon_slots=40, rng=1)
        result = engine.run(DynamicRR(rng=1))
        assert len(result) == 20
