"""Tests for the Random sanity-floor baseline."""

import pytest

from repro.baselines.random_placement import RandomOffline, RandomOnline
from repro.core.heu import Heu
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine


class TestOffline:
    def test_runs_and_decides_everything(self, small_instance,
                                         small_workload):
        result = run_offline(RandomOffline(rng=0), small_instance,
                             small_workload, seed=0)
        assert len(result) == len(small_workload)
        assert result.algorithm == "Random"

    def test_placements_feasible(self, small_instance, small_workload):
        result = run_offline(RandomOffline(rng=0), small_instance,
                             small_workload, seed=0)
        by_id = {r.request_id: r for r in small_workload}
        for decision in result.decisions.values():
            if decision.admitted:
                assert small_instance.latency.is_feasible(
                    by_id[decision.request_id],
                    decision.primary_station)

    def test_seeded_placement_deterministic(self, small_instance):
        a = run_offline(RandomOffline(rng=7), small_instance,
                        small_instance.new_workload(15, seed=2), seed=2)
        b = run_offline(RandomOffline(rng=7), small_instance,
                        small_instance.new_workload(15, seed=2), seed=2)
        assert a.total_reward == pytest.approx(b.total_reward)

    def test_heu_selects_higher_value_requests(self, small_instance):
        """The selection effect: at saturation, Heu's reward per served
        request exceeds Random's (the LP carries the high-value
        requests).

        Note Random-with-global-fallback is a *strong* baseline on raw
        capacity utilization - it can beat Heu on total reward because
        the slot discipline strands part of each station (see
        EXPERIMENTS.md, Known deviations).  The per-request value gap
        is the effect the paper's ER-aware machinery buys.
        """
        heu_value, random_value = [], []
        for seed in range(3):
            workload = small_instance.new_workload(45, seed=seed)
            heu = run_offline(Heu(), small_instance, workload,
                              seed=seed)
            workload = small_instance.new_workload(45, seed=seed)
            rand = run_offline(RandomOffline(rng=seed), small_instance,
                               workload, seed=seed)
            if heu.num_rewarded and rand.num_rewarded:
                heu_value.append(heu.total_reward / heu.num_rewarded)
                random_value.append(rand.total_reward
                                    / rand.num_rewarded)
        assert sum(heu_value) > sum(random_value)


class TestOnline:
    def test_runs_online(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(RandomOnline(rng=0))
        assert len(result) == len(online_workload)
        assert result.total_reward >= 0.0

    def test_dynamic_rr_beats_random_at_saturation(self,
                                                   small_instance):
        from repro.core.dynamic_rr import DynamicRR

        dynamic_total, random_total = 0.0, 0.0
        for seed in range(2):
            workload = small_instance.new_workload(
                40, seed=seed, horizon_slots=40)
            engine = OnlineEngine(small_instance, workload,
                                  horizon_slots=40, rng=seed)
            dynamic_total += engine.run(
                DynamicRR(rng=seed)).total_reward
            workload = small_instance.new_workload(
                40, seed=seed, horizon_slots=40)
            engine = OnlineEngine(small_instance, workload,
                                  horizon_slots=40, rng=seed)
            random_total += engine.run(
                RandomOnline(rng=seed)).total_reward
        assert dynamic_total > random_total * 0.9
