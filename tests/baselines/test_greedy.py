"""Unit tests for the Greedy baseline."""


from repro.baselines.greedy import (GreedyOffline, GreedyOnline,
                                    _greedy_order, _min_latency_station)
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine


class TestOrdering:
    def test_heaviest_first(self, small_instance, small_workload):
        ordered = _greedy_order(small_instance, small_workload)
        keys = [r.pipeline.total_compute_weight * r.expected_rate_mbps
                for r in ordered]
        assert keys == sorted(keys, reverse=True)


class TestPlacementRule:
    def test_picks_min_latency_station(self, small_instance,
                                       small_workload):
        ledger = small_instance.new_ledger()
        request = small_workload[0]
        sid = _min_latency_station(small_instance, request, ledger)
        feasible = small_instance.latency.feasible_stations(request)
        assert sid == feasible[0]

    def test_no_fallback_when_optimal_full(self, small_instance,
                                           small_workload):
        """[32]'s greedy rejects rather than falling back globally."""
        ledger = small_instance.new_ledger()
        request = small_workload[0]
        best = _min_latency_station(small_instance, request, ledger)
        ledger.reserve(999, best,
                       small_instance.network.station(best).capacity_mhz)
        assert _min_latency_station(small_instance, request,
                                    ledger) is None


class TestOffline:
    def test_runs(self, small_instance, small_workload):
        result = run_offline(GreedyOffline(), small_instance,
                             small_workload, seed=0)
        assert len(result) == len(small_workload)
        assert result.algorithm == "Greedy"

    def test_admitted_meet_deadlines(self, small_instance,
                                     small_workload):
        result = run_offline(GreedyOffline(), small_instance,
                             small_workload, seed=0)
        for decision in result.decisions.values():
            if decision.admitted:
                assert decision.deadline_met

    def test_lowest_latency_profile(self, small_instance):
        """Greedy's admitted latency should beat Heu's (Fig. 3(b))."""
        from repro.core.heu import Heu

        greedy_lat, heu_lat = [], []
        for seed in range(3):
            wl = small_instance.new_workload(30, seed=seed)
            greedy_lat.append(run_offline(GreedyOffline(),
                                          small_instance, wl,
                                          seed=seed).average_latency_ms())
            wl = small_instance.new_workload(30, seed=seed)
            heu_lat.append(run_offline(Heu(), small_instance, wl,
                                       seed=seed).average_latency_ms())
        assert sum(greedy_lat) < sum(heu_lat)


class TestOnline:
    def test_runs_online(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(GreedyOnline())
        assert len(result) == len(online_workload)
        assert result.algorithm == "Greedy"

    def test_earns_reward(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(GreedyOnline())
        assert result.total_reward > 0.0
