"""Unit tests for the HeuKKT baseline."""


from repro.baselines.heukkt import (CLOUD_RTT_MS, EDGE_UTIL_TARGET,
                                    HeuKktOffline, HeuKktOnline,
                                    _kkt_station)
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine


class TestPlacementRule:
    def test_prefers_lowest_utilization(self, small_instance,
                                        small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        feasible = small_instance.latency.feasible_stations(request)
        # Load every feasible station except one a bit.
        for sid in feasible[1:]:
            ledger.reserve(900 + sid, sid, 100.0)
        choice = _kkt_station(small_instance, request, ledger)
        assert choice == feasible[0]

    def test_respects_util_target(self, small_instance, small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        for sid in small_instance.network.station_ids:
            capacity = small_instance.network.station(sid).capacity_mhz
            ledger.reserve(900 + sid, sid,
                           EDGE_UTIL_TARGET * capacity)
        assert _kkt_station(small_instance, request, ledger) is None


class TestOffline:
    def test_every_request_decided(self, small_instance, small_workload):
        result = run_offline(HeuKktOffline(), small_instance,
                             small_workload, seed=0)
        assert len(result) == len(small_workload)
        # HeuKKT admits everything (edge or cloud).
        assert result.num_admitted == len(small_workload)

    def test_cloud_requests_earn_nothing(self, small_instance):
        """Spillover goes to the cloud: latency CLOUD_RTT_MS, reward 0."""
        workload = small_instance.new_workload(num_requests=60, seed=1)
        result = run_offline(HeuKktOffline(), small_instance, workload,
                             seed=1)
        cloud = [d for d in result.decisions.values()
                 if d.admitted and d.primary_station is None]
        assert cloud, "60 requests must overflow the 0.75 edge target"
        for decision in cloud:
            assert decision.latency_ms == CLOUD_RTT_MS
            assert decision.reward == 0.0

    def test_edge_share_respects_util_target_in_plan(self,
                                                     small_instance):
        workload = small_instance.new_workload(num_requests=60, seed=1)
        result = run_offline(HeuKktOffline(), small_instance, workload,
                             seed=1)
        by_id = {r.request_id: r for r in workload}
        # Sum of realized (truncated) demand per station stays <= C.
        load = {sid: 0.0 for sid in small_instance.network.station_ids}
        for d in result.decisions.values():
            if d.admitted and d.primary_station is not None:
                load[d.primary_station] += min(
                    by_id[d.request_id].realized_demand_mhz,
                    small_instance.network.station(
                        d.primary_station).capacity_mhz)
        for sid, total in load.items():
            capacity = small_instance.network.station(sid).capacity_mhz
            assert total <= capacity + 1e-6

    def test_high_average_latency(self, small_instance):
        """The cloud share drags HeuKKT's average latency up
        (Fig. 3(b): HeuKKT has the highest latency)."""
        from repro.core.heu import Heu

        workload = small_instance.new_workload(num_requests=60, seed=2)
        kkt = run_offline(HeuKktOffline(), small_instance, workload,
                          seed=2)
        workload = small_instance.new_workload(num_requests=60, seed=2)
        heu = run_offline(Heu(), small_instance, workload, seed=2)
        assert kkt.average_latency_ms() > heu.average_latency_ms()


class TestOnline:
    def test_every_pending_request_dispatched(self, small_instance,
                                              online_workload):
        """The online version never leaves a request waiting: edge now
        or cloud now."""
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(HeuKktOnline())
        assert result.num_admitted == len(online_workload)

    def test_cloud_spill_under_load(self, small_instance):
        workload = small_instance.new_workload(num_requests=50, seed=3,
                                               horizon_slots=40)
        engine = OnlineEngine(small_instance, workload,
                              horizon_slots=40, rng=3)
        result = engine.run(HeuKktOnline())
        cloud = [d for d in result.decisions.values()
                 if d.admitted and d.primary_station is None]
        assert cloud
