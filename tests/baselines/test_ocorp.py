"""Unit tests for the OCORP baseline."""


from repro.baselines.ocorp import (LOCAL_CANDIDATES, OcorpOffline,
                                   OcorpOnline, _best_fit_station,
                                   _local_candidates, _ocorp_order)
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine


class TestOrdering:
    def test_sorts_by_arrival_then_volume(self, small_instance):
        workload = small_instance.new_workload(num_requests=10, seed=0,
                                               horizon_slots=20)
        ordered = _ocorp_order(workload)
        keys = [(r.arrival_slot,
                 r.expected_rate_mbps * r.stream_duration_slots,
                 r.request_id) for r in ordered]
        assert keys == sorted(keys)


class TestLocality:
    def test_candidates_are_nearest_feasible(self, small_instance,
                                             small_workload):
        request = small_workload[0]
        local = _local_candidates(small_instance, request)
        feasible = small_instance.latency.feasible_stations(request)
        assert local == feasible[:LOCAL_CANDIDATES]
        assert len(local) <= LOCAL_CANDIDATES

    def test_best_fit_prefers_tightest(self, small_instance,
                                       small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        local = _local_candidates(small_instance, request)
        if len(local) >= 2:
            # Load the first candidate so it becomes the tighter fit
            # while still fitting the expected demand.
            capacity = small_instance.network.station(
                local[0]).capacity_mhz
            fill = capacity - request.expected_demand_mhz - 1.0
            if fill > 0:
                ledger.reserve(999, local[0], fill)
            choice = _best_fit_station(small_instance, request, ledger)
            assert choice == local[0]

    def test_none_when_local_full(self, small_instance, small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        for sid in _local_candidates(small_instance, request):
            ledger.reserve(999, sid,
                           small_instance.network.station(
                               sid).capacity_mhz)
        assert _best_fit_station(small_instance, request, ledger) is None


class TestOffline:
    def test_runs(self, small_instance, small_workload):
        result = run_offline(OcorpOffline(), small_instance,
                             small_workload, seed=0)
        assert len(result) == len(small_workload)
        assert result.algorithm == "OCORP"

    def test_only_local_stations_used(self, small_instance,
                                      small_workload):
        result = run_offline(OcorpOffline(), small_instance,
                             small_workload, seed=0)
        by_id = {r.request_id: r for r in small_workload}
        for decision in result.decisions.values():
            if decision.admitted:
                local = _local_candidates(small_instance,
                                          by_id[decision.request_id])
                assert decision.primary_station in local


class TestOnline:
    def test_runs_online(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(OcorpOnline())
        assert len(result) == len(online_workload)
        assert result.total_reward >= 0.0
