"""Tests for the shared baseline machinery (base.py)."""

import pytest

from repro.baselines.base import (OnlineBaselinePolicy, admit_sequential,
                                  expected_feasible_stations)
from repro.sim.online_engine import OnlineEngine


class TestExpectedFeasibleStations:
    def test_respects_deadline_and_capacity(self, small_instance,
                                            small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        stations = expected_feasible_stations(small_instance, request,
                                              ledger)
        for sid in stations:
            assert small_instance.latency.is_feasible(request, sid)
            assert ledger.fits(sid, request.expected_demand_mhz)

    def test_shrinks_when_loaded(self, small_instance, small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        before = expected_feasible_stations(small_instance, request,
                                            ledger)
        if before:
            sid = before[0]
            ledger.reserve(999, sid,
                           small_instance.network.station(
                               sid).capacity_mhz)
            after = expected_feasible_stations(small_instance, request,
                                               ledger)
            assert sid not in after

    def test_waiting_shrinks_set(self, small_instance, small_workload):
        request = small_workload[0]
        ledger = small_instance.new_ledger()
        without = expected_feasible_stations(small_instance, request,
                                             ledger)
        with_wait = expected_feasible_stations(small_instance, request,
                                               ledger, waiting_ms=190.0)
        assert set(with_wait).issubset(set(without))


class TestAdmitSequential:
    def test_rejections_recorded(self, small_instance, small_workload):
        result = admit_sequential(
            "AllReject", small_instance, small_workload,
            lambda _i, _r, _l: None, rng=0)
        assert len(result) == len(small_workload)
        assert result.num_admitted == 0

    def test_fixed_station_fills_then_rejects(self, small_instance,
                                              small_workload):
        def first_station(instance, request, ledger):
            sid = instance.network.station_ids[0]
            if ledger.fits(sid, request.expected_demand_mhz):
                return sid
            return None

        result = admit_sequential("Pin", small_instance,
                                  small_workload, first_station, rng=0)
        capacity = small_instance.network.station(
            small_instance.network.station_ids[0]).capacity_mhz
        admitted = [d for d in result.decisions.values() if d.admitted]
        assert admitted
        # Can't admit more than capacity allows by expectation.
        expected = small_workload[0].expected_demand_mhz
        assert len(admitted) <= capacity / expected + 1

    def test_runtime_recorded(self, small_instance, small_workload):
        result = admit_sequential(
            "AllReject", small_instance, small_workload,
            lambda _i, _r, _l: None, rng=0)
        assert result.runtime_s >= 0.0


class TestOnlineBaselinePolicyHooks:
    def test_abstract_hooks_raise(self, small_instance,
                                  online_workload):
        policy = OnlineBaselinePolicy()
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=5, rng=0)
        with pytest.raises(NotImplementedError):
            engine.run(policy)

    def test_observe_is_noop(self):
        OnlineBaselinePolicy().observe(0, 1.0)  # must not raise

    def test_planned_demand_respected(self, small_instance):
        """Within one slot, planned placements count against free
        capacity so a policy cannot double-book a station."""
        from repro.baselines.ocorp import OcorpOnline

        workload = small_instance.new_workload(30, seed=2)
        # All arrive at slot 0: the policy must spread or skip, never
        # plan more expected demand onto a station than fits.
        engine = OnlineEngine(small_instance, workload,
                              horizon_slots=10, rng=2)
        policy = OcorpOnline()
        policy.begin(engine)
        placements = policy.schedule(0, tuple(workload))
        planned = {}
        for placement in placements:
            planned.setdefault(placement.station_id, 0.0)
            request = next(r for r in workload
                           if r.request_id == placement.request_id)
            planned[placement.station_id] += request.expected_demand_mhz
        for sid, demand in planned.items():
            capacity = small_instance.network.station(sid).capacity_mhz
            assert demand <= capacity + 1e-6
