"""Error-path tests for persistence and report plumbing."""

import json

import pytest

from repro.core.appro import Appro
from repro.exceptions import ConfigurationError
from repro.io import load_instance, load_result, save_result
from repro.sim.engine import run_offline


class TestResultErrorPaths:
    def test_result_version_check(self, small_instance, small_workload,
                                  tmp_path):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        path = save_result(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        payload["version"] = 0
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_result(path)

    def test_result_kind_check(self, small_instance, small_workload,
                               tmp_path):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        path = save_result(result, tmp_path / "r.json")
        payload = json.loads(path.read_text())
        payload["kind"] = "instance"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_result(path)

    def test_instance_loader_rejects_result_file(self, small_instance,
                                                 small_workload,
                                                 tmp_path):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        path = save_result(result, tmp_path / "r.json")
        with pytest.raises(ConfigurationError):
            load_instance(path)


class TestReportTheoremPath:
    def test_theorem_checks_markdown_smoke(self, monkeypatch):
        """The theorem section renders with stubbed studies."""
        import repro.experiments.report as report_mod

        monkeypatch.setattr(
            report_mod, "approximation_ratio_study",
            lambda **kw: (0.2, {0: 0.2}))
        monkeypatch.setattr(
            report_mod, "system_regret_study",
            lambda **kw: {"best_threshold": 200.0,
                          "best_fixed_reward": 100.0,
                          "dynamic_reward": 99.0,
                          "relative_regret": 0.01})
        monkeypatch.setattr(
            report_mod, "clairvoyant_study",
            lambda **kw: {"online_reward": 90.0,
                          "clairvoyant_bound": 100.0,
                          "competitive_ratio": 0.9,
                          "bound_peak_utilization": 0.8})
        text = report_mod.theorem_checks_markdown(fast=True)
        assert "Thm. 1" in text and "0.200" in text
        assert "Thm. 3" in text and "+1.0%" in text
        assert "0.900" in text
