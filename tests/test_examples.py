"""Smoke tests: the example scripts must stay runnable.

Only the fast examples run here (the others exercise the same APIs at
larger scale); each runs in a subprocess exactly as a user would run
it.
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300, check=True)
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "3")
        assert "MEC network: 20 base stations" in out
        assert "Appro" in out and "Heu" in out
        assert "HeuKKT" in out

    def test_ar_campus(self):
        out = run_example("ar_campus.py", "3")
        assert "Historical DR estimate" in out
        assert "Per-station placements" in out
        assert "total reward" in out

    def test_cli_module(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--figures",
             "3", "--scale", "bench"],
            capture_output=True, text=True, timeout=300, check=True)
        assert "Figure 3 (a): total_reward" in result.stdout
        assert "Appro" in result.stdout
