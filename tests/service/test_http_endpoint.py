"""The asyncio scrape endpoint: routes, formats, readiness probes.

Requests are issued as raw bytes over ``asyncio.open_connection`` so
everything - server and client - stays on the one event loop the
endpoint is designed to share with :meth:`AdmissionService.serve`.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.service import AdmissionService, MetricsEndpoint
from repro.telemetry.metrics import MetricsRegistry


def http_get(port, target, method="GET", accept=None):
    """One raw HTTP request against the loopback endpoint."""

    async def go():
        reader, writer = await asyncio.open_connection("127.0.0.1",
                                                       port)
        headers = f"{method} {target} HTTP/1.1\r\nHost: x\r\n"
        if accept:
            headers += f"Accept: {accept}\r\n"
        writer.write((headers + "\r\n").encode("latin-1"))
        await writer.drain()
        raw = await reader.read()
        writer.close()
        return raw

    raw = asyncio.get_event_loop().run_until_complete(go())
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = dict(line.split(": ", 1) for line in lines[1:] if ": " in line)
    return status, headers, body


@pytest.fixture()
def served(make_service_config):
    """A ticked service with a live endpoint on a free port."""
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    service = AdmissionService(make_service_config(max_arrivals=40),
                               registry=MetricsRegistry())
    for _ in range(3):
        service.tick()
    endpoint = MetricsEndpoint(service)
    loop.run_until_complete(endpoint.start())
    try:
        yield service, endpoint
    finally:
        loop.run_until_complete(endpoint.stop())
        loop.close()
        asyncio.set_event_loop(None)


class TestMetricsRoute:
    def test_prometheus_text_default(self, served):
        service, endpoint = served
        status, headers, body = http_get(endpoint.port, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert "# TYPE service_slots_total counter" in text
        assert "service_slots_total 3" in text
        assert "service_slot_latency_seconds_count 3" in text

    def test_prometheus_text_parses_sample_per_line(self, served):
        _, endpoint = served
        _, _, body = http_get(endpoint.port, "/metrics")
        for line in body.decode("utf-8").splitlines():
            if line.startswith("#"):
                assert line.split()[1] == "TYPE"
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value is a number
            assert name_part

    def test_json_via_query_param(self, served):
        service, endpoint = served
        status, headers, body = http_get(endpoint.port,
                                         "/metrics?format=json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"]["slot"] == 2
        assert payload["metrics"]["counters"][
            "service_slots_total"] == 3.0
        assert payload["scraped_unix"] > 0

    def test_json_via_accept_header(self, served):
        _, endpoint = served
        status, _, body = http_get(endpoint.port, "/metrics",
                                   accept="application/json")
        assert status == 200
        assert "metrics" in json.loads(body)

    def test_head_returns_empty_body(self, served):
        _, endpoint = served
        status, headers, body = http_get(endpoint.port, "/metrics",
                                         method="HEAD")
        assert status == 200
        assert body == b""
        assert int(headers["Content-Length"]) > 0


class TestHealthRoutes:
    def test_healthz_ok(self, served):
        _, endpoint = served
        status, _, body = http_get(endpoint.port, "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["done"] is False

    def test_readyz_ok_when_queue_has_room(self, served):
        _, endpoint = served
        status, _, body = http_get(endpoint.port, "/readyz")
        assert status == 200
        assert json.loads(body)["ready"] is True

    def test_readyz_503_under_queue_saturation(self,
                                               make_service_config):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = AdmissionService(make_service_config(
            queue_limit=2, mean_arrivals_per_slot=10.0))
        while service.engine.pending_count() < 2:
            service.tick()
        endpoint = MetricsEndpoint(service)
        loop.run_until_complete(endpoint.start())
        try:
            status, _, body = http_get(endpoint.port, "/readyz")
            assert status == 503
            payload = json.loads(body)
            assert payload["ready"] is False
            assert payload["probes"]["queue"]["ok"] is False
            assert payload["probes"]["queue"]["pending"] >= 2
        finally:
            loop.run_until_complete(endpoint.stop())
            loop.close()
            asyncio.set_event_loop(None)

    def test_readyz_503_when_checkpoint_stale(self,
                                              make_service_config,
                                              tmp_path):
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = AdmissionService(make_service_config(
            max_arrivals=40,
            checkpoint_path=str(tmp_path / "s.ckpt"),
            checkpoint_every=1000))
        for _ in range(5):
            service.tick()
        endpoint = MetricsEndpoint(service, staleness_slots=2)
        loop.run_until_complete(endpoint.start())
        try:
            status, _, body = http_get(endpoint.port, "/readyz")
            assert status == 503
            probes = json.loads(body)["probes"]
            assert probes["checkpoint"]["ok"] is False
            assert probes["checkpoint"]["slots_behind"] > 2
            assert probes["queue"]["ok"] is True
        finally:
            loop.run_until_complete(endpoint.stop())
            loop.close()
            asyncio.set_event_loop(None)


class TestProtocolEdges:
    def test_unknown_route_404(self, served):
        _, endpoint = served
        status, _, body = http_get(endpoint.port, "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]

    def test_post_is_405(self, served):
        _, endpoint = served
        status, _, _ = http_get(endpoint.port, "/metrics",
                                method="POST")
        assert status == 405

    def test_trailing_slash_accepted(self, served):
        _, endpoint = served
        status, _, _ = http_get(endpoint.port, "/healthz/")
        assert status == 200

    def test_port_zero_resolves_to_real_port(self, served):
        _, endpoint = served
        assert endpoint.port != 0
        assert endpoint.url == f"http://127.0.0.1:{endpoint.port}"


class TestValidation:
    def test_saturation_fraction_bounds(self, make_service_config):
        service = AdmissionService(make_service_config(max_arrivals=5))
        with pytest.raises(ConfigurationError):
            MetricsEndpoint(service, saturation_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MetricsEndpoint(service, saturation_fraction=1.5)

    def test_staleness_slots_positive(self, make_service_config):
        service = AdmissionService(make_service_config(max_arrivals=5))
        with pytest.raises(ConfigurationError):
            MetricsEndpoint(service, staleness_slots=0)
