"""Checkpoint/restore: kill at a random slot, resume, byte-identity.

The property at the heart of the service subsystem: for ANY kill point
past the first checkpoint, resuming from disk yields a decision journal
byte-identical to an uninterrupted run's.  trace-diff is reused as the
assertion, and raw bytes are compared on top (trace-diff compares
parsed events; byte equality is the stronger claim).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.service import (AdmissionService, ServiceCheckpoint,
                           read_checkpoint, truncate_journal,
                           write_checkpoint)
from repro.service.checkpoint import JournalCursor
from repro.telemetry.tracediff import first_divergence, load_journal


def run_to_drain(service):
    while not service.done:
        service.tick()
    service.close()


def run_killed(service, kill_slot):
    """Crash simulation: abandon the service, flush nothing."""
    while not service.done:
        report = service.tick()
        if report.outcome.slot >= kill_slot:
            return


def checkpointed_config(make_service_config, tmp_path, tag,
                        **overrides):
    return make_service_config(
        journal_path=str(tmp_path / f"{tag}.jsonl"),
        checkpoint_path=str(tmp_path / f"{tag}.ckpt"),
        checkpoint_every=5,
        **overrides)


class TestResumeByteIdentity:
    @pytest.mark.parametrize("policy", ["greedy", "dynamicrr"])
    def test_random_kill_slots_resume_identically(
            self, make_service_config, tmp_path, policy):
        """The property test of the ISSUE: checkpoint at a random slot,
        resume, and the journal is byte-identical (trace-diff clean)."""
        overrides = dict(policy=policy, max_arrivals=60,
                         mean_arrivals_per_slot=3.0)
        baseline_config = checkpointed_config(
            make_service_config, tmp_path, f"base-{policy}", **overrides)
        baseline = AdmissionService(baseline_config)
        run_to_drain(baseline)
        total_slots = int(baseline.counters["slots"])
        baseline_bytes = open(baseline_config.journal_path, "rb").read()

        rng = np.random.default_rng(20260808)
        kill_slots = sorted(set(
            int(s) for s in rng.integers(6, total_slots - 2, size=3)))
        for kill_slot in kill_slots:
            tag = f"kill-{policy}-{kill_slot}"
            config = checkpointed_config(make_service_config, tmp_path,
                                         tag, **overrides)
            killed = AdmissionService(config)
            run_killed(killed, kill_slot)
            resumed = AdmissionService.resume(config.checkpoint_path)
            run_to_drain(resumed)

            assert open(config.journal_path, "rb").read() == \
                baseline_bytes, f"bytes diverged for kill@{kill_slot}"
            divergence = first_divergence(
                load_journal(baseline_config.journal_path),
                load_journal(config.journal_path))
            assert divergence is None

    def test_resumed_counters_are_cumulative(self, make_service_config,
                                             tmp_path):
        config = checkpointed_config(make_service_config, tmp_path,
                                     "counters", max_arrivals=60)
        baseline = AdmissionService(config)
        run_to_drain(baseline)
        expected = dict(baseline.counters)

        config2 = checkpointed_config(make_service_config, tmp_path,
                                      "counters2", max_arrivals=60)
        killed = AdmissionService(config2)
        run_killed(killed, 12)
        resumed = AdmissionService.resume(config2.checkpoint_path)
        run_to_drain(resumed)
        assert resumed.counters == expected

    def test_resume_emits_ops_resume_event_not_journal(
            self, make_service_config, tmp_path):
        config = checkpointed_config(make_service_config, tmp_path,
                                     "ops", max_arrivals=40)
        killed = AdmissionService(config)
        run_killed(killed, 10)
        resumed = AdmissionService.resume(config.checkpoint_path)
        kinds = [e.kind.value for e in resumed.ops_events]
        assert kinds[0] == "resume"
        run_to_drain(resumed)
        with open(config.journal_path) as handle:
            journal_kinds = {json.loads(line)["kind"] for line in handle}
        assert "resume" not in journal_kinds
        assert "checkpoint" in journal_kinds


class TestCheckpointFiles:
    def test_roundtrip(self, tmp_path):
        checkpoint = ServiceCheckpoint(
            config={"policy": "greedy"}, slot=9,
            engine_state={"slot": 9}, policy_state=None,
            stream_state={"next_id": 3},
            journal=JournalCursor(events_recorded=5, byte_position=120),
            counters={"arrivals": 3.0})
        path = str(tmp_path / "c.ckpt")
        write_checkpoint(path, checkpoint)
        loaded = read_checkpoint(path)
        assert loaded.slot == 9
        assert loaded.journal.byte_position == 120
        assert loaded.counters == {"arrivals": 3.0}

    def test_read_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_checkpoint(str(tmp_path / "absent.ckpt"))

    def test_read_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a pickle")
        with pytest.raises(ConfigurationError):
            read_checkpoint(str(path))

    def test_truncate_journal_cuts_back(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"a" * 100)
        truncate_journal(str(path), 40)
        assert path.stat().st_size == 40

    def test_truncate_beyond_size_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b"a" * 10)
        with pytest.raises(ConfigurationError):
            truncate_journal(str(path), 40)
