"""Tests for the admission loop: backpressure, deferral, drain, audit."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.service import AdmissionService
from repro.telemetry.audit import InvariantMonitor


def run_to_drain(service):
    reports = []
    while not service.done:
        reports.append(service.tick())
    service.close()
    return reports


def read_journal(path):
    with open(path) as handle:
        return [json.loads(line) for line in handle]


class TestAdmissionFlow:
    def test_runs_to_drain_and_accounts_every_arrival(
            self, make_service_config):
        service = AdmissionService(make_service_config())
        run_to_drain(service)
        counters = service.counters
        assert counters["arrivals"] == 150
        assert counters["accepted"] + counters["shed"] == 150
        # Every accepted request reaches exactly one terminal state.
        assert counters["started"] == pytest.approx(
            counters["accepted"] - counters["dropped"])
        assert service.engine.pending_count() == 0
        assert service.engine.active_total() == 0

    def test_backpressure_sheds_above_queue_limit(
            self, make_service_config):
        service = AdmissionService(make_service_config(
            queue_limit=2, mean_arrivals_per_slot=8.0))
        reports = run_to_drain(service)
        assert service.counters["shed"] > 0
        journal = read_journal(service.config.journal_path)
        sheds = [e for e in journal if e["kind"] == "shed"]
        assert len(sheds) == service.counters["shed"]
        # The journaled queue depth explains each shed decision.
        assert all(e["value"] >= 2 for e in sheds)
        assert sum(r.num_shed for r in reports) == len(sheds)

    def test_deferred_requests_are_journaled_once(
            self, make_service_config):
        service = AdmissionService(make_service_config(
            mean_arrivals_per_slot=6.0))
        run_to_drain(service)
        journal = read_journal(service.config.journal_path)
        deferred = [e["request"] for e in journal
                    if e["kind"] == "admit_deferred"]
        assert deferred, "workload too light to defer anything"
        assert len(deferred) == len(set(deferred))
        assert len(deferred) == service.counters["deferred"]

    def test_pending_queue_never_exceeds_limit(self,
                                               make_service_config):
        limit = 4
        service = AdmissionService(make_service_config(
            queue_limit=limit, mean_arrivals_per_slot=8.0))
        while not service.done:
            report = service.tick()
            assert report.outcome.pending_after <= limit
        service.close()

    def test_tick_after_drain_raises(self, make_service_config):
        service = AdmissionService(make_service_config(max_arrivals=5))
        run_to_drain(service)
        with pytest.raises(ConfigurationError):
            service.tick()


class TestJournalAudit:
    @pytest.mark.parametrize("policy", ["greedy", "dynamicrr"])
    def test_monitor_stays_green_over_service_journal(
            self, make_service_config, policy):
        """The full decision stream satisfies every invariant,
        including the new deferred_resolution."""
        service = AdmissionService(make_service_config(
            policy=policy, max_arrivals=60))
        run_to_drain(service)
        events = read_journal(service.config.journal_path)
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events(events)
        monitor.finish(None)
        assert monitor.ok, monitor.report()
        assert monitor.checks["deferred_resolution"] > 0

    def test_journal_off_still_counts(self, make_service_config):
        service = AdmissionService(make_service_config(
            journal_path=None))
        run_to_drain(service)
        assert service.journal is None
        assert service.counters["arrivals"] == 150


class TestAsyncServe:
    def test_serve_drains_like_tick_loop(self, make_service_config):
        service = AdmissionService(make_service_config())
        processed = asyncio.run(service.serve())
        service.close()
        assert service.done
        assert processed == service.counters["slots"]

    def test_serve_respects_max_slots(self, make_service_config):
        service = AdmissionService(make_service_config())
        processed = asyncio.run(service.serve(max_slots=7))
        assert processed == 7
        assert not service.done
        # And it can continue afterwards.
        asyncio.run(service.serve())
        service.close()
        assert service.done


class TestValidation:
    def test_unknown_policy_rejected(self, make_service_config):
        with pytest.raises(ConfigurationError):
            AdmissionService(make_service_config(policy="offline"))

    def test_checkpoint_cadence_needs_path(self, make_service_config):
        with pytest.raises(ConfigurationError):
            AdmissionService(make_service_config(checkpoint_every=10))

    def test_queue_limit_must_be_positive(self, make_service_config):
        with pytest.raises(ConfigurationError):
            AdmissionService(make_service_config(queue_limit=0))
