"""The terminal ops console: frame rendering, rates, CLI round-trip.

Rendering is tested against synthetic payloads (it is a pure function
of two scrape dicts); the end-to-end path is tested by pointing
``fetch_status`` / ``run_status`` at a real endpoint.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service import AdmissionService, MetricsEndpoint
from repro.service.console import (fetch_status, render_status,
                                   run_status, run_watch)
from repro.telemetry.metrics import MetricsRegistry


def payload(slot=10, scraped=100.0, **counter_overrides):
    counters = {"arrivals": 50.0, "accepted": 40.0, "shed": 10.0,
                "deferred": 5.0, "started": 38.0, "completed": 30.0,
                "dropped": 2.0, "reward": 123.456, "slots": 10.0}
    counters.update(counter_overrides)
    return {
        "status": {
            "policy": "greedy", "slot": slot, "done": False,
            "pending": 3, "active": 7, "queue_limit": 64,
            "last_checkpoint_slot": 8, "checkpoint_every": 4,
            "counters": counters,
            "slot_latency": {"count": 10, "p50": 0.001,
                             "p95": 0.004, "p99": 0.009},
        },
        "metrics": {
            "counters": {}, "gauges": {}, "histograms": {},
        },
        "scraped_unix": scraped,
    }


class TestRenderStatus:
    def test_frame_shows_header_queue_and_totals(self):
        frame = render_status(payload())
        assert "policy=greedy slot=10" in frame
        assert "3/64 (5% full)" in frame
        assert "active=7" in frame
        assert "slot 8 (every 4 slots)" in frame
        assert "arrivals=50" in frame
        assert "shed=10" in frame
        assert "reward   123.46 over 10 slots" in frame

    def test_latency_line_in_milliseconds(self):
        frame = render_status(payload())
        assert "p50=1.00ms p95=4.00ms p99=9.00ms (n=10)" in frame

    def test_rates_from_consecutive_scrapes(self):
        first = payload(scraped=100.0)
        second = payload(slot=20, scraped=102.0, arrivals=70.0,
                         completed=40.0)
        frame = render_status(second, previous=first)
        assert "arrivals=70 (10.0/s)" in frame
        assert "completed=40 (5.0/s)" in frame

    def test_no_rates_without_previous_or_time_delta(self):
        assert "/s)" not in render_status(payload())
        same_instant = render_status(payload(), previous=payload())
        assert "/s)" not in same_instant

    def test_done_marker(self):
        done = payload()
        done["status"]["done"] = True
        assert "(done)" in render_status(done)

    def test_bandit_gauges_rendered(self):
        rich = payload()
        rich["metrics"]["gauges"] = {
            "bandit_surviving_arms": 5.0,
            "bandit_threshold_mhz": 1200.0,
            "service_queue_depth": 3.0,
        }
        frame = render_status(rich)
        assert "surviving_arms=5" in frame
        assert "threshold_mhz=1.2e+03" in frame
        assert "service_queue_depth" not in frame

    def test_minimal_payload_does_not_crash(self):
        assert render_status({})  # renders a header line regardless

    def test_registry_latency_histogram_preferred(self):
        rich = payload()
        rich["metrics"]["histograms"] = {
            "service_slot_latency_seconds": {
                "count": 10, "p50": 0.002, "p95": 0.005, "p99": 0.008}}
        assert "p50=2.00ms" in render_status(rich)


class TestEndToEnd:
    @pytest.fixture()
    def live_url(self, make_service_config):
        """A ticked service behind a real endpoint, served from a
        background thread so the blocking console clients can call it."""
        service = AdmissionService(make_service_config(max_arrivals=40),
                                   registry=MetricsRegistry())
        while not service.done:
            service.tick()
        service.close()
        loop = asyncio.new_event_loop()
        endpoint = MetricsEndpoint(service)
        loop.run_until_complete(endpoint.start())
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            yield endpoint.url
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=5)
            loop.run_until_complete(endpoint.stop())
            loop.close()

    def test_fetch_status_round_trips(self, live_url):
        scraped = fetch_status(live_url)
        assert scraped["status"]["done"] is True
        assert scraped["metrics"]["counters"][
            "service_slots_total"] > 0

    def test_fetch_accepts_full_metrics_url(self, live_url):
        assert fetch_status(live_url + "/metrics")["status"]

    def test_run_status_prints_a_frame(self, live_url, capsys):
        assert run_status(live_url) == 0
        out = capsys.readouterr().out
        assert "repro.service :: policy=greedy" in out

    def test_run_watch_exits_when_done(self, live_url, capsys):
        assert run_watch(live_url, interval=0.01, iterations=3) == 0
        assert "(done)" in capsys.readouterr().out

    def test_unreachable_endpoint_exits_2(self, capsys):
        url = "http://127.0.0.1:1"  # reserved port, nothing listens
        assert run_status(url, timeout=0.2) == 2
        assert run_watch(url, timeout=0.2, iterations=1) == 2
        assert "cannot scrape" in capsys.readouterr().out

    def test_fetch_malformed_json_raises_connection_error(self):
        with pytest.raises(ConnectionError):
            fetch_status("http://127.0.0.1:1", timeout=0.2)

