"""Fixtures for the streaming admission-service tests."""

from __future__ import annotations

import pytest

from repro.config import NetworkConfig, OnlineConfig, RequestConfig, \
    SimulationConfig
from repro.service import ServiceConfig


@pytest.fixture(scope="session")
def service_sim() -> SimulationConfig:
    """A reduced substrate so service tests stay fast."""
    return SimulationConfig(
        network=NetworkConfig(num_base_stations=6),
        requests=RequestConfig(stream_duration_slots=10),
        online=OnlineConfig(horizon_slots=40),
        seed=4321,
    ).validate()


@pytest.fixture()
def make_service_config(service_sim, tmp_path):
    """Factory for small, journaled service configurations."""

    def build(**overrides) -> ServiceConfig:
        defaults = dict(
            sim=service_sim,
            horizon_slots=200,
            mean_arrivals_per_slot=3.0,
            max_arrivals=150,
            policy="greedy",
            queue_limit=64,
            journal_path=str(tmp_path / "journal.jsonl"),
            flush_every=16,
        )
        defaults.update(overrides)
        return ServiceConfig(**defaults)

    return build
