"""Service-side metrics wiring: registry instrumentation through
tick(), cumulative SlotReport tallies, live status/__repr__, and the
METRICS_SNAPSHOT ops stream.
"""

from __future__ import annotations

import json

from repro.service import AdmissionService
from repro.telemetry.metrics import MetricsRegistry


def run_to_drain(service):
    reports = []
    while not service.done:
        reports.append(service.tick())
    service.close()
    return reports


class TestRegistryWiring:
    def test_service_counters_mirror_the_registry(
            self, make_service_config):
        registry = MetricsRegistry()
        service = AdmissionService(
            make_service_config(queue_limit=4,
                                mean_arrivals_per_slot=8.0),
            registry=registry)
        run_to_drain(service)
        counters = service.counters
        assert registry.counter("service_shed_total") == \
            counters["shed"]
        assert registry.counter("service_admitted_total") == \
            counters["accepted"]
        assert registry.counter("service_deferred_total") == \
            counters["deferred"]
        assert registry.counter("service_slots_total") == \
            counters["slots"]
        assert registry.counter("engine_completions_total") == \
            counters["completed"]
        assert registry.counter("engine_arrivals_total") == \
            counters["accepted"]

    def test_registry_tracks_slot_and_latency_histogram(
            self, make_service_config):
        registry = MetricsRegistry()
        service = AdmissionService(make_service_config(max_arrivals=30),
                                   registry=registry)
        run_to_drain(service)
        assert registry.slot == service.engine.clock.current_slot
        latency = registry.histogram("service_slot_latency_seconds")
        assert latency is not None
        assert latency.count == service.counters["slots"]
        # Deterministic companion histogram for continuity tests.
        batch = registry.histogram("service_batch_size")
        assert batch is not None and batch.count == latency.count

    def test_dynamicrr_policy_populates_bandit_series(
            self, make_service_config):
        registry = MetricsRegistry()
        service = AdmissionService(
            make_service_config(policy="dynamicrr", max_arrivals=60),
            registry=registry)
        run_to_drain(service)
        assert registry.counter("bandit_rounds_total") > 0
        assert registry.gauge("bandit_surviving_arms") is not None
        assert registry.gauge("bandit_threshold_mhz") is not None

    def test_default_registry_is_the_ambient_null(
            self, make_service_config):
        service = AdmissionService(make_service_config(max_arrivals=10))
        run_to_drain(service)
        assert service.metrics.enabled is False
        assert service.metrics.snapshot()["counters"] == {}


class TestSlotReportCumulative:
    def test_totals_accumulate_monotonically(self, make_service_config):
        service = AdmissionService(make_service_config(
            queue_limit=4, mean_arrivals_per_slot=8.0))
        reports = run_to_drain(service)
        previous = None
        for report in reports:
            for field in ("admitted_total", "deferred_total",
                          "shed_total", "dropped_total"):
                value = getattr(report, field)
                assert value >= 0
                if previous is not None:
                    assert value >= getattr(previous, field)
            previous = report
        final = reports[-1]
        assert final.admitted_total == service.counters["accepted"]
        assert final.shed_total == service.counters["shed"]
        assert final.deferred_total == service.counters["deferred"]
        assert final.dropped_total == service.counters["dropped"]

    def test_per_slot_deltas_sum_to_totals(self, make_service_config):
        service = AdmissionService(make_service_config(
            queue_limit=4, mean_arrivals_per_slot=8.0))
        reports = run_to_drain(service)
        assert sum(r.num_shed for r in reports) == \
            reports[-1].shed_total
        assert sum(r.num_deferred for r in reports) == \
            reports[-1].deferred_total


class TestLiveIntrospection:
    def test_status_is_jsonable_and_complete(self, make_service_config):
        service = AdmissionService(make_service_config(max_arrivals=20))
        service.tick()
        status = json.loads(json.dumps(service.status()))
        assert status["policy"] == "greedy"
        assert status["queue_limit"] == 64
        assert status["done"] is False
        assert set(status["counters"]) == {
            "arrivals", "accepted", "shed", "deferred", "started",
            "completed", "dropped", "reward", "slots"}
        assert status["slot_latency"]["count"] == 1
        run_to_drain(service)
        assert service.status()["done"] is True

    def test_repr_shows_live_state(self, make_service_config, tmp_path):
        service = AdmissionService(make_service_config(
            max_arrivals=20,
            checkpoint_path=str(tmp_path / "r.ckpt"),
            checkpoint_every=2))
        text = repr(service)
        assert "policy='greedy'" in text
        assert "checkpoint=never" in text
        assert "done=False" in text
        run_to_drain(service)
        text = repr(service)
        assert "pending=0/64" in text
        assert "checkpoint=@" in text
        assert "done=True" in text


class TestMetricsSnapshotStream:
    def test_snapshot_cadence_and_payload(self, make_service_config,
                                          tmp_path):
        registry = MetricsRegistry()
        ops_path = str(tmp_path / "ops.jsonl")
        service = AdmissionService(
            make_service_config(max_arrivals=40,
                               metrics_snapshot_every=5,
                               ops_journal_path=ops_path),
            registry=registry)
        run_to_drain(service)
        slots = int(service.counters["slots"])
        snapshots = [e for e in service.ops_events
                     if e.kind.value == "metrics_snapshot"]
        assert len(snapshots) == slots // 5
        assert registry.counter("service_metrics_snapshots_total") == \
            len(snapshots)
        detail = dict()
        for entry in snapshots[-1].detail:
            if entry[0] == "counter":
                detail[entry[1]] = entry[2]
        # The snapshot includes its own counter (incremented first).
        assert detail["service_metrics_snapshots_total"] == \
            len(snapshots)
        assert "service_slots_total" in detail

    def test_ops_journal_persists_the_stream(self, make_service_config,
                                             tmp_path):
        ops_path = str(tmp_path / "ops.jsonl")
        service = AdmissionService(
            make_service_config(max_arrivals=40,
                               metrics_snapshot_every=5,
                               ops_journal_path=ops_path),
            registry=MetricsRegistry())
        run_to_drain(service)
        with open(ops_path) as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert kinds.count("metrics_snapshot") == len(
            [e for e in service.ops_events
             if e.kind.value == "metrics_snapshot"])

    def test_decision_journal_untouched_by_snapshots(
            self, make_service_config, tmp_path):
        """METRICS_SNAPSHOT is ops-side only: the decision journal
        stays byte-identical with snapshots on."""
        plain_config = make_service_config(
            max_arrivals=40, journal_path=str(tmp_path / "plain.jsonl"))
        snapped_config = make_service_config(
            max_arrivals=40, journal_path=str(tmp_path / "snap.jsonl"),
            metrics_snapshot_every=3,
            ops_journal_path=str(tmp_path / "ops.jsonl"))
        run_to_drain(AdmissionService(plain_config))
        run_to_drain(AdmissionService(snapped_config,
                                      registry=MetricsRegistry()))
        plain = open(plain_config.journal_path, "rb").read()
        snapped = open(snapped_config.journal_path, "rb").read()
        assert plain == snapped
        with open(snapped_config.journal_path) as handle:
            kinds = {json.loads(line)["kind"] for line in handle}
        assert "metrics_snapshot" not in kinds
