"""The metrics inertness property, and counter continuity over resume.

Inertness is the determinism contract's key clause for observability:
attaching a live :class:`MetricsRegistry` must not perturb a single
byte of the decision journal, the sweep records, or the checkpoint's
deterministic state - in serial ticking, through the parallel sweep
executor, and across a kill/resume boundary.  Conversely, the metric
series themselves must be *continuous*: a killed-and-resumed service
reports the same final deterministic counters as an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.baselines.greedy import GreedyOnline
from repro.core.dynamic_rr import DynamicRR
from repro.experiments.executor import (ONLINE, RunSpec, execute_specs)
from repro.experiments.settings import base_config
from repro.service import AdmissionService, read_checkpoint
from repro.telemetry import collect_sweep_journal
from repro.telemetry.metrics import (NULL_REGISTRY, MetricsRegistry,
                                     get_metrics, use_metrics)

#: Registry counters that are pure functions of the seeded run (the
#: wall-clock latency histogram is deliberately excluded).
DETERMINISTIC_COUNTERS = (
    "service_slots_total", "service_admitted_total",
    "service_shed_total", "service_deferred_total",
    "engine_arrivals_total", "engine_starts_total",
    "engine_completions_total", "engine_drops_total",
    "engine_reward_total",
)


def run_to_drain(service):
    while not service.done:
        service.tick()
    service.close()


def run_killed(service, kill_slot):
    while not service.done:
        report = service.tick()
        if report.outcome.slot >= kill_slot:
            return


def deterministic_view(registry):
    """The registry's seed-determined slice (no wall-clock series)."""
    snapshot = registry.snapshot()
    counters = {name: value
                for name, value in snapshot["counters"].items()
                if not name.endswith("_seconds")}
    hist = registry.histogram("service_batch_size")
    return counters, (hist.snapshot() if hist is not None else None)


class TestServiceInertness:
    @pytest.mark.parametrize("policy", ["greedy", "dynamicrr"])
    def test_journal_bytes_identical_with_and_without_metrics(
            self, make_service_config, tmp_path, policy):
        overrides = dict(policy=policy, max_arrivals=60,
                         mean_arrivals_per_slot=6.0, queue_limit=8)
        plain_config = make_service_config(
            journal_path=str(tmp_path / f"plain-{policy}.jsonl"),
            **overrides)
        metered_config = make_service_config(
            journal_path=str(tmp_path / f"metered-{policy}.jsonl"),
            **overrides)
        run_to_drain(AdmissionService(plain_config))
        run_to_drain(AdmissionService(metered_config,
                                      registry=MetricsRegistry()))
        assert open(plain_config.journal_path, "rb").read() == \
            open(metered_config.journal_path, "rb").read()

    def test_checkpoint_deterministic_state_identical(
            self, make_service_config, tmp_path):
        """Checkpoints differ only in the metrics_state they embed."""
        overrides = dict(max_arrivals=60, checkpoint_every=5)
        plain_config = make_service_config(
            journal_path=str(tmp_path / "p.jsonl"),
            checkpoint_path=str(tmp_path / "p.ckpt"), **overrides)
        metered_config = make_service_config(
            journal_path=str(tmp_path / "m.jsonl"),
            checkpoint_path=str(tmp_path / "m.ckpt"), **overrides)
        run_to_drain(AdmissionService(plain_config))
        run_to_drain(AdmissionService(metered_config,
                                      registry=MetricsRegistry()))
        plain = read_checkpoint(plain_config.checkpoint_path)
        metered = read_checkpoint(metered_config.checkpoint_path)
        assert plain.metrics_state is None
        assert metered.metrics_state is not None
        # Engine state holds live objects without value equality;
        # pickled bytes are the canonical comparison (the config is
        # swapped in because the two runs use different file paths).
        stripped = dataclasses.replace(
            metered, config=plain.config, metrics_state=None)
        assert pickle.dumps(stripped) == pickle.dumps(plain)

    def test_ambient_registry_restored_after_run(
            self, make_service_config):
        """tick() installs the service registry and always restores."""
        service = AdmissionService(make_service_config(max_arrivals=10),
                                   registry=MetricsRegistry())
        run_to_drain(service)
        assert get_metrics() is NULL_REGISTRY


class TestExecutorInertness:
    """Ambient metrics around the sweep executor: records and merged
    journals are unchanged, serial and with a process pool."""

    def specs(self):
        cfg = base_config(0)
        cfg = cfg.with_overrides(
            network=cfg.network.__class__(num_base_stations=6))
        return [RunSpec(mode=ONLINE, factory=factory, x=6.0, seed=seed,
                        config=cfg, num_requests=6, horizon_slots=10,
                        journal=True)
                for factory in (GreedyOnline, DynamicRR)
                for seed in (0, 1)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_journals_identical_with_ambient_metrics(self, workers):
        plain = execute_specs(self.specs(), workers=workers,
                              journal=True)
        with use_metrics(MetricsRegistry()):
            metered = execute_specs(self.specs(), workers=workers,
                                    journal=True)
        assert (collect_sweep_journal(plain)
                == collect_sweep_journal(metered))

    def test_serial_run_populates_the_registry(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            execute_specs(self.specs(), workers=1, journal=True)
        assert registry.counter("engine_arrivals_total") > 0
        assert registry.counter("bandit_rounds_total") > 0


class TestResumeContinuity:
    def test_kill_at_random_slots_yields_continuous_counters(
            self, make_service_config, tmp_path):
        """The headline property: kill at a random slot, resume with a
        fresh registry, and the deterministic series end at exactly the
        uninterrupted run's values - counters continue, never reset."""
        overrides = dict(max_arrivals=60, mean_arrivals_per_slot=3.0,
                         checkpoint_every=5)
        baseline_config = make_service_config(
            journal_path=str(tmp_path / "base.jsonl"),
            checkpoint_path=str(tmp_path / "base.ckpt"), **overrides)
        baseline_registry = MetricsRegistry()
        baseline = AdmissionService(baseline_config,
                                    registry=baseline_registry)
        run_to_drain(baseline)
        total_slots = int(baseline.counters["slots"])
        expected = deterministic_view(baseline_registry)
        baseline_bytes = open(baseline_config.journal_path, "rb").read()

        rng = np.random.default_rng(20260808)
        kill_slots = sorted(set(
            int(s) for s in rng.integers(6, total_slots - 2, size=3)))
        for kill_slot in kill_slots:
            config = make_service_config(
                journal_path=str(tmp_path / f"k{kill_slot}.jsonl"),
                checkpoint_path=str(tmp_path / f"k{kill_slot}.ckpt"),
                **overrides)
            killed = AdmissionService(config,
                                      registry=MetricsRegistry())
            run_killed(killed, kill_slot)
            resumed_registry = MetricsRegistry()
            resumed = AdmissionService.resume(config.checkpoint_path,
                                              registry=resumed_registry)
            run_to_drain(resumed)
            assert open(config.journal_path, "rb").read() == \
                baseline_bytes, f"journal diverged for kill@{kill_slot}"
            counters, batch_hist = deterministic_view(resumed_registry)
            expected_counters, expected_hist = expected
            # The resume marker is the one counter the baseline lacks.
            assert counters.pop("service_resumes_total") == 1.0
            assert counters == expected_counters, \
                f"series reset for kill@{kill_slot}"
            assert batch_hist == expected_hist

    def test_resuming_unmetered_checkpoint_starts_from_zero(
            self, make_service_config, tmp_path):
        config = make_service_config(
            journal_path=str(tmp_path / "u.jsonl"),
            checkpoint_path=str(tmp_path / "u.ckpt"),
            max_arrivals=60, checkpoint_every=5)
        killed = AdmissionService(config)  # null registry
        run_killed(killed, 12)
        registry = MetricsRegistry()
        resumed = AdmissionService.resume(config.checkpoint_path,
                                          registry=registry)
        run_to_drain(resumed)
        # Only post-resume slots are counted; the service's own
        # counters still cover the whole run.
        assert registry.counter("service_slots_total") < \
            resumed.counters["slots"]
        assert registry.counter("service_resumes_total") == 1.0

    def test_resume_with_null_registry_drops_series(
            self, make_service_config, tmp_path):
        config = make_service_config(
            journal_path=str(tmp_path / "n.jsonl"),
            checkpoint_path=str(tmp_path / "n.ckpt"),
            max_arrivals=60, checkpoint_every=5)
        killed = AdmissionService(config, registry=MetricsRegistry())
        run_killed(killed, 12)
        resumed = AdmissionService.resume(config.checkpoint_path)
        run_to_drain(resumed)
        assert resumed.metrics.enabled is False
        assert resumed.counters["arrivals"] == 60
