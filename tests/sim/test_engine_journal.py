"""Decision-journal emission from the engines and algorithms.

Covers the journaling side of both engines (the offline batch executor
and the slotted online engine), the DynamicRR bandit events, and the
invariant audit of real runs - including a deliberately misbehaving
policy that the monitor must catch.
"""

from collections import Counter


from repro.bandits.lipschitz import LipschitzBandit
from repro.core.dynamic_rr import DynamicRR
from repro.core.heu import Heu
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine, Placement
from repro.telemetry.audit import (InvariantMonitor, Journal,
                                   NULL_JOURNAL, get_journal,
                                   use_journal)


class PinToStationPolicy:
    """Deliberately bad policy: pins everything to one station."""

    name = "Pinned"

    def __init__(self, station_id):
        self.station_id = station_id

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return [Placement(request_id=r.request_id,
                          station_id=self.station_id) for r in pending]

    def observe(self, slot, slot_reward):
        pass


def kinds(journal):
    return Counter(e["kind"] for e in journal.events())


class TestOfflineJournal:
    def test_disabled_by_default(self, small_instance, small_workload):
        run_offline(Heu(), small_instance, small_workload, seed=0)
        assert get_journal() is NULL_JOURNAL
        assert len(NULL_JOURNAL) == 0

    def test_journal_covers_the_decision_pipeline(self, small_instance,
                                                  small_workload):
        journal = Journal()
        with use_journal(journal):
            run_offline(Heu(), small_instance, small_workload, seed=0)
        counts = kinds(journal)
        stations = len(small_instance.network.station_ids)
        assert counts["station_up"] == stations
        assert counts["arrival"] == len(small_workload)
        # Every arrival reaches a terminal decision.
        assert counts["start"] + counts["drop"] == len(small_workload)
        assert counts["complete"] == counts["start"]
        # Heu's slot admission and migrations are journaled too.
        assert counts["admit"] > 0
        assert counts["migrate"] > 0

    def test_offline_journal_passes_strict_audit(self, small_instance,
                                                 small_workload):
        journal = Journal()
        with use_journal(journal):
            result = run_offline(Heu(), small_instance,
                                 small_workload, seed=0)
        monitor = InvariantMonitor(mode="strict")
        monitor.check_events(journal.events()).finish(result)
        assert monitor.ok
        assert monitor.checks["migration_target"] > 0
        assert monitor.checks["capacity"] > 0

    def test_same_seed_same_journal(self, small_instance,
                                    small_workload):
        journals = []
        for _ in range(2):
            journal = Journal()
            with use_journal(journal):
                run_offline(Heu(), small_instance, small_workload,
                            seed=3)
            journals.append(journal.events())
        assert journals[0] == journals[1]


class TestOnlineJournal:
    def test_journal_covers_the_run(self, small_instance,
                                    online_workload):
        journal = Journal()
        with use_journal(journal):
            engine = OnlineEngine(small_instance, online_workload,
                                  horizon_slots=40, rng=0)
            result = engine.run(DynamicRR(rng=0))
        counts = kinds(journal)
        stations = len(small_instance.network.station_ids)
        assert counts["station_up"] == stations
        assert counts["arrival"] == len(online_workload)
        assert counts["start"] == result.num_admitted
        assert counts["arm_selected"] > 0
        monitor = InvariantMonitor(mode="strict")
        monitor.check_events(journal.events()).finish(result)
        assert monitor.ok

    def test_engine_events_unchanged_by_journaling(self, small_instance,
                                                   online_workload):
        def run(journaled):
            # Realizations cache per request: reset so both runs draw
            # the same stream (what the executor does between runs).
            for request in online_workload:
                request.reset_realization()
            engine = OnlineEngine(small_instance, online_workload,
                                  horizon_slots=40, rng=0)
            if journaled:
                with use_journal(Journal()):
                    engine.run(DynamicRR(rng=0))
            else:
                engine.run(DynamicRR(rng=0))
            return engine.events

        assert run(journaled=False) == run(journaled=True)

    def test_outage_transitions_journaled(self, small_instance,
                                          online_workload):
        journal = Journal()
        with use_journal(journal):
            engine = OnlineEngine(small_instance, online_workload,
                                  horizon_slots=40, rng=0,
                                  outages={0: (5, 10)})
            engine.run(DynamicRR(rng=0))
        downs = [e for e in journal.events()
                 if e["kind"] == "station_down"]
        ups = [e for e in journal.events()
               if e["kind"] == "station_up" and e["slot"] > 0]
        assert downs == [{"kind": "station_down", "slot": 5,
                          "station": 0}]
        assert len(ups) == 1
        assert ups[0]["slot"] == 11 and ups[0]["station"] == 0
        capacity = small_instance.network.station(0).capacity_mhz
        assert ups[0]["value"] == capacity

    def test_drop_carries_last_hosting_station(self, small_instance,
                                               online_workload):
        """Satellite: a stream whose station died under it drops *with*
        the station that last hosted it - and the audit catches the
        misbehaving policy that started requests on a dead station."""
        journal = Journal()
        with use_journal(journal):
            engine = OnlineEngine(small_instance, online_workload,
                                  horizon_slots=40, rng=0,
                                  outages={0: (0, 39)})
            engine.run(PinToStationPolicy(0))
        hosted_drops = [e for e in journal.events()
                        if e["kind"] == "drop" and "station" in e]
        assert hosted_drops
        assert all(e["station"] == 0 for e in hosted_drops)
        # The engine's own event list carries the station too.
        engine_drops = [e for e in engine.events
                        if e.kind.value == "drop"
                        and e.station_id is not None]
        assert engine_drops
        monitor = InvariantMonitor().check_events(journal.events())
        assert any(v.invariant == "station_outage"
                   for v in monitor.violations)


class TestDynamicRRArmEvents:
    def drive(self, rewards_by_arm, rounds=600):
        """Run DynamicRR's bandit loop directly with a rigged payoff."""
        policy = DynamicRR(rng=0)
        bandit = LipschitzBandit(0.0, 1000.0, num_arms=3, horizon=rounds)
        policy._bandit = bandit
        policy._reward_scale = 1.0
        journal = Journal()
        with use_journal(journal):
            for slot in range(rounds):
                value = bandit.select_value()
                policy._last_arm_value = value
                policy._selected_this_slot = True
                arm = bandit.grid.nearest_arm(value)
                policy.observe(slot, rewards_by_arm[arm])
        return journal

    def test_eliminations_journaled_and_legal(self):
        # Arm 2 dominates; the others must eventually be eliminated.
        journal = self.drive({0: 0.05, 1: 0.1, 2: 0.95})
        events = journal.events()
        eliminated = [e for e in events
                      if e["kind"] == "arm_eliminated"]
        assert eliminated
        for event in eliminated:
            assert event["arm"] in (0, 1)
            ucb, best_lcb = event["detail"]
            assert ucb <= best_lcb + 1e-9
        monitor = InvariantMonitor(mode="strict")
        assert monitor.check_events(events).ok
        assert monitor.checks["arm_separation"] >= len(eliminated)

    def test_no_spurious_eliminations_when_arms_tie(self):
        journal = self.drive({0: 0.5, 1: 0.5, 2: 0.5}, rounds=30)
        assert not [e for e in journal.events()
                    if e["kind"] == "arm_eliminated"]
