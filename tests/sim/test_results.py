"""Unit tests for sweep result aggregation."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import RunRecord, SweepResult, aggregate_records


def record(algorithm, x, seed, reward):
    return RunRecord(algorithm=algorithm, x=x, seed=seed,
                     metrics={"total_reward": reward,
                              "avg_latency_ms": reward / 10.0})


@pytest.fixture()
def sweep():
    result = SweepResult("num_requests")
    for x, rewards in [(100, (10.0, 12.0)), (200, (20.0, 22.0))]:
        for seed, r in enumerate(rewards):
            result.add(record("A", x, seed, r))
            result.add(record("B", x, seed, r / 2.0))
    return result


class TestSeries:
    def test_x_values_sorted(self, sweep):
        assert sweep.x_values() == [100, 200]

    def test_algorithms_first_seen_order(self, sweep):
        assert sweep.algorithms() == ["A", "B"]

    def test_series_means(self, sweep):
        xs, means, stds = sweep.series("A", "total_reward")
        assert xs == [100, 200]
        assert means == [pytest.approx(11.0), pytest.approx(21.0)]
        # Sample standard deviation (ddof=1), matching the t-based
        # intervals of repro.sim.stats: std([10, 12]) = sqrt(2).
        assert stds[0] == pytest.approx(2.0 ** 0.5)

    def test_series_single_seed_std_zero(self):
        sweep = SweepResult("n")
        sweep.add(record("A", 100, 0, 10.0))
        _, _, stds = sweep.series("A", "total_reward")
        assert stds == [0.0]

    def test_missing_algorithm_raises(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.series("C", "total_reward")

    def test_missing_metric_raises(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.series("A", "nope")

    def test_table(self, sweep):
        table = sweep.table("total_reward")
        assert table["A"] == [pytest.approx(11.0), pytest.approx(21.0)]
        assert table["B"] == [pytest.approx(5.5), pytest.approx(10.5)]

    def test_table_pads_missing_points_with_nan(self, sweep):
        # "Heu" only measures total_reward at x=200: its row must
        # still align to x_values() = [100, 200], padding x=100.
        sweep.add(RunRecord("Heu", 200, 0, {"total_reward": 7.0}))
        table = sweep.table("total_reward")
        assert len(table["Heu"]) == len(sweep.x_values()) == 2
        assert math.isnan(table["Heu"][0])
        assert table["Heu"][1] == pytest.approx(7.0)
        # Rows of fully-populated algorithms are untouched.
        assert table["A"] == [pytest.approx(11.0), pytest.approx(21.0)]

    def test_table_metric_absent_at_one_x_keeps_alignment(self):
        # "C" lacks the metric at x=200: its row must not shift the
        # x=200 column into the x=100 slot.
        sweep = SweepResult("n")
        sweep.add(RunRecord("A", 100, 0, {"special": 9.0}))
        sweep.add(RunRecord("A", 200, 0, {"special": 8.0}))
        sweep.add(RunRecord("C", 100, 0, {"special": 1.0}))
        sweep.add(RunRecord("C", 200, 0, {"other": 4.0}))
        table = sweep.table("special")
        assert table["A"] == [pytest.approx(9.0), pytest.approx(8.0)]
        assert table["C"][0] == pytest.approx(1.0)
        assert math.isnan(table["C"][1])


class TestWinner:
    def test_winner_higher_better(self, sweep):
        assert sweep.winner_at(100, "total_reward") == "A"

    def test_winner_lower_better(self, sweep):
        assert sweep.winner_at(100, "avg_latency_ms",
                               higher_is_better=False) == "B"

    def test_winner_missing_x(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.winner_at(300, "total_reward")


class TestAggregate:
    def test_aggregate_records(self):
        records = [record("A", 1, 0, 1.0), record("A", 2, 0, 2.0)]
        sweep = aggregate_records(records, "x")
        assert sweep.x_label == "x"
        assert len(sweep.records) == 2
