"""Unit tests for sweep result aggregation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import RunRecord, SweepResult, aggregate_records


def record(algorithm, x, seed, reward):
    return RunRecord(algorithm=algorithm, x=x, seed=seed,
                     metrics={"total_reward": reward,
                              "avg_latency_ms": reward / 10.0})


@pytest.fixture()
def sweep():
    result = SweepResult("num_requests")
    for x, rewards in [(100, (10.0, 12.0)), (200, (20.0, 22.0))]:
        for seed, r in enumerate(rewards):
            result.add(record("A", x, seed, r))
            result.add(record("B", x, seed, r / 2.0))
    return result


class TestSeries:
    def test_x_values_sorted(self, sweep):
        assert sweep.x_values() == [100, 200]

    def test_algorithms_first_seen_order(self, sweep):
        assert sweep.algorithms() == ["A", "B"]

    def test_series_means(self, sweep):
        xs, means, stds = sweep.series("A", "total_reward")
        assert xs == [100, 200]
        assert means == [pytest.approx(11.0), pytest.approx(21.0)]
        assert stds[0] == pytest.approx(1.0)

    def test_missing_algorithm_raises(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.series("C", "total_reward")

    def test_missing_metric_raises(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.series("A", "nope")

    def test_table(self, sweep):
        table = sweep.table("total_reward")
        assert table["A"] == [pytest.approx(11.0), pytest.approx(21.0)]
        assert table["B"] == [pytest.approx(5.5), pytest.approx(10.5)]


class TestWinner:
    def test_winner_higher_better(self, sweep):
        assert sweep.winner_at(100, "total_reward") == "A"

    def test_winner_lower_better(self, sweep):
        assert sweep.winner_at(100, "avg_latency_ms",
                               higher_is_better=False) == "B"

    def test_winner_missing_x(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.winner_at(300, "total_reward")


class TestAggregate:
    def test_aggregate_records(self):
        records = [record("A", 1, 0, 1.0), record("A", 2, 0, 2.0)]
        sweep = aggregate_records(records, "x")
        assert sweep.x_label == "x"
        assert len(sweep.records) == 2
