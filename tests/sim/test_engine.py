"""Unit tests for the offline executor (common random numbers)."""

import pytest

from repro.core.appro import Appro
from repro.baselines.greedy import GreedyOffline
from repro.baselines.ocorp import OcorpOffline
from repro.sim.engine import run_offline


class TestCommonRandomNumbers:
    def test_realizations_identical_across_algorithms(
            self, small_instance):
        """The same request realizes the same (rate, reward) under
        every algorithm - the fairness contract of run_offline."""
        wl_a = small_instance.new_workload(15, seed=7)
        run_offline(GreedyOffline(), small_instance, wl_a, seed=7)
        realized_a = {r.request_id: (r.realized_rate_mbps,
                                     r.realized_reward)
                      for r in wl_a if r.is_realized}

        wl_b = small_instance.new_workload(15, seed=7)
        run_offline(OcorpOffline(), small_instance, wl_b, seed=7)
        realized_b = {r.request_id: (r.realized_rate_mbps,
                                     r.realized_reward)
                      for r in wl_b if r.is_realized}

        shared = set(realized_a) & set(realized_b)
        assert shared
        for rid in shared:
            assert realized_a[rid] == realized_b[rid]

    def test_reuses_workload_after_reset(self, small_instance):
        """Passing the same (mutated) list back re-realizes cleanly."""
        workload = small_instance.new_workload(10, seed=3)
        first = run_offline(GreedyOffline(), small_instance, workload,
                            seed=3)
        second = run_offline(GreedyOffline(), small_instance, workload,
                             seed=3)
        assert first.total_reward == pytest.approx(second.total_reward)

    def test_different_seed_changes_realizations(self, small_instance):
        workload = small_instance.new_workload(10, seed=3)
        a = run_offline(GreedyOffline(), small_instance, workload,
                        seed=3).total_reward
        workload = small_instance.new_workload(10, seed=3)
        b = run_offline(GreedyOffline(), small_instance, workload,
                        seed=4).total_reward
        # Same workload, different realization seed: totals differ
        # almost surely.
        assert a != pytest.approx(b)


class TestResultShape:
    def test_algorithm_name_propagates(self, small_instance,
                                       small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        assert result.algorithm == "Appro"

    def test_every_request_decided(self, small_instance, small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        decided = set(result.decisions)
        assert decided == {r.request_id for r in small_workload}
