"""Tests for replication statistics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import RunRecord, SweepResult
from repro.sim.stats import (IntervalEstimate, interval,
                             render_intervals, sweep_intervals,
                             unresolved_points)


class TestInterval:
    def test_single_sample(self):
        est = interval([5.0])
        assert est.mean == 5.0
        assert est.half_width == 0.0
        assert est.n == 1

    def test_known_case(self):
        # n=4, sd=1 -> sem=0.5, t_{0.975,3} ~ 3.182.
        est = interval([1.0, 2.0, 3.0, 2.0])
        assert est.mean == pytest.approx(2.0)
        sem = np.std([1, 2, 3, 2], ddof=1) / 2.0
        assert est.half_width == pytest.approx(3.1824 * sem, rel=1e-3)

    def test_endpoints(self):
        est = IntervalEstimate(mean=10.0, half_width=2.0, n=3)
        assert est.low == 8.0 and est.high == 12.0

    def test_overlap(self):
        a = IntervalEstimate(10.0, 2.0, 3)
        b = IntervalEstimate(13.0, 2.0, 3)
        c = IntervalEstimate(20.0, 2.0, 3)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interval([])
        with pytest.raises(ConfigurationError):
            interval([1.0], confidence=1.0)

    def test_coverage_statistical(self):
        """~95% of 95% intervals over normal samples cover the mean."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 400
        for _ in range(trials):
            sample = rng.normal(loc=7.0, scale=2.0, size=8)
            est = interval(sample)
            if est.low <= 7.0 <= est.high:
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)


def make_sweep():
    sweep = SweepResult("x")
    for x in (1, 2):
        for seed, (a_val, b_val) in enumerate(((10.0, 5.0), (12.0, 5.5),
                                               (11.0, 5.2))):
            sweep.add(RunRecord("A", x, seed,
                                {"total_reward": a_val + x}))
            sweep.add(RunRecord("B", x, seed,
                                {"total_reward": b_val + x}))
    return sweep


class TestSweepIntervals:
    def test_per_x(self):
        pairs = sweep_intervals(make_sweep(), "A", "total_reward")
        assert [x for x, _e in pairs] == [1, 2]
        assert pairs[0][1].n == 3

    def test_missing_raises(self):
        with pytest.raises(ConfigurationError):
            sweep_intervals(make_sweep(), "Z", "total_reward")

    def test_unresolved_points(self):
        sweep = make_sweep()
        # A (means ~12, 13) vs B (means ~6.2, 7.2) are well separated.
        assert unresolved_points(sweep, "A", "B") == []

    def test_unresolved_detects_overlap(self):
        sweep = SweepResult("x")
        for seed, val in enumerate((10.0, 14.0, 12.0)):
            sweep.add(RunRecord("A", 1, seed, {"total_reward": val}))
            sweep.add(RunRecord("B", 1, seed,
                                {"total_reward": val + 0.5}))
        assert unresolved_points(sweep, "A", "B") == [1]

    def test_render(self):
        text = render_intervals(make_sweep(), "total_reward")
        assert "total_reward" in text
        assert "+/-" in text
        assert "A" in text and "B" in text


class TestOnRealSweep:
    def test_fig3_ordering_resolved(self, small_instance):
        """Heu vs Greedy must be statistically resolved at saturation
        (below saturation the gap genuinely is not significant at tiny
        replication counts, which the helper correctly reports)."""
        from repro.baselines.greedy import GreedyOffline
        from repro.core.heu import Heu
        from repro.experiments.runner import run_offline_sweep

        sweep = run_offline_sweep(
            algorithm_factories=[Heu, GreedyOffline],
            x_values=[60],
            make_config=lambda x, seed: small_instance.config,
            num_requests_of=lambda x: int(x),
            num_seeds=4,
            x_label="num_requests")
        assert unresolved_points(sweep, "Heu", "Greedy") == []
