"""Unit tests for the reward/latency/runtime meters."""

import time

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.metrics import (LatencyMeter, RewardMeter, RuntimeMeter,
                               jains_fairness_index, summarize)


class TestRewardMeter:
    def test_accumulates(self):
        meter = RewardMeter()
        meter.record(10.0)
        meter.record(0.0)
        meter.record(5.0)
        assert meter.total == pytest.approx(15.0)
        assert meter.num_requests == 3
        assert meter.num_rewarded == 2
        assert meter.mean() == pytest.approx(5.0)

    def test_empty(self):
        meter = RewardMeter()
        assert meter.total == 0.0
        assert meter.mean() == 0.0
        assert meter.num_requests == 0
        assert meter.num_rewarded == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            RewardMeter().record(-1.0)


class TestLatencyMeter:
    def test_average_and_percentile(self):
        meter = LatencyMeter()
        for value in (10.0, 20.0, 30.0, 40.0):
            meter.record(value, deadline_ms=25.0)
        assert meter.count == 4
        assert meter.average_ms() == pytest.approx(25.0)
        assert meter.percentile_ms(50) == pytest.approx(25.0)
        assert meter.deadline_hit_rate() == pytest.approx(0.5)

    def test_empty(self):
        meter = LatencyMeter()
        assert meter.average_ms() == 0.0
        assert meter.percentile_ms(99) == 0.0
        assert meter.deadline_hit_rate() == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyMeter().record(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            LatencyMeter().percentile_ms(101)
        with pytest.raises(ConfigurationError):
            LatencyMeter().percentile_ms(-0.5)

    def test_percentile_extremes(self):
        meter = LatencyMeter()
        for value in (10.0, 20.0, 30.0, 40.0):
            meter.record(value, deadline_ms=25.0)
        assert meter.percentile_ms(0) == pytest.approx(10.0)
        assert meter.percentile_ms(100) == pytest.approx(40.0)

    def test_exact_deadline_counts_as_hit(self):
        meter = LatencyMeter()
        meter.record(25.0, deadline_ms=25.0)
        assert meter.deadline_hit_rate() == pytest.approx(1.0)


class TestRuntimeMeter:
    def test_context_manager(self):
        meter = RuntimeMeter()
        with meter:
            time.sleep(0.01)
        assert meter.total_s >= 0.005

    def test_add(self):
        meter = RuntimeMeter()
        meter.add(1.5)
        meter.add(0.5)
        assert meter.total_s == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            meter.add(-1.0)

    def test_exit_without_enter_raises(self):
        meter = RuntimeMeter()
        with pytest.raises(ConfigurationError):
            meter.__exit__(None, None, None)
        # And the meter stays usable afterwards.
        meter.add(0.25)
        assert meter.total_s == pytest.approx(0.25)

    def test_enter_while_started_raises(self):
        # Re-entering would silently reset the start stamp and drop
        # the time accrued since the outer __enter__.
        meter = RuntimeMeter()
        with meter:
            with pytest.raises(ConfigurationError):
                meter.__enter__()
        # The outer cycle still closed cleanly and accrued time.
        assert meter.total_s > 0.0
        with meter:
            pass


class TestJainsFairnessIndex:
    def test_equal_values_are_perfectly_fair(self):
        assert jains_fairness_index([7.0, 7.0, 7.0]) == pytest.approx(1.0)

    def test_all_zero_is_perfectly_fair(self):
        assert jains_fairness_index([0.0, 0.0, 0.0]) == 1.0

    def test_empty_is_perfectly_fair(self):
        assert jains_fairness_index([]) == 1.0

    def test_exact_value_without_epsilon_shift(self):
        # (1+0)^2 / (2 * (1+0)) = 0.5 exactly; an epsilon shift would
        # nudge this off.
        assert jains_fairness_index([1.0, 0.0]) == 0.5

    def test_maximally_unfair_approaches_one_over_n(self):
        assert jains_fairness_index([0.0, 0.0, 0.0, 1000.0]) == (
            pytest.approx(0.25))

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            jains_fairness_index([1.0, -2.0])


class TestSummarize:
    def test_keys(self):
        reward, latency, runtime = (RewardMeter(), LatencyMeter(),
                                    RuntimeMeter())
        reward.record(5.0)
        latency.record(10.0, 200.0)
        runtime.add(0.1)
        row = summarize(reward, latency, runtime)
        assert row == {"total_reward": 5.0, "avg_latency_ms": 10.0,
                       "runtime_s": pytest.approx(0.1)}
