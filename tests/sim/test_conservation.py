"""Conservation property tests for the online engine.

The physics layer must conserve resources: the total work processed
over a run can never exceed what the network's computing capacity could
have produced, and per-station shares can never exceed the station's
(effective) capacity in any slot.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.core.dynamic_rr import DynamicRR
from repro.core.instance import ProblemInstance
from repro.sim.online_engine import OnlineEngine, Placement

_instances = {}


def build_instance(seed):
    if seed not in _instances:
        config = SimulationConfig(
            network=NetworkConfig(num_base_stations=5),
            requests=RequestConfig(num_requests=10),
            online=OnlineConfig(horizon_slots=20),
            seed=seed)
        _instances[seed] = ProblemInstance.build(config, seed=seed)
    return _instances[seed]


class GreedyFlood:
    """Adversarial test policy: floods station 0 with everything."""

    name = "Flood"

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return [Placement(request_id=r.request_id, station_id=0)
                for r in pending]

    def observe(self, slot, slot_reward):
        pass


def processed_work_mb(workload, result, slot_length_ms):
    """Work the engine actually completed, reconstructed per request."""
    total = 0.0
    by_id = {r.request_id: r for r in workload}
    for decision in result.decisions.values():
        if decision.admitted and decision.primary_station is not None:
            request = by_id[decision.request_id]
            # Upper bound: the full stream volume.
            total += request.total_work_mb(slot_length_ms)
    return total


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=25),
       n=st.integers(min_value=1, max_value=12))
def test_work_never_exceeds_capacity_budget(seed, n):
    """Admitted stream volume <= network capacity x horizon (in MB)."""
    instance = build_instance(seed % 3)
    horizon = 20
    workload = instance.new_workload(num_requests=n, seed=seed,
                                     horizon_slots=horizon)
    engine = OnlineEngine(instance, workload, horizon_slots=horizon,
                          rng=seed)
    result = engine.run(DynamicRR(rng=seed))
    slot_ms = engine.clock.slot_length_ms
    budget_mb = (instance.network.total_capacity_mhz()
                 / instance.c_unit) * (horizon * slot_ms / 1000.0)
    # Streams may extend past the horizon; scale the budget by the
    # worst-case overhang.
    max_duration = max((r.stream_duration_slots for r in workload),
                       default=1)
    slack = (horizon + max_duration) / horizon
    assert processed_work_mb(workload, result, slot_ms) <= (
        budget_mb * slack + 1e-6)


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=25))
def test_flooded_station_shares_bounded(seed):
    """Even under flooding, per-slot station output <= capacity."""
    instance = build_instance(seed % 3)
    horizon = 15
    workload = instance.new_workload(num_requests=10, seed=seed,
                                     horizon_slots=horizon)
    engine = OnlineEngine(instance, workload, horizon_slots=horizon,
                          rng=seed)

    per_slot_output = []
    original = engine._progress

    def spy(t):
        before = {rid: a.remaining_mb
                  for rid, a in engine._active.items()}
        original(t)
        done = sum(before[rid] - a.remaining_mb
                   for rid, a in engine._active.items()
                   if rid in before)
        per_slot_output.append(done)

    engine._progress = spy
    engine.run(GreedyFlood())
    capacity0 = instance.network.station(0).capacity_mhz
    per_slot_budget = (capacity0 / instance.c_unit
                       * engine.clock.slot_length_s)
    for output in per_slot_output:
        assert output <= per_slot_budget + 1e-6
