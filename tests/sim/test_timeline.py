"""Unit tests for the event timeline renderer."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.events import Event, EventKind
from repro.sim.timeline import (activity_per_slot, narrate, strip_chart,
                                summarize_events)


@pytest.fixture()
def events():
    return [
        Event(slot=0, kind=EventKind.ARRIVAL, request_id=1),
        Event(slot=0, kind=EventKind.ARRIVAL, request_id=2),
        Event(slot=1, kind=EventKind.START, request_id=1, station_id=3),
        Event(slot=2, kind=EventKind.DROP, request_id=2),
        Event(slot=5, kind=EventKind.COMPLETE, request_id=1,
              station_id=3, reward=42.0, latency_ms=120.0),
    ]


class TestNarrate:
    def test_full_window(self, events):
        text = narrate(events)
        assert text.count("\n") == 4
        assert "arrival" in text and "complete" in text
        assert "reward=42.0" in text

    def test_slot_window(self, events):
        text = narrate(events, first_slot=1, last_slot=2)
        assert "start" in text and "drop" in text
        assert "arrival" not in text

    def test_truncation(self, events):
        text = narrate(events, max_lines=2)
        assert "3 more events" in text

    def test_validation(self, events):
        with pytest.raises(ConfigurationError):
            narrate(events, first_slot=-1)


class TestActivity:
    def test_counts(self, events):
        counts = activity_per_slot(events, horizon_slots=6)
        assert counts["arrival"][0] == 2
        assert counts["start"][1] == 1
        assert counts["drop"][2] == 1
        assert counts["complete"][5] == 1
        assert sum(counts["preempt_wait"]) == 0

    def test_out_of_horizon_ignored(self, events):
        counts = activity_per_slot(events, horizon_slots=3)
        assert sum(counts["complete"]) == 0

    def test_validation(self, events):
        with pytest.raises(ConfigurationError):
            activity_per_slot(events, horizon_slots=0)


class TestStripChart:
    def test_glyphs_and_legend(self, events):
        chart = strip_chart(events, horizon_slots=6, width=6)
        line, legend = chart.split("\n")
        assert len(line) == 6
        assert line[0] == "a"   # two arrivals dominate slot 0
        assert line[5] == "C"
        assert "a=arrival" in legend

    def test_quiet_buckets_dotted(self, events):
        chart = strip_chart(events, horizon_slots=6, width=6)
        assert "." in chart.split("\n")[0]

    def test_width_larger_than_horizon(self, events):
        chart = strip_chart(events, horizon_slots=3, width=100)
        assert len(chart.split("\n")[0]) == 3

    def test_validation(self, events):
        with pytest.raises(ConfigurationError):
            strip_chart(events, horizon_slots=6, width=0)


class TestSummary:
    def test_totals(self, events):
        totals = summarize_events(events)
        expected = {kind.value: 0 for kind in EventKind}
        expected.update({"arrival": 2, "start": 1, "complete": 1,
                         "drop": 1})
        assert totals == expected

    def test_real_engine_log(self, small_instance, online_workload):
        from repro.core.dynamic_rr import DynamicRR
        from repro.sim.online_engine import OnlineEngine

        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        engine.run(DynamicRR(rng=0))
        totals = summarize_events(engine.events)
        assert totals["arrival"] == len(online_workload)
        chart = strip_chart(engine.events, horizon_slots=40)
        assert len(chart.split("\n")[0]) == 40
