"""Unit and invariant tests for the slotted online engine."""

from typing import List

import pytest

from repro.exceptions import SchedulingError
from repro.sim.events import EventKind
from repro.sim.online_engine import (CLOUD_LATENCY_MS, CLOUD_STATION,
                                     OnlineEngine, Placement)


class ImmediateGlobalPolicy:
    """Test policy: start every pending request on station 0."""

    name = "Immediate"

    def __init__(self):
        self.observed: List[float] = []

    def begin(self, engine):
        self.engine = engine

    def schedule(self, slot, pending):
        return [Placement(request_id=r.request_id, station_id=0)
                for r in pending]

    def observe(self, slot, slot_reward):
        self.observed.append(slot_reward)


class LazyPolicy:
    """Test policy: never starts anything."""

    name = "Lazy"

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return []

    def observe(self, slot, slot_reward):
        pass


class CloudPolicy:
    """Test policy: send everything to the cloud."""

    name = "Cloud"

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return [Placement(request_id=r.request_id,
                          station_id=CLOUD_STATION) for r in pending]

    def observe(self, slot, slot_reward):
        pass


class BadPolicy:
    """Test policy: places a request that does not exist."""

    name = "Bad"

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return [Placement(request_id=10_000, station_id=0)]

    def observe(self, slot, slot_reward):
        pass


class TestLifecycle:
    def test_every_request_decided(self, small_instance,
                                   online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(ImmediateGlobalPolicy())
        assert len(result) == len(online_workload)

    def test_lazy_policy_rejects_everything(self, small_instance,
                                            online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(LazyPolicy())
        assert result.num_admitted == 0
        assert result.total_reward == 0.0

    def test_events_ordered_and_consistent(self, small_instance,
                                           online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        engine.run(ImmediateGlobalPolicy())
        started, completed = set(), set()
        for event in engine.events:
            if event.kind is EventKind.START:
                assert event.request_id not in started
                started.add(event.request_id)
            elif event.kind is EventKind.COMPLETE:
                assert event.request_id in started
                assert event.request_id not in completed
                completed.add(event.request_id)
        assert completed.issubset(started)

    def test_bad_placement_raises(self, small_instance,
                                  online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        with pytest.raises(SchedulingError):
            engine.run(BadPolicy())


class TestLatencySemantics:
    def test_waiting_counts_toward_latency(self, small_instance,
                                           online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(ImmediateGlobalPolicy())
        for decision in result.decisions.values():
            if decision.admitted and decision.latency_ms is not None:
                assert decision.latency_ms >= decision.waiting_ms - 1e-9

    def test_congestion_slows_processing(self, small_instance):
        """Dumping everything on one station must cost latency compared
        with the uncongested placement delay."""
        workload = small_instance.new_workload(20, seed=1,
                                               horizon_slots=5)
        engine = OnlineEngine(small_instance, workload, horizon_slots=40,
                              rng=1)
        result = engine.run(ImmediateGlobalPolicy())
        congested = [d for d in result.decisions.values()
                     if d.admitted and d.primary_station == 0]
        assert congested
        by_id = {r.request_id: r for r in workload}
        slowdowns = []
        for d in congested:
            base = small_instance.latency.total_delay_ms(
                by_id[d.request_id], 0, waiting_ms=d.waiting_ms)
            slowdowns.append(d.latency_ms - base)
        # At least some requests were stretched by sharing.
        assert max(slowdowns) > 1e-6

    def test_reward_iff_deadline(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(ImmediateGlobalPolicy())
        for decision in result.decisions.values():
            if decision.admitted:
                if decision.deadline_met:
                    assert decision.reward >= 0.0
                else:
                    assert decision.reward == 0.0


class TestCloud:
    def test_cloud_settles_immediately(self, small_instance,
                                       online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(CloudPolicy())
        assert result.num_admitted == len(online_workload)
        for decision in result.decisions.values():
            assert decision.primary_station is None
            assert decision.latency_ms >= CLOUD_LATENCY_MS
            assert decision.reward == 0.0  # 320 ms > 200 ms deadline


class TestViews:
    def test_free_capacity_tracks_active(self, small_instance,
                                         online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)

        class Checker(ImmediateGlobalPolicy):
            def observe(self, slot, slot_reward):
                cap0 = small_instance.network.station(0).capacity_mhz
                assert 0.0 <= self.engine.free_mhz(0) <= cap0
                assert (self.engine.active_demand_mhz(0)
                        >= self.engine.active_count(0) * 0.0)

        engine.run(Checker())

    def test_observe_receives_slot_rewards(self, small_instance,
                                           online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        policy = ImmediateGlobalPolicy()
        result = engine.run(policy)
        assert len(policy.observed) == 40
        assert sum(policy.observed) == pytest.approx(result.total_reward)
