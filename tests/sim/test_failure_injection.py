"""Failure-injection tests: station outages in the online engine."""

import pytest

from repro.baselines.ocorp import OcorpOnline
from repro.core.dynamic_rr import DynamicRR
from repro.exceptions import ConfigurationError
from repro.sim.online_engine import OnlineEngine, Placement


class PinToStationPolicy:
    """Test policy: pins every request to one station, outage or not."""

    name = "Pinned"

    def __init__(self, station_id):
        self.station_id = station_id

    def begin(self, engine):
        pass

    def schedule(self, slot, pending):
        return [Placement(request_id=r.request_id,
                          station_id=self.station_id) for r in pending]

    def observe(self, slot, slot_reward):
        pass


class TestOutageValidation:
    def test_unknown_station_rejected(self, small_instance,
                                      online_workload):
        with pytest.raises(ConfigurationError):
            OnlineEngine(small_instance, online_workload,
                         horizon_slots=40, outages={99: (0, 10)})

    def test_inverted_window_rejected(self, small_instance,
                                      online_workload):
        with pytest.raises(ConfigurationError):
            OnlineEngine(small_instance, online_workload,
                         horizon_slots=40, outages={0: (10, 5)})


class TestOutageSemantics:
    def test_down_station_has_no_capacity(self, small_instance,
                                          online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0,
                              outages={0: (0, 39)})
        assert engine.is_down(0, slot=0)
        assert not engine.is_down(1, slot=0)
        assert engine.station_capacity_mhz(0) == 0.0
        assert engine.free_mhz(0) == 0.0

    def test_window_bounds(self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0,
                              outages={0: (5, 10)})
        assert not engine.is_down(0, slot=4)
        assert engine.is_down(0, slot=5)
        assert engine.is_down(0, slot=10)
        assert not engine.is_down(0, slot=11)

    def test_requests_pinned_to_dead_station_earn_nothing(
            self, small_instance, online_workload):
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0,
                              outages={0: (0, 39)})
        result = engine.run(PinToStationPolicy(0))
        for decision in result.decisions.values():
            if decision.admitted and decision.primary_station == 0:
                assert decision.reward == 0.0
                assert not decision.deadline_met


class TestPoliciesRouteAroundOutage:
    def test_dynamic_rr_avoids_dead_station(self, small_instance):
        workload = small_instance.new_workload(25, seed=2,
                                               horizon_slots=40)
        engine = OnlineEngine(small_instance, workload,
                              horizon_slots=40, rng=2,
                              outages={0: (0, 39)})
        result = engine.run(DynamicRR(rng=2))
        placed_on_dead = [d for d in result.decisions.values()
                          if d.admitted and d.primary_station == 0]
        assert not placed_on_dead
        assert result.total_reward > 0.0

    def test_ocorp_avoids_dead_station(self, small_instance):
        workload = small_instance.new_workload(25, seed=2,
                                               horizon_slots=40)
        engine = OnlineEngine(small_instance, workload,
                              horizon_slots=40, rng=2,
                              outages={0: (0, 39)})
        result = engine.run(OcorpOnline())
        placed_on_dead = [d for d in result.decisions.values()
                          if d.admitted and d.primary_station == 0]
        assert not placed_on_dead

    def test_outage_costs_reward_under_saturation(self, small_instance):
        """Losing stations must not *increase* DynamicRR's reward."""
        def run(outages):
            workload = small_instance.new_workload(40, seed=4,
                                                   horizon_slots=40)
            engine = OnlineEngine(small_instance, workload,
                                  horizon_slots=40, rng=4,
                                  outages=outages)
            return engine.run(DynamicRR(rng=4)).total_reward

        healthy = run(None)
        degraded = run({0: (0, 39), 1: (0, 39), 2: (0, 39)})
        assert degraded <= healthy * 1.05
        assert degraded > 0.0
