"""Unit tests for the slotted clock."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.clock import SlotClock


class TestClock:
    def test_paper_slot_length(self):
        clock = SlotClock(horizon_slots=100)
        assert clock.slot_length_ms == 50.0
        assert clock.slot_length_s == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlotClock(horizon_slots=0)
        with pytest.raises(ConfigurationError):
            SlotClock(horizon_slots=10, slot_length_ms=0.0)

    def test_ms_of(self):
        clock = SlotClock(horizon_slots=10)
        assert clock.ms_of(4) == pytest.approx(200.0)
        with pytest.raises(ConfigurationError):
            clock.ms_of(-1)

    def test_waiting(self):
        clock = SlotClock(horizon_slots=10)
        assert clock.waiting_ms(2, 5) == pytest.approx(150.0)
        assert clock.waiting_ms(3, 3) == 0.0
        with pytest.raises(ConfigurationError):
            clock.waiting_ms(5, 2)

    def test_ticks(self):
        clock = SlotClock(horizon_slots=5)
        seen = list(clock.ticks())
        assert seen == [0, 1, 2, 3, 4]
        assert clock.current_slot == 4
