"""Tests for the per-slot step() surface extracted from run().

run() is now implemented on top of step(); these tests pin the
refactor: driving step() by hand is byte-identical to run() (events,
journal, decisions), streaming mode keeps no history and forbids
run(), and engine state export/restore reproduces the remaining slots
exactly.
"""

from __future__ import annotations

import pytest

from repro.baselines import GreedyOnline
from repro.exceptions import ConfigurationError
from repro.sim.online_engine import OnlineEngine, SlotOutcome
from repro.telemetry.audit import Journal, use_journal

HORIZON = 40


def make_engine(small_instance, workload, streaming=False):
    return OnlineEngine(small_instance, workload, horizon_slots=HORIZON,
                        rng=123, streaming=streaming)


def arrivals_by_slot(workload):
    buckets = {}
    for request in workload:
        buckets.setdefault(request.arrival_slot, []).append(request)
    return buckets


class TestRunStepIdentity:
    def test_manual_step_loop_matches_run(self, small_instance,
                                          online_workload):
        run_journal = Journal()
        with use_journal(run_journal):
            engine_a = make_engine(small_instance, online_workload)
            result_a = engine_a.run(GreedyOnline())

        step_journal = Journal()
        with use_journal(step_journal):
            engine_b = make_engine(small_instance, online_workload)
            policy = GreedyOnline()
            engine_b.announce_stations()
            policy.begin(engine_b)
            buckets = arrivals_by_slot(online_workload)
            for t in engine_b.clock.ticks():
                engine_b.step(policy, t, buckets.get(t, ()))
            engine_b._finalize()

        assert run_journal.events() == step_journal.events()
        assert [str(e) for e in engine_a.events] == \
            [str(e) for e in engine_b.events]
        assert engine_a._decided.keys() == engine_b._decided.keys()
        total_b = sum(d.reward for d in engine_b._decided.values())
        assert result_a.total_reward == pytest.approx(total_b)

    def test_step_returns_slot_outcome(self, small_instance,
                                       online_workload):
        engine = make_engine(small_instance, online_workload)
        policy = GreedyOnline()
        engine.announce_stations()
        policy.begin(engine)
        buckets = arrivals_by_slot(online_workload)
        outcome = engine.step(policy, 0, buckets.get(0, ()))
        assert isinstance(outcome, SlotOutcome)
        assert outcome.slot == 0
        assert outcome.num_arrivals == len(buckets.get(0, ()))
        assert outcome.pending_after == engine.pending_count()
        assert outcome.active_after == engine.active_total()


class TestStreamingMode:
    def test_run_is_forbidden(self, small_instance, online_workload):
        engine = make_engine(small_instance, online_workload,
                             streaming=True)
        with pytest.raises(ConfigurationError):
            engine.run(GreedyOnline())

    def test_streaming_keeps_no_history(self, small_instance,
                                        online_workload):
        engine = make_engine(small_instance, online_workload,
                             streaming=True)
        policy = GreedyOnline()
        policy.begin(engine)
        buckets = arrivals_by_slot(online_workload)
        for t in engine.clock.ticks():
            engine.step(policy, t, buckets.get(t, ()))
        assert engine.events == []
        assert engine._decided == {}

    def test_streaming_journal_matches_batch_mode(self, small_instance,
                                                  online_workload):
        """Streaming gates only in-memory history, never the journal."""
        journals = []
        for streaming in (False, True):
            journal = Journal()
            with use_journal(journal):
                engine = make_engine(small_instance, online_workload,
                                     streaming=streaming)
                policy = GreedyOnline()
                engine.announce_stations()
                policy.begin(engine)
                buckets = arrivals_by_slot(online_workload)
                for t in engine.clock.ticks():
                    engine.step(policy, t, buckets.get(t, ()))
                engine.finalize()
            journals.append(journal.events())
        assert journals[0] == journals[1]


class TestEngineCheckpoint:
    def test_export_restore_reproduces_remaining_slots(
            self, small_instance, online_workload):
        split = 17
        buckets = arrivals_by_slot(online_workload)

        baseline = make_engine(small_instance, online_workload)
        policy_a = GreedyOnline()
        policy_a.begin(baseline)
        state = None
        tail_a = []
        journal_a = Journal()
        with use_journal(journal_a):
            for t in baseline.clock.ticks():
                outcome = baseline.step(policy_a, t, buckets.get(t, ()))
                if t == split - 1:
                    state = baseline.export_state()
                if t >= split:
                    tail_a.append(outcome)

        resumed = make_engine(small_instance, [])
        policy_b = GreedyOnline()
        policy_b.begin(resumed)
        resumed.restore_state(state)
        tail_b = []
        journal_b = Journal()
        with use_journal(journal_b):
            for t in resumed.clock.ticks(first_slot=split):
                tail_b.append(resumed.step(policy_b, t,
                                           buckets.get(t, ())))

        assert tail_a == tail_b
        start = next(i for i, e in enumerate(journal_a.events())
                     if e["slot"] >= split and e["kind"] != "station_up")
        assert journal_a.events()[start:] == journal_b.events()
