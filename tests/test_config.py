"""Unit tests for :mod:`repro.config` validation and defaults."""

from dataclasses import replace

import pytest

from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig, paper_default_config)
from repro.exceptions import ConfigurationError


class TestPaperDefaults:
    """Section VI-A parameters must be the library defaults."""

    def test_network_defaults(self):
        cfg = paper_default_config().network
        assert cfg.num_base_stations == 20
        assert cfg.capacity_range_mhz == (3000.0, 3600.0)
        assert cfg.slot_size_mhz == 1000.0

    def test_request_defaults(self):
        cfg = paper_default_config().requests
        assert cfg.data_rate_range_mbps == (30.0, 50.0)
        assert cfg.tasks_range == (3, 5)
        assert cfg.c_unit_mhz_per_mbps == 20.0
        assert cfg.reward_unit_range == (12.0, 15.0)
        assert cfg.deadline_ms == 200.0
        assert cfg.num_requests == 150

    def test_online_defaults(self):
        cfg = paper_default_config().online
        assert cfg.slot_length_ms == 50.0  # 0.05 s slots

    def test_validate_returns_self(self):
        cfg = SimulationConfig()
        assert cfg.validate() is cfg


class TestNetworkValidation:
    def test_zero_stations_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(num_base_stations=0).validate()

    def test_bad_capacity_range_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(capacity_range_mhz=(3600.0, 3000.0)).validate()
        with pytest.raises(ConfigurationError):
            NetworkConfig(capacity_range_mhz=(0.0, 3000.0)).validate()

    def test_slot_larger_than_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(capacity_range_mhz=(500.0, 800.0),
                          slot_size_mhz=1000.0).validate()

    def test_bad_waxman_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(waxman_alpha=0.0).validate()
        with pytest.raises(ConfigurationError):
            NetworkConfig(waxman_beta=1.5).validate()


class TestRequestValidation:
    def test_negative_requests_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestConfig(num_requests=-1).validate()

    def test_bad_rate_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestConfig(data_rate_range_mbps=(50.0, 30.0)).validate()

    def test_bad_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestConfig(rate_decay=0.0).validate()
        with pytest.raises(ConfigurationError):
            RequestConfig(rate_decay=1.5).validate()

    def test_bad_tasks_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestConfig(tasks_range=(0, 3)).validate()
        with pytest.raises(ConfigurationError):
            RequestConfig(tasks_range=(5, 3)).validate()

    def test_bad_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestConfig(deadline_ms=0.0).validate()


class TestOnlineValidation:
    def test_bad_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(horizon_slots=0).validate()

    def test_bad_threshold_range_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(threshold_range_mhz=(0.0, 100.0)).validate()
        with pytest.raises(ConfigurationError):
            OnlineConfig(threshold_range_mhz=(500.0, 100.0)).validate()

    def test_bad_arms_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(num_arms=0).validate()


class TestOverrides:
    def test_with_overrides_validates(self):
        cfg = SimulationConfig()
        with pytest.raises(ConfigurationError):
            cfg.with_overrides(network=NetworkConfig(num_base_stations=0))

    def test_with_overrides_replaces(self):
        cfg = SimulationConfig()
        new = cfg.with_overrides(seed=99)
        assert new.seed == 99
        assert cfg.seed == 0  # original untouched (frozen dataclass)

    def test_nested_replace(self):
        cfg = SimulationConfig()
        new = cfg.with_overrides(
            network=replace(cfg.network, num_base_stations=50))
        assert new.network.num_base_stations == 50
