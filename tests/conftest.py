"""Shared fixtures for the test suite.

The `small_*` fixtures build a reduced problem (8 stations, short
workloads) so unit and integration tests stay fast while exercising
real topology/workload diversity.  All fixtures are deterministic.
"""

from __future__ import annotations


import pytest

from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.core.instance import ProblemInstance

#: Seed used by every deterministic fixture.
FIXTURE_SEED = 1234


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    """A reduced configuration: 8 stations, 30-request default."""
    return SimulationConfig(
        network=NetworkConfig(num_base_stations=8),
        requests=RequestConfig(num_requests=30),
        online=OnlineConfig(horizon_slots=40),
        seed=FIXTURE_SEED,
    ).validate()


@pytest.fixture(scope="session")
def small_instance(small_config) -> ProblemInstance:
    """A deterministic reduced problem instance."""
    return ProblemInstance.build(small_config, seed=FIXTURE_SEED)


@pytest.fixture()
def small_workload(small_instance):
    """A fresh 20-request batch workload (unrealized rates)."""
    return small_instance.new_workload(num_requests=20, seed=FIXTURE_SEED)


@pytest.fixture()
def tiny_workload(small_instance):
    """A fresh 6-request batch workload for exact-solver tests."""
    return small_instance.new_workload(num_requests=6, seed=FIXTURE_SEED)


@pytest.fixture()
def online_workload(small_instance):
    """A 25-request slotted workload over a 40-slot horizon."""
    return small_instance.new_workload(num_requests=25, seed=FIXTURE_SEED,
                                       horizon_slots=40)
