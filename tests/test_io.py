"""Round-trip tests for JSON serialization of instances and results."""

import json

import pytest

from repro.config import SimulationConfig
from repro.core.appro import Appro
from repro.exceptions import ConfigurationError
from repro.io import (config_from_dict, config_to_dict, load_instance,
                      load_result, save_instance, save_result)
from repro.sim.engine import run_offline


class TestConfigRoundTrip:
    def test_identity(self):
        config = SimulationConfig(seed=42)
        clone = config_from_dict(config_to_dict(config))
        assert clone == config

    def test_survives_json(self):
        config = SimulationConfig(seed=3)
        text = json.dumps(config_to_dict(config))
        assert config_from_dict(json.loads(text)) == config


class TestInstanceRoundTrip:
    def test_topology_identical(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "instance.json")
        clone = load_instance(path)
        assert len(clone.network) == len(small_instance.network)
        for sid in small_instance.network.station_ids:
            assert (clone.network.station(sid).capacity_mhz
                    == small_instance.network.station(sid).capacity_mhz)
            assert (clone.latency.station_base_delay_ms(sid)
                    == small_instance.latency.station_base_delay_ms(sid))
        assert (sorted(clone.network.graph.edges)
                == sorted(small_instance.network.graph.edges))
        for u, v in small_instance.network.graph.edges:
            assert (clone.network.link_delay_ms(u, v)
                    == small_instance.network.link_delay_ms(u, v))

    def test_path_delays_identical(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "instance.json")
        clone = load_instance(path)
        ids = small_instance.network.station_ids
        for u in ids[:4]:
            for v in ids[:4]:
                assert (clone.paths.one_way_delay_ms(u, v)
                        == pytest.approx(
                            small_instance.paths.one_way_delay_ms(u, v)))

    def test_reloaded_instance_runs_identically(self, small_instance,
                                                tmp_path):
        """An algorithm run reproduces bit-exact on the reloaded
        instance (same workload seed)."""
        path = save_instance(small_instance, tmp_path / "instance.json")
        clone = load_instance(path)
        a = run_offline(Appro(), small_instance,
                        small_instance.new_workload(15, seed=9), seed=9)
        b = run_offline(Appro(), clone,
                        clone.new_workload(15, seed=9), seed=9)
        assert a.total_reward == pytest.approx(b.total_reward)
        assert a.num_admitted == b.num_admitted

    def test_version_check(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "instance.json")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_instance(path)

    def test_kind_check(self, small_instance, tmp_path):
        path = save_instance(small_instance, tmp_path / "instance.json")
        payload = json.loads(path.read_text())
        payload["kind"] = "result"
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_instance(path)


class TestResultRoundTrip:
    def test_identity(self, small_instance, small_workload, tmp_path):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        path = save_result(result, tmp_path / "result.json")
        clone = load_result(path)
        assert clone.algorithm == result.algorithm
        assert clone.total_reward == pytest.approx(result.total_reward)
        assert clone.num_admitted == result.num_admitted
        assert (clone.average_latency_ms()
                == pytest.approx(result.average_latency_ms()))
        for rid, decision in result.decisions.items():
            other = clone.decision(rid)
            assert other.admitted == decision.admitted
            assert other.reward == pytest.approx(decision.reward)
            assert other.migrated_tasks == decision.migrated_tasks
