"""End-to-end integration tests: the paper's qualitative claims.

These run the real algorithms on the real (reduced-scale) experiment
pipeline and assert the *orderings* the paper reports - who wins on
reward, who wins on latency - summed over seeds to damp randomness.
"""

import pytest

from repro.baselines import (GreedyOffline, GreedyOnline, HeuKktOffline,
                             HeuKktOnline, OcorpOffline, OcorpOnline)
from repro.config import SimulationConfig
from repro.core.appro import Appro
from repro.core.dynamic_rr import DynamicRR
from repro.core.heu import Heu
from repro.core.instance import ProblemInstance
from repro.sim.engine import run_offline
from repro.sim.online_engine import OnlineEngine

SEEDS = (3, 11)
NUM_REQUESTS = 150  # saturates the default 20-station network


@pytest.fixture(scope="module")
def offline_totals():
    """Total reward and latency per offline algorithm over SEEDS."""
    totals = {}
    for seed in SEEDS:
        instance = ProblemInstance.build(SimulationConfig(seed=seed))
        for factory in (Appro, Heu, GreedyOffline, OcorpOffline,
                        HeuKktOffline):
            algorithm = factory()
            workload = instance.new_workload(NUM_REQUESTS, seed=seed)
            result = run_offline(algorithm, instance, workload,
                                 seed=seed)
            entry = totals.setdefault(result.algorithm,
                                      {"reward": 0.0, "latency": 0.0})
            entry["reward"] += result.total_reward
            entry["latency"] += result.average_latency_ms()
    return totals


@pytest.fixture(scope="module")
def online_totals():
    """Total reward and latency per online algorithm over SEEDS."""
    totals = {}
    horizon = 80
    for seed in SEEDS:
        instance = ProblemInstance.build(SimulationConfig(seed=seed))
        for factory in (DynamicRR, GreedyOnline, OcorpOnline,
                        HeuKktOnline):
            policy = factory()
            workload = instance.new_workload(200, seed=seed,
                                             horizon_slots=horizon)
            engine = OnlineEngine(instance, workload,
                                  horizon_slots=horizon, rng=seed)
            result = engine.run(policy)
            entry = totals.setdefault(result.algorithm,
                                      {"reward": 0.0, "latency": 0.0})
            entry["reward"] += result.total_reward
            entry["latency"] += result.average_latency_ms()
    return totals


class TestFig3Shapes:
    def test_heu_beats_all_baselines(self, offline_totals):
        heu = offline_totals["Heu"]["reward"]
        for name in ("Greedy", "OCORP", "HeuKKT"):
            assert heu > offline_totals[name]["reward"]

    def test_appro_beats_latency_greedy_baselines(self, offline_totals):
        appro = offline_totals["Appro"]["reward"]
        assert appro > offline_totals["Greedy"]["reward"]
        assert appro > offline_totals["OCORP"]["reward"]

    def test_greedy_is_worst_on_reward(self, offline_totals):
        greedy = offline_totals["Greedy"]["reward"]
        for name in ("Appro", "Heu", "OCORP", "HeuKKT"):
            assert greedy < offline_totals[name]["reward"]

    def test_reward_gap_at_least_paper_magnitude(self, offline_totals):
        """The headline claim: >= 17% higher reward than baselines'
        best latency-greedy competitor."""
        heu = offline_totals["Heu"]["reward"]
        ocorp = offline_totals["OCORP"]["reward"]
        assert heu >= 1.17 * ocorp

    def test_latency_ordering(self, offline_totals):
        """OCORP/Greedy trade reward for latency; HeuKKT pays the
        cloud round trip (Fig. 3(b))."""
        assert (offline_totals["Greedy"]["latency"]
                < offline_totals["Heu"]["latency"])
        assert (offline_totals["OCORP"]["latency"]
                < offline_totals["Heu"]["latency"])
        assert (offline_totals["HeuKKT"]["latency"]
                > offline_totals["Heu"]["latency"])


class TestFig4Shapes:
    def test_dynamic_rr_beats_heukkt_on_reward(self, online_totals):
        assert (online_totals["DynamicRR"]["reward"]
                > online_totals["HeuKKT"]["reward"])

    def test_dynamic_rr_beats_heukkt_on_latency(self, online_totals):
        assert (online_totals["DynamicRR"]["latency"]
                < online_totals["HeuKKT"]["latency"])

    def test_dynamic_rr_beats_local_baselines_on_reward(self,
                                                        online_totals):
        assert (online_totals["DynamicRR"]["reward"]
                > online_totals["Greedy"]["reward"])
        assert (online_totals["DynamicRR"]["reward"]
                > online_totals["OCORP"]["reward"])

    def test_local_baselines_have_lowest_latency(self, online_totals):
        """Fig. 4(b): OCORP and Greedy greedily pick the lowest-latency
        placements."""
        dynamic = online_totals["DynamicRR"]["latency"]
        assert online_totals["Greedy"]["latency"] < dynamic
        assert online_totals["OCORP"]["latency"] < dynamic


class TestRuntimeShape:
    def test_appro_slowest_baselines_fast(self, small_instance):
        """Fig. 3(c): Appro has the highest running time."""
        workload = small_instance.new_workload(25, seed=0)
        appro = run_offline(Appro(), small_instance, workload, seed=0)
        workload = small_instance.new_workload(25, seed=0)
        greedy = run_offline(GreedyOffline(), small_instance, workload,
                             seed=0)
        assert appro.runtime_s > greedy.runtime_s
