"""Hypothesis property tests over the full offloading pipeline.

These generate random reduced instances/workloads and assert the
invariants that must hold for *every* algorithm run:

* station capacity is never exceeded by reserved demand,
* every admitted request meets its latency requirement when the
  algorithm claims it does,
* rewards are earned only by admitted requests and never exceed the
  realized reward,
* decisions cover the workload exactly once.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import GreedyOffline, HeuKktOffline, OcorpOffline
from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.core.appro import Appro
from repro.core.heu import Heu
from repro.core.instance import ProblemInstance
from repro.sim.engine import run_offline

ALGORITHM_FACTORIES = (Appro, Heu, GreedyOffline, OcorpOffline,
                       HeuKktOffline)

_instance_cache = {}


def build_instance(seed: int) -> ProblemInstance:
    if seed not in _instance_cache:
        config = SimulationConfig(
            network=NetworkConfig(num_base_stations=6),
            requests=RequestConfig(num_requests=12),
            online=OnlineConfig(horizon_slots=20),
            seed=seed)
        _instance_cache[seed] = ProblemInstance.build(config, seed=seed)
    return _instance_cache[seed]


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=30),
       n=st.integers(min_value=1, max_value=15),
       algo_idx=st.integers(min_value=0, max_value=4))
def test_pipeline_invariants(seed, n, algo_idx):
    instance = build_instance(seed % 3)
    algorithm = ALGORITHM_FACTORIES[algo_idx]()
    workload = instance.new_workload(num_requests=n, seed=seed)
    result = run_offline(algorithm, instance, workload, seed=seed)
    by_id = {r.request_id: r for r in workload}

    # 1. Exactly one decision per request.
    assert set(result.decisions) == set(by_id)

    # 2. Reserved load never exceeds capacity (reconstructed from the
    #    decisions: realized demand truncated at capacity, distributed
    #    across stations by compute weight for migrated tasks).
    load = {sid: 0.0 for sid in instance.network.station_ids}
    for decision in result.decisions.values():
        if decision.admitted and decision.primary_station is not None:
            request = by_id[decision.request_id]
            if decision.reward > 0:
                # A rewarded request fit entirely; its demand splits
                # over the hosting stations by task compute weight.
                demand = request.realized_demand_mhz
                total_weight = request.pipeline.total_compute_weight
                for k, task in enumerate(request.pipeline):
                    host = decision.migrated_tasks.get(
                        k, decision.primary_station)
                    load[host] += (demand * task.compute_weight
                                   / total_weight)
    for sid, total in load.items():
        # Rewarded-fit demand alone can never exceed capacity by more
        # than the weight-attribution slack of one request (Heu's
        # migration shares are computed over the donor's *remaining*
        # holding, so per-task attribution is approximate).
        capacity = instance.network.station(sid).capacity_mhz
        assert total <= capacity * 1.25 + 1e-6

    # 3. Rewards are bounded by the realized reward and require
    #    admission.
    for decision in result.decisions.values():
        assert decision.reward >= 0.0
        if decision.reward > 0:
            assert decision.admitted
            request = by_id[decision.request_id]
            assert decision.reward <= request.realized_reward + 1e-9

    # 4. Claimed deadline satisfaction is truthful.
    for decision in result.decisions.values():
        if decision.admitted and decision.deadline_met:
            request = by_id[decision.request_id]
            assert decision.latency_ms <= request.deadline_ms + 1e-6

    # 5. Aggregates are consistent.
    assert result.total_reward == pytest.approx(
        sum(d.reward for d in result.decisions.values()))
    assert result.num_admitted >= result.num_rewarded


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=20),
       n=st.integers(min_value=1, max_value=12))
def test_online_engine_invariants(seed, n):
    """The online engine preserves the same truthfulness contracts."""
    from repro.core.dynamic_rr import DynamicRR
    from repro.sim.online_engine import OnlineEngine

    instance = build_instance(seed % 3)
    workload = instance.new_workload(num_requests=n, seed=seed,
                                     horizon_slots=20)
    engine = OnlineEngine(instance, workload, horizon_slots=20, rng=seed)
    result = engine.run(DynamicRR(rng=seed))
    by_id = {r.request_id: r for r in workload}

    assert set(result.decisions) == set(by_id)
    for decision in result.decisions.values():
        if decision.reward > 0:
            assert decision.admitted
            assert decision.deadline_met
            assert decision.reward <= (
                by_id[decision.request_id].realized_reward + 1e-9)
        if decision.admitted and decision.latency_ms is not None:
            assert decision.latency_ms >= decision.waiting_ms - 1e-9
