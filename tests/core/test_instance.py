"""Unit tests for ProblemInstance construction and helpers."""

import pytest

from repro.config import NetworkConfig, SimulationConfig
from repro.core.instance import ProblemInstance
from repro.exceptions import ConfigurationError


class TestBuild:
    def test_build_defaults(self):
        inst = ProblemInstance.build(seed=0)
        assert len(inst.network) == 20
        assert inst.slot_size_mhz == 1000.0
        assert inst.c_unit == 20.0

    def test_deterministic(self):
        a = ProblemInstance.build(seed=5)
        b = ProblemInstance.build(seed=5)
        assert ([s.capacity_mhz for s in a.network]
                == [s.capacity_mhz for s in b.network])

    def test_seed_overrides_config(self):
        cfg = SimulationConfig(seed=1)
        a = ProblemInstance.build(cfg, seed=2)
        b = ProblemInstance.build(SimulationConfig(seed=2))
        assert ([s.capacity_mhz for s in a.network]
                == [s.capacity_mhz for s in b.network])

    def test_invalid_config_rejected(self):
        cfg = SimulationConfig(network=NetworkConfig(num_base_stations=0))
        with pytest.raises(ConfigurationError):
            ProblemInstance.build(cfg)


class TestHelpers:
    def test_slots_of(self, small_instance):
        sid = small_instance.network.station_ids[0]
        slots = small_instance.slots_of(sid)
        assert slots.capacity_mhz == (
            small_instance.network.station(sid).capacity_mhz)
        assert slots.num_slots == small_instance.network.num_slots(sid)

    def test_max_num_slots(self, small_instance):
        expected = max(small_instance.network.num_slots(sid)
                       for sid in small_instance.network.station_ids)
        assert small_instance.max_num_slots() == expected

    def test_new_ledger_empty(self, small_instance):
        ledger = small_instance.new_ledger()
        for sid in small_instance.network.station_ids:
            assert ledger.occupied_mhz(sid) == 0.0


class TestWorkloads:
    def test_batch_workload(self, small_instance):
        workload = small_instance.new_workload(num_requests=10, seed=1)
        assert len(workload) == 10
        assert all(r.arrival_slot == 0 for r in workload)
        small_instance.validate_workload(workload)

    def test_online_workload(self, small_instance):
        workload = small_instance.new_workload(num_requests=10, seed=1,
                                               horizon_slots=30)
        assert all(0 <= r.arrival_slot < 30 for r in workload)

    def test_workload_deterministic(self, small_instance):
        a = small_instance.new_workload(num_requests=5, seed=3)
        b = small_instance.new_workload(num_requests=5, seed=3)
        for ra, rb in zip(a, b):
            assert ra.expected_reward == pytest.approx(rb.expected_reward)
            assert ra.serving_station == rb.serving_station

    def test_validate_workload_rejects_foreign_station(self,
                                                       small_instance):
        workload = small_instance.new_workload(num_requests=1, seed=0)
        workload[0].serving_station = 999
        with pytest.raises(ConfigurationError):
            small_instance.validate_workload(workload)
