"""Focused tests for Heu's multi-step migration machinery."""


from repro.core.appro import Appro
from repro.core.heu import Heu
from repro.sim.engine import run_offline


class TestMigrationLoop:
    def test_migrations_accumulate_under_saturation(self,
                                                    small_instance):
        """The donor-iteration loop performs many migrations at heavy
        load (a single-shot handler would cap out far lower)."""
        algo = Heu()
        workload = small_instance.new_workload(60, seed=0)
        run_offline(algo, small_instance, workload, seed=0)
        assert algo.last_num_migrations >= 5

    def test_heu_admits_more_than_appro_at_saturation(self,
                                                      small_instance):
        """Migrations exist to admit requests Appro rejects."""
        appro_admitted, heu_admitted = 0, 0
        for seed in range(3):
            workload = small_instance.new_workload(60, seed=seed)
            appro_admitted += run_offline(
                Appro(), small_instance, workload, seed=seed).num_admitted
            workload = small_instance.new_workload(60, seed=seed)
            heu_admitted += run_offline(
                Heu(), small_instance, workload, seed=seed).num_admitted
        assert heu_admitted > appro_admitted

    def test_donors_keep_at_least_one_task(self, small_instance):
        """A donor never sheds its whole pipeline."""
        algo = Heu()
        workload = small_instance.new_workload(60, seed=1)
        result = run_offline(algo, small_instance, workload, seed=1)
        by_id = {r.request_id: r for r in workload}
        for decision in result.decisions.values():
            if decision.admitted and decision.migrated_tasks:
                pipeline_len = len(by_id[decision.request_id].pipeline)
                assert len(decision.migrated_tasks) < pipeline_len

    def test_migrated_tasks_on_real_stations(self, small_instance):
        algo = Heu()
        workload = small_instance.new_workload(60, seed=2)
        result = run_offline(algo, small_instance, workload, seed=2)
        stations = set(small_instance.network.station_ids)
        for decision in result.decisions.values():
            for task_idx, host in decision.migrated_tasks.items():
                assert host in stations
                assert host != decision.primary_station or True

    def test_deadlines_survive_many_migrations(self, small_instance):
        """Even with the migration loop, every admitted request still
        meets its latency requirement (Theorem 2)."""
        for seed in range(3):
            workload = small_instance.new_workload(60, seed=seed)
            result = run_offline(Heu(), small_instance, workload,
                                 seed=seed)
            by_id = {r.request_id: r for r in workload}
            for decision in result.decisions.values():
                if decision.admitted:
                    assert decision.latency_ms <= (
                        by_id[decision.request_id].deadline_ms + 1e-6)
