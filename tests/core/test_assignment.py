"""Unit tests for decision/result containers."""

import pytest

from repro.core.assignment import (OffloadDecision, ScheduleResult,
                                   SlotAssignment)
from repro.exceptions import SchedulingError


class TestOffloadDecision:
    def test_rejected_has_no_stations(self):
        decision = OffloadDecision(request_id=1)
        assert not decision.admitted
        assert decision.stations() == []

    def test_stations_dedup_and_order(self):
        decision = OffloadDecision(
            request_id=1, admitted=True, primary_station=3,
            migrated_tasks={0: 5, 1: 3, 2: 5})
        assert decision.stations() == [3, 5]


class TestScheduleResult:
    def make_result(self):
        result = ScheduleResult(algorithm="X")
        result.add(OffloadDecision(request_id=0, admitted=True,
                                   primary_station=1, reward=10.0,
                                   latency_ms=50.0, deadline_met=True))
        result.add(OffloadDecision(request_id=1, admitted=True,
                                   primary_station=2, reward=0.0,
                                   latency_ms=150.0, deadline_met=True))
        result.add(OffloadDecision(request_id=2))
        return result

    def test_aggregates(self):
        result = self.make_result()
        assert len(result) == 3
        assert result.total_reward == pytest.approx(10.0)
        assert result.num_admitted == 2
        assert result.num_rewarded == 1
        assert result.admission_rate == pytest.approx(2 / 3)
        assert result.average_latency_ms() == pytest.approx(100.0)

    def test_latency_excludes_rejected(self):
        result = self.make_result()
        assert len(result.latency_distribution_ms()) == 2

    def test_duplicate_decision_raises(self):
        result = self.make_result()
        with pytest.raises(SchedulingError):
            result.add(OffloadDecision(request_id=0))

    def test_decision_lookup(self):
        result = self.make_result()
        assert result.decision(1).primary_station == 2
        with pytest.raises(SchedulingError):
            result.decision(99)

    def test_empty_result(self):
        result = ScheduleResult(algorithm="X")
        assert result.total_reward == 0.0
        assert result.average_latency_ms() == 0.0
        assert result.admission_rate == 0.0

    def test_summary_keys(self):
        summary = self.make_result().summary()
        assert set(summary) == {"total_reward", "avg_latency_ms",
                                "num_admitted", "num_rewarded",
                                "admission_rate", "runtime_s"}


class TestSlotAssignment:
    def test_fields(self):
        a = SlotAssignment(request_id=1, station_id=2, slot=0)
        assert (a.request_id, a.station_id, a.slot) == (1, 2, 0)
