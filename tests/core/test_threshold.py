"""Unit tests for the R_t selection rule of Algorithm 3."""

import pytest

from repro.core.threshold import (max_parallel_requests,
                                  select_slot_requests)
from repro.exceptions import ConfigurationError
from repro.requests.distributions import RateRewardDistribution
from repro.requests.request import ARRequest
from repro.requests.tasks import standard_ar_pipeline


def make_request(request_id, rate):
    dist = RateRewardDistribution([rate], [1.0], [rate * 13.0])
    return ARRequest(request_id=request_id, serving_station=0,
                     pipeline=standard_ar_pipeline(4),
                     distribution=dist, deadline_ms=200.0)


class TestMaxParallel:
    def test_floor(self):
        assert max_parallel_requests(1000.0, 300.0) == 3

    def test_threshold_above_capacity(self):
        assert max_parallel_requests(100.0, 300.0) == 0

    def test_exact_division(self):
        assert max_parallel_requests(900.0, 300.0) == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            max_parallel_requests(-1.0, 300.0)
        with pytest.raises(ConfigurationError):
            max_parallel_requests(100.0, 0.0)


class TestSelection:
    def test_smallest_expected_rates_first(self):
        pending = [make_request(0, 50.0), make_request(1, 30.0),
                   make_request(2, 40.0)]
        selected = select_slot_requests(pending, 1200.0, 600.0)
        assert [r.request_id for r in selected] == [1, 2]

    def test_zero_budget_selects_nothing(self):
        pending = [make_request(0, 30.0)]
        assert select_slot_requests(pending, 100.0, 600.0) == []

    def test_large_budget_selects_all_sorted(self):
        pending = [make_request(0, 50.0), make_request(1, 30.0)]
        selected = select_slot_requests(pending, 10_000.0, 100.0)
        assert [r.request_id for r in selected] == [1, 0]

    def test_tie_breaks_by_id(self):
        pending = [make_request(5, 30.0), make_request(2, 30.0)]
        selected = select_slot_requests(pending, 10_000.0, 100.0)
        assert [r.request_id for r in selected] == [2, 5]

    def test_empty_pending(self):
        assert select_slot_requests([], 1000.0, 100.0) == []
