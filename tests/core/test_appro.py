"""Unit and behavioural tests for algorithm Appro."""

import pytest

from repro.core.appro import Appro
from repro.core.ilp_rm import solve_ilp_rm
from repro.sim.engine import run_offline


class TestBasics:
    def test_empty_workload(self, small_instance):
        result = run_offline(Appro(), small_instance, [], seed=0)
        assert len(result) == 0
        assert result.total_reward == 0.0

    def test_one_decision_per_request(self, small_instance,
                                      small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        assert len(result) == len(small_workload)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            Appro(max_rounds=0)

    def test_runtime_measured(self, small_instance, small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        assert result.runtime_s > 0.0

    def test_lp_objective_exposed(self, small_instance, small_workload):
        algo = Appro()
        run_offline(algo, small_instance, small_workload, seed=0)
        assert algo.last_lp_objective is not None
        assert algo.last_lp_objective >= 0.0


class TestFeasibility:
    def test_admitted_meet_deadlines(self, small_instance,
                                     small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        by_id = {r.request_id: r for r in small_workload}
        for decision in result.decisions.values():
            if decision.admitted:
                assert decision.deadline_met
                assert decision.latency_ms <= (
                    by_id[decision.request_id].deadline_ms + 1e-9)

    def test_rewarded_subset_of_admitted(self, small_instance,
                                         small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        for decision in result.decisions.values():
            if decision.reward > 0:
                assert decision.admitted

    def test_latency_matches_model(self, small_instance, small_workload):
        result = run_offline(Appro(), small_instance, small_workload,
                             seed=0)
        by_id = {r.request_id: r for r in small_workload}
        for decision in result.decisions.values():
            if decision.admitted:
                expected = small_instance.latency.total_delay_ms(
                    by_id[decision.request_id],
                    decision.primary_station)
                assert decision.latency_ms == pytest.approx(expected)


class TestQuality:
    def test_multi_round_no_worse_than_single(self, small_instance):
        """Repeated rounding only adds reward (on average)."""
        single_total = 0.0
        multi_total = 0.0
        for seed in range(5):
            workload = small_instance.new_workload(num_requests=25,
                                                   seed=seed)
            single = run_offline(Appro(max_rounds=1), small_instance,
                                 workload, seed=seed)
            workload = small_instance.new_workload(num_requests=25,
                                                   seed=seed)
            multi = run_offline(Appro(max_rounds=24), small_instance,
                                workload, seed=seed)
            single_total += single.total_reward
            multi_total += multi.total_reward
        assert multi_total >= single_total

    def test_empirical_ratio_beats_one_eighth(self, small_instance):
        """Theorem 1: expected reward >= Opt / 8.

        Averaged over seeds against the exact ILP-RM optimum on small
        instances (multi-round rounding makes the margin comfortable).
        """
        ratios = []
        for seed in range(4):
            workload = small_instance.new_workload(num_requests=8,
                                                   seed=seed)
            solution, _ = solve_ilp_rm(small_instance, workload)
            workload = small_instance.new_workload(num_requests=8,
                                                   seed=seed)
            result = run_offline(Appro(), small_instance, workload,
                                 seed=seed)
            if solution.objective > 0:
                ratios.append(result.total_reward / solution.objective)
        assert sum(ratios) / len(ratios) >= 1.0 / 8.0

    def test_deterministic_given_seed(self, small_instance):
        a = run_offline(Appro(), small_instance,
                        small_instance.new_workload(20, seed=3), seed=3)
        b = run_offline(Appro(), small_instance,
                        small_instance.new_workload(20, seed=3), seed=3)
        assert a.total_reward == pytest.approx(b.total_reward)
        assert a.num_admitted == b.num_admitted
