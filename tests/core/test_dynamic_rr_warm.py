"""DynamicRR's warm path is observationally identical to the cold one.

The warm machinery (LP-PT workspace + solve cache) is an optimization
only: with it on (the default) and off, a run must produce the same
placements, the same journal byte-for-byte, and the same per-request
records.  Covered across the Figs. 4-6 knobs: the base workload, a
different station count, and a different rate support.
"""

import pytest

from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.core.dynamic_rr import DynamicRR
from repro.core.instance import ProblemInstance
from repro.sim.online_engine import OnlineEngine
from repro.telemetry import Journal, use_journal


def run_pair(instance, requests, horizon):
    """One warm and one cold run; returns both (result, events)."""
    out = []
    for warm in (True, False):
        # Realizations cache per request: reset so both runs draw the
        # same stream (what the executor does between runs).
        for request in requests:
            request.reset_realization()
        journal = Journal()
        with use_journal(journal):
            engine = OnlineEngine(instance, requests,
                                  horizon_slots=horizon, rng=7)
            result = engine.run(DynamicRR(rng=7, warm_start=warm))
        out.append((result, journal.events()))
    return out


def assert_identical(pair):
    (warm_res, warm_events), (cold_res, cold_events) = pair
    assert warm_events == cold_events  # byte-identical journals
    assert warm_res.total_reward == cold_res.total_reward
    warm_decs = warm_res.decisions
    cold_decs = cold_res.decisions
    assert set(warm_decs) == set(cold_decs)
    for rid, warm_dec in warm_decs.items():
        cold_dec = cold_decs[rid]
        assert warm_dec.admitted == cold_dec.admitted
        assert warm_dec.primary_station == cold_dec.primary_station
        assert warm_dec.reward == cold_dec.reward
        assert warm_dec.latency_ms == cold_dec.latency_ms
        assert warm_dec.waiting_ms == cold_dec.waiting_ms


def build(num_stations=8, rate_range=None, seed=1234):
    requests = RequestConfig(num_requests=24)
    if rate_range is not None:
        requests = RequestConfig(num_requests=24,
                                 data_rate_range_mbps=rate_range)
    config = SimulationConfig(
        network=NetworkConfig(num_base_stations=num_stations),
        requests=requests,
        online=OnlineConfig(horizon_slots=30),
        seed=seed,
    ).validate()
    instance = ProblemInstance.build(config, seed=seed)
    workload = instance.new_workload(num_requests=24, seed=seed,
                                     horizon_slots=30)
    return instance, workload


class TestWarmColdEquivalence:
    def test_base_workload(self):
        instance, workload = build()
        assert_identical(run_pair(instance, workload, 30))

    def test_more_stations(self):
        instance, workload = build(num_stations=12)
        assert_identical(run_pair(instance, workload, 30))

    def test_different_rate_support(self):
        instance, workload = build(rate_range=(9.0, 15.0))
        assert_identical(run_pair(instance, workload, 30))

    def test_warm_state_is_fresh_per_run(self):
        """begin() rebuilds the workspace + solve state every run, so
        nothing carries over between replications."""
        instance, workload = build()
        policy = DynamicRR(rng=7)
        OnlineEngine(instance, workload, horizon_slots=30,
                     rng=7).run(policy)
        first_ws, first_state = policy._workspace, policy._solve_state
        assert first_ws is not None and first_ws.rebuilds > 0
        for request in workload:
            request.reset_realization()
        OnlineEngine(instance, workload, horizon_slots=30,
                     rng=7).run(policy)
        assert policy._workspace is not first_ws
        assert policy._solve_state is not first_state
