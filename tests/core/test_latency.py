"""Unit tests for the Eq. (2) latency model."""

import pytest

from repro.config import NetworkConfig
from repro.core.latency import LatencyModel
from repro.exceptions import ConfigurationError
from repro.network.paths import PathTable
from repro.network.topology import generate_topology
from repro.requests.distributions import RateRewardDistribution
from repro.requests.request import ARRequest
from repro.requests.tasks import standard_ar_pipeline


@pytest.fixture(scope="module")
def net():
    return generate_topology(NetworkConfig(num_base_stations=6), rng=2)


@pytest.fixture(scope="module")
def table(net):
    return PathTable(net)


@pytest.fixture(scope="module")
def model(net, table):
    return LatencyModel(net, table, proc_delay_range_ms=(5.0, 15.0), rng=0)


def make_request(serving=0, deadline=200.0, num_tasks=4):
    dist = RateRewardDistribution([30.0, 50.0], [0.7, 0.3],
                                  [450.0, 450.0])
    return ARRequest(request_id=0, serving_station=serving,
                     pipeline=standard_ar_pipeline(num_tasks),
                     distribution=dist, deadline_ms=deadline)


class TestComponents:
    def test_base_delays_in_range(self, net, model):
        for sid in net.station_ids:
            assert 5.0 <= model.station_base_delay_ms(sid) <= 15.0

    def test_unknown_station(self, model):
        with pytest.raises(ConfigurationError):
            model.station_base_delay_ms(99)

    def test_proc_delay_scales_with_weights(self, model):
        req = make_request()
        total = sum(model.task_proc_delay_ms(req, k, 0)
                    for k in range(len(req.pipeline)))
        assert model.proc_delay_ms(req, 0) == pytest.approx(total)

    def test_render_task_heavier(self, model):
        req = make_request()
        assert (model.task_proc_delay_ms(req, 0, 0)
                > model.task_proc_delay_ms(req, 1, 0))

    def test_local_placement_no_transfer(self, model):
        req = make_request(serving=3)
        assert model.transfer_delay_ms(req, 3) == 0.0

    def test_remote_placement_round_trip(self, model, table):
        req = make_request(serving=0)
        assert model.transfer_delay_ms(req, 4) == pytest.approx(
            2.0 * table.one_way_delay_ms(0, 4))

    def test_total_decomposition(self, model):
        req = make_request(serving=0)
        total = model.total_delay_ms(req, 2, waiting_ms=30.0)
        assert total == pytest.approx(
            30.0 + model.transfer_delay_ms(req, 2)
            + model.proc_delay_ms(req, 2))

    def test_negative_waiting_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.total_delay_ms(make_request(), 0, waiting_ms=-1.0)


class TestRestoreBaseDelays:
    def test_restore_refreshes_vectorized_delays(self, net, table):
        """Regression: the deserialization path replaces the drawn base
        delays, and the precomputed delay arrays must follow - a stale
        mirror silently reorders feasible_stations."""
        model = LatencyModel(net, table, rng=0)
        req = make_request(serving=0)
        model.placement_delays(req)  # populate the round-trip cache
        replaced = {sid: 7.5 for sid in net.station_ids}
        model.restore_base_delays(replaced)
        for k, sid in enumerate(net.station_ids):
            assert model.station_base_delay_ms(sid) == 7.5
            assert model.placement_delays(req)[k] == pytest.approx(
                model.placement_delay_ms(req, sid))

    def test_restore_rejects_mismatched_stations(self, net, table):
        model = LatencyModel(net, table, rng=0)
        with pytest.raises(ConfigurationError):
            model.restore_base_delays({0: 7.5})


class TestSplitDelay:
    def test_no_migration_matches_total(self, model):
        req = make_request(serving=0)
        assert model.split_delay_ms(req, 1, {}) == pytest.approx(
            model.total_delay_ms(req, 1))

    def test_migration_adds_round_trip(self, model, table):
        req = make_request(serving=0)
        base = model.split_delay_ms(req, 1, {})
        migrated = model.split_delay_ms(req, 1, {2: 3})
        extra_rt = table.round_trip_delay_ms(1, 3)
        delta_proc = (model.task_proc_delay_ms(req, 2, 3)
                      - model.task_proc_delay_ms(req, 2, 1))
        assert migrated == pytest.approx(base + extra_rt + delta_proc)

    def test_migration_to_primary_is_noop(self, model):
        req = make_request(serving=0)
        assert model.split_delay_ms(req, 1, {0: 1}) == pytest.approx(
            model.split_delay_ms(req, 1, {}))


class TestFeasibility:
    def test_generous_deadline_all_feasible(self, net, model):
        req = make_request(deadline=10_000.0)
        assert model.feasible_stations(req) == sorted(
            net.station_ids,
            key=lambda sid: (model.placement_delay_ms(req, sid), sid))
        assert len(model.feasible_stations(req)) == len(net)

    def test_impossible_deadline_none_feasible(self, model):
        req = make_request(deadline=0.001)
        assert model.feasible_stations(req) == []

    def test_waiting_shrinks_feasible_set(self, model):
        req = make_request(deadline=200.0)
        without = set(model.feasible_stations(req))
        with_wait = set(model.feasible_stations(req, waiting_ms=150.0))
        assert with_wait.issubset(without)

    def test_feasible_sorted_by_delay(self, model):
        req = make_request(deadline=200.0)
        order = model.feasible_stations(req)
        delays = [model.placement_delay_ms(req, sid) for sid in order]
        assert delays == sorted(delays)

    def test_is_feasible_matches_list(self, net, model):
        req = make_request(deadline=120.0)
        listed = set(model.feasible_stations(req))
        for sid in net.station_ids:
            assert model.is_feasible(req, sid) == (sid in listed)

    def test_mismatched_path_table_rejected(self, net):
        other = generate_topology(NetworkConfig(num_base_stations=6),
                                  rng=9)
        table = PathTable(other)
        with pytest.raises(ConfigurationError):
            LatencyModel(net, table)
