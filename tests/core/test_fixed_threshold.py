"""Tests for the fixed-threshold RR comparator."""

import pytest

from repro.core.dynamic_rr import DynamicRR
from repro.core.fixed_threshold import (FixedThresholdRR,
                                        best_fixed_threshold)
from repro.exceptions import ConfigurationError
from repro.sim.online_engine import OnlineEngine


class TestFixedThresholdRR:
    def test_threshold_outside_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedThresholdRR(threshold_mhz=50.0)  # below default 200

    def test_name_carries_threshold(self):
        policy = FixedThresholdRR(threshold_mhz=400.0)
        assert policy.name == "FixedRR(400)"

    def test_never_changes_arm(self, small_instance, online_workload):
        policy = FixedThresholdRR(threshold_mhz=400.0, rng=0)
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        engine.run(policy)
        assert policy.bandit.grid.num_arms == 1
        assert policy.current_threshold_mhz() == pytest.approx(400.0)

    def test_runs_and_earns(self, small_instance, online_workload):
        policy = FixedThresholdRR(threshold_mhz=300.0, rng=0)
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(policy)
        assert result.total_reward > 0.0
        assert len(result) == len(online_workload)


class TestBestFixedThreshold:
    def test_sweep_returns_max(self, small_instance):
        def workload():
            return small_instance.new_workload(25, seed=3,
                                               horizon_slots=40)

        best, best_reward, rewards = best_fixed_threshold(
            small_instance, workload, (200.0, 600.0, 1000.0),
            horizon_slots=40, rng_seed=3)
        assert best in rewards
        assert best_reward == max(rewards.values())
        assert len(rewards) == 3

    def test_empty_thresholds_rejected(self, small_instance):
        with pytest.raises(ConfigurationError):
            best_fixed_threshold(small_instance, lambda: [], (),
                                 horizon_slots=10)

    def test_dynamic_rr_near_best_fixed(self, small_instance):
        """The learning policy lands close to the best constant."""
        seed = 5

        def workload():
            return small_instance.new_workload(30, seed=seed,
                                               horizon_slots=40)

        _best, best_reward, _rewards = best_fixed_threshold(
            small_instance, workload, (200.0, 500.0, 800.0),
            horizon_slots=40, rng_seed=seed)
        engine = OnlineEngine(small_instance, workload(),
                              horizon_slots=40, rng=seed)
        dynamic = engine.run(DynamicRR(rng=seed)).total_reward
        assert dynamic >= 0.6 * best_reward
