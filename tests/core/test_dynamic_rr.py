"""Unit and behavioural tests for the DynamicRR online policy."""

import pytest

from repro.config import OnlineConfig
from repro.core.dynamic_rr import DynamicRR
from repro.sim.online_engine import OnlineEngine


def run_dynamic(instance, workload, horizon=40, seed=0, **kwargs):
    policy = DynamicRR(rng=seed, **kwargs)
    engine = OnlineEngine(instance, workload, horizon_slots=horizon,
                          rng=seed)
    result = engine.run(policy)
    return policy, result


class TestBasics:
    def test_runs_and_covers_all_requests(self, small_instance,
                                          online_workload):
        _policy, result = run_dynamic(small_instance, online_workload)
        assert len(result) == len(online_workload)
        assert result.algorithm == "DynamicRR"

    def test_empty_workload(self, small_instance):
        _policy, result = run_dynamic(small_instance, [])
        assert len(result) == 0

    def test_bandit_initialized_from_config(self, small_instance,
                                            online_workload):
        config = OnlineConfig(num_arms=5,
                              threshold_range_mhz=(100.0, 500.0))
        policy, _ = run_dynamic(small_instance, online_workload,
                                online_config=config)
        assert policy.bandit is not None
        assert policy.bandit.grid.num_arms == 5
        assert policy.bandit.grid.interval == (100.0, 500.0)

    def test_current_threshold_in_range(self, small_instance,
                                        online_workload):
        policy, _ = run_dynamic(small_instance, online_workload)
        threshold = policy.current_threshold_mhz()
        lo, hi = policy.config.threshold_range_mhz
        assert lo <= threshold <= hi

    def test_threshold_none_before_run(self):
        assert DynamicRR().current_threshold_mhz() is None


class TestBehaviour:
    def test_admitted_requests_get_decisions_with_latency(
            self, small_instance, online_workload):
        _policy, result = run_dynamic(small_instance, online_workload)
        for decision in result.decisions.values():
            if decision.admitted and decision.primary_station is not None:
                assert decision.latency_ms is not None
                assert decision.latency_ms >= 0.0

    def test_rewarded_only_if_deadline_met(self, small_instance,
                                           online_workload):
        _policy, result = run_dynamic(small_instance, online_workload)
        for decision in result.decisions.values():
            if decision.reward > 0:
                assert decision.deadline_met

    def test_tracker_records_plays(self, small_instance,
                                   online_workload):
        policy, _ = run_dynamic(small_instance, online_workload)
        assert policy.tracker.num_steps > 0

    def test_deterministic_given_seed(self, small_instance):
        a_wl = small_instance.new_workload(20, seed=2, horizon_slots=40)
        _p, a = run_dynamic(small_instance, a_wl, seed=2)
        b_wl = small_instance.new_workload(20, seed=2, horizon_slots=40)
        _p, b = run_dynamic(small_instance, b_wl, seed=2)
        assert a.total_reward == pytest.approx(b.total_reward)

    def test_earns_reward_under_load(self, small_instance):
        workload = small_instance.new_workload(30, seed=5,
                                               horizon_slots=40)
        _policy, result = run_dynamic(small_instance, workload, seed=5)
        assert result.total_reward > 0.0
        assert result.num_admitted > 0
