"""Unit tests for the exact ILP-RM formulation."""


from repro.core.ilp_rm import build_ilp_rm, solve_ilp_rm
from repro.solver.interface import solve_lp


class TestFormulation:
    def test_variables_binary(self, small_instance, tiny_workload):
        ilp, index = build_ilp_rm(small_instance, tiny_workload)
        assert ilp.has_integers
        for var in ilp.variables:
            assert var.integer
            assert var.low == 0.0 and var.high == 1.0

    def test_constraint_names(self, small_instance, tiny_workload):
        ilp, _ = build_ilp_rm(small_instance, tiny_workload)
        names = {c.name for c in ilp.constraints}
        assert any(n.startswith("assign_") for n in names)
        assert any(n.startswith("capacity_") for n in names)


class TestSolve:
    def test_assignment_decoded(self, small_instance, tiny_workload):
        solution, assignment = solve_ilp_rm(small_instance, tiny_workload)
        station_ids = set(small_instance.network.station_ids)
        for rid, sid in assignment.items():
            assert sid in station_ids
        # Each assigned request appears once.
        assert len(assignment) <= len(tiny_workload)

    def test_respects_capacity_in_expectation(self, small_instance,
                                              tiny_workload):
        _solution, assignment = solve_ilp_rm(small_instance,
                                             tiny_workload)
        by_id = {r.request_id: r for r in tiny_workload}
        load = {}
        for rid, sid in assignment.items():
            load[sid] = load.get(sid, 0.0) + by_id[rid].expected_demand_mhz
        for sid, total in load.items():
            assert total <= (
                small_instance.network.station(sid).capacity_mhz + 1e-6)

    def test_respects_deadlines(self, small_instance, tiny_workload):
        _solution, assignment = solve_ilp_rm(small_instance,
                                             tiny_workload)
        by_id = {r.request_id: r for r in tiny_workload}
        for rid, sid in assignment.items():
            assert small_instance.latency.is_feasible(by_id[rid], sid)

    def test_exact_dominates_lp_rounding_bound(self, small_instance,
                                               tiny_workload):
        """Lemma 1 direction check on the *same* objective scale.

        The ILP optimum is a lower bound on the slot-LP optimum
        restricted to the same ER truncation, because the slot LP is a
        relaxation of the slotted integral problem whose slot-0-only
        solutions embed ILP-RM solutions.
        """
        from repro.core.lp_relaxation import build_lp_relaxation

        solution, _ = solve_ilp_rm(small_instance, tiny_workload)
        lp, _ = build_lp_relaxation(small_instance, tiny_workload)
        lp_opt = solve_lp(lp).objective
        assert lp_opt >= solution.objective - 1e-6

    def test_small_instance_all_admitted_when_capacity_ample(
            self, small_instance, tiny_workload):
        """Six requests on eight stations: everything placeable fits."""
        _solution, assignment = solve_ilp_rm(small_instance,
                                             tiny_workload)
        placeable = [r for r in tiny_workload
                     if small_instance.latency.feasible_stations(r)]
        assert len(assignment) == len(placeable)

    def test_empty_workload(self, small_instance):
        ilp, index = build_ilp_rm(small_instance, [])
        assert ilp.num_variables == 0
        assert index == {}
