"""Tests for DynamicRR's pluggable bandit policy and waiting metrics."""

import pytest

from repro.bandits.ucb import UCB1
from repro.core.dynamic_rr import DynamicRR
from repro.sim.online_engine import OnlineEngine


def run_policy(instance, workload, policy):
    engine = OnlineEngine(instance, workload, horizon_slots=40, rng=0)
    return engine.run(policy)


class TestBanditPolicyKnob:
    def test_invalid_policy_name(self):
        with pytest.raises(ValueError):
            DynamicRR(bandit_policy="thompson")

    def test_ucb1_variant_runs(self, small_instance, online_workload):
        policy = DynamicRR(bandit_policy="ucb1", rng=0)
        result = run_policy(small_instance, online_workload, policy)
        assert isinstance(policy.bandit.policy, UCB1)
        assert len(result) == len(online_workload)
        assert result.total_reward > 0.0

    def test_se_is_default(self, small_instance, online_workload):
        policy = DynamicRR(rng=0)
        run_policy(small_instance, online_workload, policy)
        from repro.bandits.successive_elimination import \
            SuccessiveElimination
        assert isinstance(policy.bandit.policy, SuccessiveElimination)

    def test_variants_comparable(self, small_instance):
        """Both learners reach the same ballpark on the same arrivals."""
        totals = {}
        for name in ("se", "ucb1"):
            workload = small_instance.new_workload(25, seed=4,
                                                   horizon_slots=40)
            policy = DynamicRR(bandit_policy=name, rng=4)
            totals[name] = run_policy(small_instance, workload,
                                      policy).total_reward
        assert totals["ucb1"] >= 0.5 * totals["se"]
        assert totals["se"] >= 0.5 * totals["ucb1"]


class TestWaitingMetrics:
    def test_waiting_distribution_covers_all_requests(
            self, small_instance, online_workload):
        policy = DynamicRR(rng=0)
        result = run_policy(small_instance, online_workload, policy)
        waits = result.waiting_distribution_ms()
        assert len(waits) == len(online_workload)
        assert waits == sorted(waits)
        assert all(w >= 0 for w in waits)

    def test_average_and_max_consistent(self, small_instance,
                                        online_workload):
        policy = DynamicRR(rng=0)
        result = run_policy(small_instance, online_workload, policy)
        assert (result.average_waiting_ms()
                <= result.max_waiting_ms() + 1e-9)

    def test_empty_result_waiting(self):
        from repro.core.assignment import ScheduleResult

        result = ScheduleResult("X")
        assert result.waiting_distribution_ms() == []
        assert result.average_waiting_ms() == 0.0
        assert result.max_waiting_ms() == 0.0

    def test_immediate_baseline_waits_less_than_capped_dynamic(
            self, small_instance):
        """Greedy starts placeable requests instantly; its *admitted*
        waits should be tiny."""
        from repro.baselines.greedy import GreedyOnline

        workload = small_instance.new_workload(15, seed=6,
                                               horizon_slots=40)
        result = run_policy(small_instance, workload, GreedyOnline())
        admitted_waits = [d.waiting_ms
                          for d in result.decisions.values()
                          if d.admitted]
        if admitted_waits:
            assert min(admitted_waits) == 0.0
