"""Incremental LP-PT builds are byte-identical to from-scratch ones.

`LpPtWorkspace` has three paths - full rebuild, in-place fair-share
row patch, and whole-model reuse - and every one must produce a model
whose :meth:`content_key` equals the model a cold `build_lp_pt` would
produce for the same inputs.  DynamicRR's journal byte-identity rests
on this.
"""

import pytest

from repro.core.lp_relaxation import LpPtWorkspace, build_lp_pt
from repro.solver.interface import WarmStartState, solve_lp


@pytest.fixture()
def pt_inputs(small_instance, small_workload):
    requests = small_workload[:8]
    waiting = {r.request_id: 5.0 * (i % 3)
               for i, r in enumerate(requests)}
    return small_instance, requests, waiting


def cold_key(instance, requests, waiting, count=None):
    lp, _ = build_lp_pt(instance, requests, waiting,
                        fair_share_count=count)
    return lp.content_key()


class TestRebuild:
    def test_first_build_is_a_rebuild(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        lp, index = build_lp_pt(instance, requests, waiting,
                                workspace=ws)
        assert ws.last_mode == "rebuild"
        assert ws.rebuilds == 1
        assert lp.content_key() == cold_key(instance, requests, waiting)
        assert set(index.by_request) == {r.request_id for r in requests}

    def test_changed_request_set_rebuilds(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        build_lp_pt(instance, requests, waiting, workspace=ws)
        subset = requests[:5]
        lp, _ = build_lp_pt(instance, subset, waiting, workspace=ws)
        assert ws.last_mode == "rebuild"
        assert ws.rebuilds == 2
        assert lp.content_key() == cold_key(instance, subset, waiting)

    def test_changed_waiting_rebuilds_when_columns_move(self, pt_inputs):
        instance, requests, _ = pt_inputs
        ws = LpPtWorkspace()
        build_lp_pt(instance, requests, {}, workspace=ws)
        # Huge waiting kills most stations' feasibility -> new columns.
        waiting = {r.request_id: 1e6 for r in requests}
        lp, _ = build_lp_pt(instance, requests, waiting, workspace=ws)
        assert ws.last_mode == "rebuild"
        assert lp.content_key() == cold_key(instance, requests, waiting)


class TestReuse:
    def test_identical_round_reuses_model(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        lp1, _ = build_lp_pt(instance, requests, waiting, workspace=ws)
        lp2, _ = build_lp_pt(instance, requests, waiting, workspace=ws)
        assert lp2 is lp1  # same object -> warm solve cache can hit
        assert ws.last_mode == "reuse"
        assert ws.reuses == 1

    def test_reused_model_hits_solve_cache(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        state = WarmStartState()
        lp1, _ = build_lp_pt(instance, requests, waiting, workspace=ws)
        first = solve_lp(lp1, warm_start=state)
        lp2, _ = build_lp_pt(instance, requests, waiting, workspace=ws)
        again = solve_lp(lp2, warm_start=state)
        assert state.hits == 1
        assert again.values == first.values


class TestRowUpdate:
    def test_fair_share_patch_matches_cold_build(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        build_lp_pt(instance, requests, waiting, workspace=ws,
                    fair_share_count=len(requests))
        lp, _ = build_lp_pt(instance, requests, waiting, workspace=ws,
                            fair_share_count=2 * len(requests))
        assert ws.last_mode == "row_update"
        assert ws.row_updates == 1
        assert lp.content_key() == cold_key(instance, requests, waiting,
                                            count=2 * len(requests))

    def test_patch_round_trip(self, pt_inputs):
        """count A -> B -> A ends byte-identical to a cold count-A."""
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        lp, _ = build_lp_pt(instance, requests, waiting, workspace=ws,
                            fair_share_count=4)
        key_a = lp.content_key()
        build_lp_pt(instance, requests, waiting, workspace=ws,
                    fair_share_count=64)
        lp, _ = build_lp_pt(instance, requests, waiting, workspace=ws,
                            fair_share_count=4)
        assert lp.content_key() == key_a
        assert key_a == cold_key(instance, requests, waiting, count=4)

    def test_solutions_agree_after_patch(self, pt_inputs):
        instance, requests, waiting = pt_inputs
        ws = LpPtWorkspace()
        build_lp_pt(instance, requests, waiting, workspace=ws,
                    fair_share_count=3)
        patched, _ = build_lp_pt(instance, requests, waiting,
                                 workspace=ws, fair_share_count=9)
        cold, _ = build_lp_pt(instance, requests, waiting,
                              fair_share_count=9)
        warm_sol = solve_lp(patched)
        cold_sol = solve_lp(cold)
        assert warm_sol.objective == cold_sol.objective
        assert warm_sol.values == cold_sol.values
