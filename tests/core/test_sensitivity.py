"""Tests for capacity sensitivity analysis."""

import pytest

from repro.core.sensitivity import (bottleneck_stations,
                                    capacity_value_per_station,
                                    expansion_gain_estimate)


class TestCapacityValues:
    def test_one_value_per_station_sorted(self, small_instance):
        workload = small_instance.new_workload(50, seed=0)
        values = capacity_value_per_station(small_instance, workload)
        assert len(values) == len(small_instance.network)
        prices = [v.shadow_price for v in values]
        assert prices == sorted(prices, reverse=True)

    def test_saturated_network_has_positive_prices(self,
                                                   small_instance):
        """With twice the capacity's worth of requests, capacity rows
        bind somewhere and carry positive shadow prices."""
        workload = small_instance.new_workload(60, seed=1)
        values = capacity_value_per_station(small_instance, workload)
        assert any(v.shadow_price > 0 for v in values)
        assert any(v.utilization_bound for v in values)

    def test_underloaded_network_prices_zero(self, small_instance):
        """Three requests on eight stations: no capacity row binds."""
        workload = small_instance.new_workload(3, seed=2)
        values = capacity_value_per_station(small_instance, workload)
        assert all(v.shadow_price == pytest.approx(0.0, abs=1e-6)
                   for v in values)

    def test_empty_workload(self, small_instance):
        values = capacity_value_per_station(small_instance, [])
        assert all(v.shadow_price == 0.0 for v in values)
        assert len(values) == len(small_instance.network)


class TestPlanningHelpers:
    def test_bottlenecks_subset_of_positive(self, small_instance):
        workload = small_instance.new_workload(60, seed=1)
        tops = bottleneck_stations(small_instance, workload, top_k=3)
        assert len(tops) <= 3
        ranked = {v.station_id: v for v in capacity_value_per_station(
            small_instance, workload)}
        for sid in tops:
            assert ranked[sid].shadow_price > 0

    def test_expansion_gain_scales_linearly(self, small_instance):
        workload = small_instance.new_workload(60, seed=1)
        tops = bottleneck_stations(small_instance, workload, top_k=1)
        if tops:
            sid = tops[0]
            g1 = expansion_gain_estimate(small_instance, workload, sid,
                                         extra_mhz=100.0)
            g2 = expansion_gain_estimate(small_instance, workload, sid,
                                         extra_mhz=200.0)
            assert g2 == pytest.approx(2.0 * g1)
            assert g1 > 0.0

    def test_gain_zero_at_unbound_station(self, small_instance):
        workload = small_instance.new_workload(3, seed=2)
        sid = small_instance.network.station_ids[0]
        gain = expansion_gain_estimate(small_instance, workload, sid,
                                       extra_mhz=500.0)
        assert gain == pytest.approx(0.0, abs=1e-6)
