"""Tests for the clairvoyant offline bound."""

import pytest

from repro.core.clairvoyant import (ClairvoyantResult, clairvoyant_bound,
                                    competitive_ratio)
from repro.core.dynamic_rr import DynamicRR
from repro.exceptions import ConfigurationError
from repro.sim.online_engine import OnlineEngine


class TestBound:
    def test_bound_fields(self, small_instance, online_workload):
        bound = clairvoyant_bound(small_instance, online_workload,
                                  horizon_slots=40, rng=0)
        assert bound.upper_bound >= 0.0
        assert 0 <= bound.num_servable <= len(online_workload)
        assert 0.0 <= bound.peak_utilization <= 1.0 + 1e-9

    def test_validation(self, small_instance, online_workload):
        with pytest.raises(ConfigurationError):
            clairvoyant_bound(small_instance, online_workload,
                              horizon_slots=0)

    def test_bound_dominates_online_policy(self, small_instance):
        """The clairvoyant bound must exceed what DynamicRR achieves
        on the same arrivals and realizations."""
        for seed in (1, 2):
            workload = small_instance.new_workload(
                25, seed=seed, horizon_slots=40)
            engine = OnlineEngine(small_instance, workload,
                                  horizon_slots=40, rng=seed)
            result = engine.run(DynamicRR(rng=seed))
            # Same (already realized) workload feeds the bound.
            bound = clairvoyant_bound(small_instance, workload,
                                      horizon_slots=40, rng=seed)
            assert bound.upper_bound >= result.total_reward * 0.999

    def test_empty_workload(self, small_instance):
        bound = clairvoyant_bound(small_instance, [], horizon_slots=10)
        assert bound.upper_bound == 0.0
        assert bound.num_servable == 0

    def test_arrivals_beyond_horizon_ignored(self, small_instance):
        workload = small_instance.new_workload(5, seed=0,
                                               horizon_slots=40)
        full = clairvoyant_bound(small_instance, workload,
                                 horizon_slots=40, rng=0)
        # Same requests, but with a 1-slot horizon only slot-0 arrivals
        # can count.
        for request in workload:
            request.reset_realization()
        tiny = clairvoyant_bound(small_instance, workload,
                                 horizon_slots=1, rng=0)
        assert tiny.upper_bound <= full.upper_bound + 1e-9


class TestCompetitiveRatio:
    def test_basic(self):
        bound = ClairvoyantResult(upper_bound=100.0, num_servable=10,
                                  peak_utilization=0.9)
        assert competitive_ratio(80.0, bound) == pytest.approx(0.8)

    def test_zero_bound(self):
        bound = ClairvoyantResult(upper_bound=0.0, num_servable=0,
                                  peak_utilization=0.0)
        assert competitive_ratio(0.0, bound) == 1.0

    def test_negative_reward_rejected(self):
        bound = ClairvoyantResult(upper_bound=10.0, num_servable=1,
                                  peak_utilization=0.1)
        with pytest.raises(ConfigurationError):
            competitive_ratio(-1.0, bound)
