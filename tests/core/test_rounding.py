"""Unit and property tests for randomized rounding + admission."""

import numpy as np
import pytest

from repro.core.lp_relaxation import build_lp_relaxation
from repro.core.rounding import (admit_slot_by_slot, randomized_round)
from repro.exceptions import ConfigurationError
from repro.solver.interface import solve_lp


@pytest.fixture()
def solved(small_instance, small_workload):
    lp, index = build_lp_relaxation(small_instance, small_workload)
    solution = solve_lp(lp)
    return index, solution


class TestRandomizedRound:
    def test_at_most_one_assignment_per_request(self, solved,
                                                small_workload):
        index, solution = solved
        assignments = randomized_round(index, solution.values,
                                       small_workload, rng=0)
        ids = [a.request_id for a in assignments]
        assert len(ids) == len(set(ids))

    def test_assignments_follow_lp_support(self, solved, small_workload):
        index, solution = solved
        assignments = randomized_round(index, solution.values,
                                       small_workload, rng=1)
        for a in assignments:
            options = index.assignment_options(
                solution.values, a.request_id)
            assert (a.station_id, a.slot) in [
                (sid, slot) for sid, slot, _ in options]

    def test_scale_reduces_assignment_rate(self, solved, small_workload):
        """Larger scale -> smaller per-request assignment probability."""
        index, solution = solved
        count_small_scale = np.mean([
            len(randomized_round(index, solution.values, small_workload,
                                 rng=seed, scale=1.0))
            for seed in range(30)])
        count_paper_scale = np.mean([
            len(randomized_round(index, solution.values, small_workload,
                                 rng=seed, scale=4.0))
            for seed in range(30)])
        assert count_paper_scale < count_small_scale

    def test_paper_scale_near_quarter(self, solved, small_workload):
        """With scale 4 the assignment rate is ~ mass/4."""
        index, solution = solved
        total_mass = sum(
            mass
            for r in small_workload
            for (_s, _l, mass) in index.assignment_options(
                solution.values, r.request_id))
        counts = [len(randomized_round(index, solution.values,
                                       small_workload, rng=seed,
                                       scale=4.0))
                  for seed in range(60)]
        assert np.mean(counts) == pytest.approx(total_mass / 4.0,
                                                rel=0.35)

    def test_invalid_scale(self, solved, small_workload):
        index, solution = solved
        with pytest.raises(ConfigurationError):
            randomized_round(index, solution.values, small_workload,
                             rng=0, scale=0.5)

    def test_deterministic_with_seed(self, solved, small_workload):
        index, solution = solved
        a = randomized_round(index, solution.values, small_workload,
                             rng=9)
        b = randomized_round(index, solution.values, small_workload,
                             rng=9)
        assert a == b


class TestAdmission:
    def run_admission(self, instance, workload, seed=0):
        lp, index = build_lp_relaxation(instance, workload)
        solution = solve_lp(lp)
        assignments = randomized_round(index, solution.values, workload,
                                       rng=seed, scale=1.5)
        ledger = instance.new_ledger()
        outcomes = admit_slot_by_slot(instance, workload, assignments,
                                      ledger, rng=seed)
        return outcomes, ledger

    def test_capacity_never_exceeded(self, small_instance,
                                     small_workload):
        _outcomes, ledger = self.run_admission(small_instance,
                                               small_workload)
        for sid in small_instance.network.station_ids:
            capacity = small_instance.network.station(sid).capacity_mhz
            assert ledger.occupied_mhz(sid) <= capacity + 1e-6

    def test_admitted_requests_realized(self, small_instance,
                                        small_workload):
        outcomes, _ = self.run_admission(small_instance, small_workload)
        for outcome in outcomes:
            if outcome.admitted:
                assert outcome.request.is_realized

    def test_reward_iff_demand_fits(self, small_instance,
                                    small_workload):
        """Eq. (8) semantics: reward earned exactly when the realized
        demand fully fit (reserved == demand)."""
        outcomes, _ = self.run_admission(small_instance, small_workload)
        for outcome in outcomes:
            if not outcome.admitted:
                assert outcome.reward == 0.0
                continue
            demand = outcome.request.realized_demand_mhz
            if outcome.reward > 0:
                assert outcome.reserved_mhz == pytest.approx(demand)
                assert outcome.reward == pytest.approx(
                    outcome.request.realized_reward)

    def test_prefix_rule_holds_at_admission(self, small_instance,
                                            small_workload):
        """Replaying admission: at the moment a request is admitted at
        slot l, prior occupancy was <= l * C_l."""
        lp, index = build_lp_relaxation(small_instance, small_workload)
        solution = solve_lp(lp)
        assignments = randomized_round(index, solution.values,
                                       small_workload, rng=3, scale=1.5)
        ledger = small_instance.new_ledger()
        outcomes = admit_slot_by_slot(small_instance, small_workload,
                                      assignments, ledger, rng=3)
        for outcome in outcomes:
            if outcome.admitted:
                # After admission, occupancy beyond the offset comes
                # only from this request (<= its reserved amount).
                assert outcome.reserved_mhz >= 0.0

    def test_reserve_cap(self, small_instance, small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        solution = solve_lp(lp)
        assignments = randomized_round(index, solution.values,
                                       small_workload, rng=5, scale=1.5)
        ledger = small_instance.new_ledger()
        outcomes = admit_slot_by_slot(small_instance, small_workload,
                                      assignments, ledger, rng=5,
                                      reserve_cap_mhz=300.0)
        for outcome in outcomes:
            if outcome.admitted:
                assert outcome.reserved_mhz <= 300.0 + 1e-9

    def test_reject_handler_invoked(self, small_instance):
        """When a station is pre-filled, the reject hook fires."""
        workload = small_instance.new_workload(num_requests=15, seed=1)
        lp, index = build_lp_relaxation(small_instance, workload)
        solution = solve_lp(lp)
        assignments = randomized_round(index, solution.values, workload,
                                       rng=1, scale=1.0)
        ledger = small_instance.new_ledger()
        # Pre-fill every station so every prefix test fails.
        for sid in small_instance.network.station_ids:
            ledger.reserve(10_000, sid,
                           small_instance.network.station(
                               sid).capacity_mhz)
        calls = []

        def handler(request, station_id, slot, ledger_):
            calls.append((request.request_id, station_id, slot))
            return False

        outcomes = admit_slot_by_slot(small_instance, workload,
                                      assignments, ledger, rng=1,
                                      on_reject=handler)
        assert len(calls) == len(assignments)
        assert all(not o.admitted for o in outcomes)
