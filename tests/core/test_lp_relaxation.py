"""Unit tests for the slot-indexed LP relaxation (Eqs. 8-12, 22-23)."""

import pytest

from repro.core.lp_relaxation import (build_lp_pt, build_lp_relaxation,
                                      expected_reward_coefficient)
from repro.solver.interface import solve_lp


class TestVariablesAndPruning:
    def test_variable_count_bounded_by_slots(self, small_instance,
                                             small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        max_slots = small_instance.max_num_slots()
        n_stations = len(small_instance.network)
        assert lp.num_variables <= (len(small_workload) * n_stations
                                    * max_slots)
        assert len(index.triples) == lp.num_variables

    def test_deadline_pruning(self, small_instance, small_workload):
        """Variables only exist for deadline-feasible (j, i) pairs."""
        lp, index = build_lp_relaxation(small_instance, small_workload)
        by_id = {r.request_id: r for r in small_workload}
        for name, (rid, sid, _slot) in index.triples.items():
            request = by_id[rid]
            assert small_instance.latency.is_feasible(request, sid)

    def test_waiting_prunes_more(self, small_instance, small_workload):
        lp0, _ = build_lp_relaxation(small_instance, small_workload)
        waiting = {r.request_id: 150.0 for r in small_workload}
        lp1, _ = build_lp_relaxation(small_instance, small_workload,
                                     waiting_ms=waiting)
        assert lp1.num_variables <= lp0.num_variables


class TestErCoefficients:
    def test_er_decreases_with_slot_when_binding(self, small_instance,
                                                 small_workload):
        """Eq. (8): deeper slots can only lose reward mass."""
        request = small_workload[0]
        for sid in small_instance.network.station_ids:
            num_slots = small_instance.network.num_slots(sid)
            ers = [expected_reward_coefficient(small_instance, request,
                                               sid, slot)
                   for slot in range(num_slots)]
            assert all(b <= a + 1e-9 for a, b in zip(ers, ers[1:]))

    def test_er_at_slot_zero_full_when_station_big_enough(
            self, small_instance, small_workload):
        request = small_workload[0]
        sid = small_instance.network.station_ids[0]
        capacity = small_instance.network.station(sid).capacity_mhz
        if request.max_demand_mhz <= capacity:
            er = expected_reward_coefficient(small_instance, request,
                                             sid, 0)
            assert er == pytest.approx(
                request.distribution.expected_reward())

    def test_objective_uses_er(self, small_instance, small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        by_id = {r.request_id: r for r in small_workload}
        for name, (rid, sid, slot) in index.triples.items():
            var = lp.variable(name)
            expected = expected_reward_coefficient(
                small_instance, by_id[rid], sid, slot)
            assert var.objective == pytest.approx(expected)


class TestConstraints:
    def test_choice_constraint_present_per_request(self, small_instance,
                                                   small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        names = {c.name for c in lp.constraints}
        for request in small_workload:
            if index.by_request.get(request.request_id):
                assert f"choice_{request.request_id}" in names

    def test_solution_satisfies_choice(self, small_instance,
                                       small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        solution = solve_lp(lp)
        for request in small_workload:
            mass = sum(solution.value(name)
                       for name in index.by_request.get(
                           request.request_id, ()))
            assert mass <= 1.0 + 1e-6

    def test_lp_objective_bounded_by_total_expected_reward(
            self, small_instance, small_workload):
        lp, _ = build_lp_relaxation(small_instance, small_workload)
        solution = solve_lp(lp)
        upper = sum(r.distribution.expected_reward()
                    for r in small_workload)
        assert solution.objective <= upper + 1e-6

    def test_capacity_row_binds_under_overload(self, small_instance):
        """With far more requests than capacity, per-station expected
        load stays within the station capacity row."""
        workload = small_instance.new_workload(num_requests=60, seed=2)
        lp, index = build_lp_relaxation(small_instance, workload)
        solution = solve_lp(lp)
        by_id = {r.request_id: r for r in workload}
        for sid in small_instance.network.station_ids:
            cap_rate = (small_instance.network.station(sid).capacity_mhz
                        / small_instance.c_unit)
            load = 0.0
            for name, (rid, vsid, _slot) in index.triples.items():
                if vsid == sid:
                    req = by_id[rid]
                    load += (solution.value(name)
                             * req.distribution.expected_truncated_rate(
                                 cap_rate))
            assert load <= cap_rate + 1e-6


class TestLpPt:
    def test_lp_pt_tighter_than_lp(self, small_instance, small_workload):
        """Constraint (23)'s fair-share truncation can only reduce the
        optimum relative to the plain LP on the same workload."""
        lp, _ = build_lp_relaxation(small_instance, small_workload)
        lp_pt, _ = build_lp_pt(small_instance, small_workload)
        a = solve_lp(lp).objective
        b = solve_lp(lp_pt).objective
        assert b <= a + 1e-6

    def test_lp_pt_empty_workload(self, small_instance):
        lp, index = build_lp_pt(small_instance, [])
        assert lp.num_variables == 0
        assert index.by_request == {}


class TestIndex:
    def test_assignment_options_roundtrip(self, small_instance,
                                          small_workload):
        lp, index = build_lp_relaxation(small_instance, small_workload)
        solution = solve_lp(lp)
        for request in small_workload:
            options = index.assignment_options(solution.values,
                                               request.request_id)
            for sid, slot, mass in options:
                assert mass > 0
                assert slot < small_instance.network.num_slots(sid)
