"""Unit and behavioural tests for algorithm Heu."""

import pytest

from repro.core.appro import Appro
from repro.core.heu import Heu
from repro.sim.engine import run_offline


class TestBasics:
    def test_empty_workload(self, small_instance):
        result = run_offline(Heu(), small_instance, [], seed=0)
        assert len(result) == 0

    def test_one_decision_per_request(self, small_instance,
                                      small_workload):
        result = run_offline(Heu(), small_instance, small_workload,
                             seed=0)
        assert len(result) == len(small_workload)

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            Heu(max_rounds=0)


class TestFeasibility:
    def test_admitted_meet_deadlines_even_with_migrations(
            self, small_instance):
        """Theorem 2: Heu's migrations never violate donor deadlines."""
        for seed in range(3):
            workload = small_instance.new_workload(num_requests=30,
                                                   seed=seed)
            result = run_offline(Heu(), small_instance, workload,
                                 seed=seed)
            by_id = {r.request_id: r for r in workload}
            for decision in result.decisions.values():
                if decision.admitted:
                    assert decision.latency_ms <= (
                        by_id[decision.request_id].deadline_ms + 1e-6)

    def test_migrated_latency_recomputed(self, small_instance):
        """A request with migrated tasks carries the split latency."""
        found_migration = False
        for seed in range(6):
            workload = small_instance.new_workload(num_requests=35,
                                                   seed=seed)
            result = run_offline(Heu(), small_instance, workload,
                                 seed=seed)
            by_id = {r.request_id: r for r in workload}
            for decision in result.decisions.values():
                if decision.admitted and decision.migrated_tasks:
                    found_migration = True
                    expected = small_instance.latency.split_delay_ms(
                        by_id[decision.request_id],
                        decision.primary_station,
                        decision.migrated_tasks)
                    assert decision.latency_ms == pytest.approx(expected)
        # With saturated workloads migrations should actually occur.
        assert found_migration

    def test_migration_counter(self, small_instance):
        algo = Heu()
        total = 0
        for seed in range(6):
            workload = small_instance.new_workload(num_requests=35,
                                                   seed=seed)
            run_offline(algo, small_instance, workload, seed=seed)
            total += algo.last_num_migrations
        assert total > 0


class TestQuality:
    def test_heu_at_least_appro_on_average(self, small_instance):
        """Algorithm 2 only relaxes Appro's rejections; on average it
        must not earn less (paper: Heu > Appro in every figure)."""
        appro_total, heu_total = 0.0, 0.0
        for seed in range(5):
            workload = small_instance.new_workload(num_requests=30,
                                                   seed=seed)
            appro_total += run_offline(Appro(), small_instance, workload,
                                       seed=seed).total_reward
            workload = small_instance.new_workload(num_requests=30,
                                                   seed=seed)
            heu_total += run_offline(Heu(), small_instance, workload,
                                     seed=seed).total_reward
        assert heu_total >= 0.95 * appro_total

    def test_deterministic_given_seed(self, small_instance):
        a = run_offline(Heu(), small_instance,
                        small_instance.new_workload(20, seed=4), seed=4)
        b = run_offline(Heu(), small_instance,
                        small_instance.new_workload(20, seed=4), seed=4)
        assert a.total_reward == pytest.approx(b.total_reward)
