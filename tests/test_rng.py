"""Unit tests for :mod:`repro.rng`."""

import numpy as np

from repro.rng import RngForks, ensure_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen


class TestRngForks:
    def test_same_seed_same_streams(self):
        a = RngForks(7).child("topology").integers(0, 10**9, size=4)
        b = RngForks(7).child("topology").integers(0, 10**9, size=4)
        assert (a == b).all()

    def test_different_names_different_streams(self):
        forks = RngForks(7)
        a = forks.child("topology").integers(0, 10**9, size=8)
        b = forks.child("requests").integers(0, 10**9, size=8)
        assert not (a == b).all()

    def test_different_seeds_different_streams(self):
        a = RngForks(1).child("x").integers(0, 10**9, size=8)
        b = RngForks(2).child("x").integers(0, 10**9, size=8)
        assert not (a == b).all()

    def test_order_independence(self):
        forks_a = RngForks(9)
        forks_a.child("first")
        value_a = forks_a.child("second").integers(0, 10**9)
        forks_b = RngForks(9)
        value_b = forks_b.child("second").integers(0, 10**9)
        assert value_a == value_b

    def test_child_replays_stream(self):
        forks = RngForks(5)
        first = forks.child("s").integers(0, 10**9, size=3)
        second = forks.child("s").integers(0, 10**9, size=3)
        assert (first == second).all()

    def test_cached_child_advances(self):
        forks = RngForks(5)
        first = forks.cached_child("s").integers(0, 10**9, size=3)
        second = forks.cached_child("s").integers(0, 10**9, size=3)
        assert not (first == second).all()


class TestReplaySemantics:
    """Pin the replay behavior the module docstring documents.

    Parallel sweep determinism leans on these semantics: a worker that
    rebuilds an instance/workload from ``(config, seed)`` must get
    exactly the draws the serial path got.
    """

    def test_docstring_example_child_replays(self):
        # Identically-named children are seeded identically, so a
        # re-requested child's first draw equals the original's.
        forks = RngForks(seed=7)
        topo_rng = forks.child("topology")
        assert (forks.child("topology").integers(10)
                == topo_rng.integers(10))

    def test_child_replay_is_unaffected_by_other_draws(self):
        forks = RngForks(11)
        reference = forks.child("workload").integers(0, 10**9, size=5)
        # Interleave unrelated consumption; replay must not move.
        forks.child("topology").integers(0, 10**9, size=100)
        forks.cached_child("noise").integers(0, 10**9, size=100)
        replayed = forks.child("workload").integers(0, 10**9, size=5)
        assert (reference == replayed).all()

    def test_cached_child_memoizes_one_generator(self):
        forks = RngForks(3)
        gen = forks.cached_child("stream")
        assert forks.cached_child("stream") is gen

    def test_cached_child_starts_where_child_starts(self):
        # The first cached_child draw equals a fresh child's first
        # draw: memoization changes continuation, not seeding.
        a = RngForks(13).cached_child("s").integers(0, 10**9, size=4)
        b = RngForks(13).child("s").integers(0, 10**9, size=4)
        assert (a == b).all()

    def test_child_resets_a_cached_stream(self):
        # child() reseeds from scratch even after cached advancement,
        # and re-registers the stream for future cached_child calls.
        forks = RngForks(17)
        start = forks.child("s").integers(0, 10**9, size=3)
        forks.cached_child("s").integers(0, 10**9, size=50)
        replay = forks.child("s").integers(0, 10**9, size=3)
        assert (start == replay).all()
