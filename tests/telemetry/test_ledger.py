"""Tests for run manifests, the JSONL ledger, and BENCH snapshots."""

import dataclasses
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import RunRecord, SweepResult
from repro.telemetry import (MANIFEST_SCHEMA, RunManifest, append_ledger,
                             config_hash, diff_ledgers, git_revision,
                             latest_by_name, load_manifests,
                             manifest_from_sweeps, peak_rss_kb,
                             read_ledger, write_bench)


def make_manifest(name="bench", reward=100.0, runtime=0.5,
                  phases=None):
    return RunManifest(
        name=name,
        created_at="2026-08-05T00:00:00Z",
        git_rev="deadbeef",
        config_hash="abc123",
        seeds=(0, 1),
        workers=2,
        python_version="3.11.0",
        numpy_version="1.26.0",
        platform="test",
        peak_rss_kb=1024,
        phases=dict(phases or {"fig3": 1.5}),
        metrics={"Greedy": {"total_reward": reward,
                            "runtime_s": runtime}},
        extra={"scale": "smoke"},
    )


def make_sweep(algorithm="Greedy", rewards=(10.0, 20.0)):
    sweep = SweepResult("num_requests")
    for seed, reward in enumerate(rewards):
        sweep.extend([RunRecord(algorithm, 8.0, seed,
                                {"total_reward": reward,
                                 "runtime_s": 0.1})])
    return sweep


class TestRunManifest:
    def test_round_trip(self):
        manifest = make_manifest()
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt == manifest

    def test_to_dict_carries_schema(self):
        assert make_manifest().to_dict()["schema"] == MANIFEST_SCHEMA

    def test_to_dict_is_json_serializable(self):
        json.dumps(make_manifest().to_dict())

    def test_from_dict_tolerates_missing_optionals(self):
        manifest = RunManifest.from_dict({"name": "m"})
        assert manifest.name == "m"
        assert manifest.git_rev == "unknown"
        assert manifest.seeds == ()
        assert manifest.peak_rss_kb is None

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            RunManifest.from_dict({})  # no name
        with pytest.raises(ConfigurationError):
            RunManifest.from_dict({"name": "m",
                                   "seeds": ["not-an-int"]})


class TestConfigHash:
    def test_stable_across_calls(self):
        cfg = {"b": 2, "a": 1}
        assert config_hash(cfg) == config_hash({"a": 1, "b": 2})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_dataclasses_hash_by_fields(self):
        @dataclasses.dataclass
        class Cfg:
            x: int
            y: str

        assert config_hash(Cfg(1, "a")) == config_hash(Cfg(1, "a"))
        assert config_hash(Cfg(1, "a")) != config_hash(Cfg(2, "a"))

    def test_hash_is_short_hex(self):
        digest = config_hash({"a": 1})
        assert len(digest) == 16
        int(digest, 16)


class TestEnvironmentProbes:
    def test_git_revision_in_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40

    def test_git_revision_outside_repo(self, tmp_path):
        assert git_revision(cwd=tmp_path) == "unknown"

    def test_peak_rss_positive_on_posix(self):
        rss = peak_rss_kb()
        assert rss is None or rss > 0


class TestManifestFromSweeps:
    def test_single_sweep_metrics_unnamespaced(self):
        manifest = manifest_from_sweeps("m", {"fig3": make_sweep()})
        assert set(manifest.metrics) == {"Greedy"}
        assert manifest.metrics["Greedy"]["total_reward"] \
            == pytest.approx(15.0)
        assert manifest.seeds == (0, 1)

    def test_multiple_sweeps_namespaced(self):
        manifest = manifest_from_sweeps(
            "m", {"fig3": make_sweep(), "fig4": make_sweep("OCORP")})
        assert set(manifest.metrics) == {"fig3/Greedy", "fig4/OCORP"}

    def test_phases_and_extra_carried(self):
        manifest = manifest_from_sweeps(
            "m", {"fig3": make_sweep()}, workers=4,
            phases={"fig3": 2.0}, extra={"scale": "full"})
        assert manifest.workers == 4
        assert manifest.phases == {"fig3": 2.0}
        assert manifest.extra == {"scale": "full"}

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ConfigurationError):
            manifest_from_sweeps("m", {})

    def test_config_hash_depends_on_config(self):
        a = manifest_from_sweeps("m", {"s": make_sweep()},
                                 config={"scale": "smoke"})
        b = manifest_from_sweeps("m", {"s": make_sweep()},
                                 config={"scale": "full"})
        assert a.config_hash != b.config_hash


class TestPersistence:
    def test_ledger_append_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = make_manifest("a")
        second = make_manifest("b", reward=50.0)
        append_ledger(path, first)
        append_ledger(path, second)
        assert read_ledger(path) == [first, second]

    def test_ledger_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "ledger.jsonl"
        append_ledger(path, make_manifest())
        assert len(read_ledger(path)) == 1

    def test_ledger_skips_blank_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_ledger(path, make_manifest())
        with path.open("a") as handle:
            handle.write("\n")
        assert len(read_ledger(path)) == 1

    def test_ledger_rejects_garbage(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_ledger(path)

    def test_ledger_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ConfigurationError):
            read_ledger(path)

    def test_bench_write_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_m.json"
        manifest = make_manifest()
        write_bench(path, manifest)
        assert load_manifests(path) == [manifest]
        # Pretty-printed: multi-line with a trailing newline.
        text = path.read_text()
        assert text.endswith("\n")
        assert len(text.splitlines()) > 1

    def test_load_manifests_sniffs_jsonl(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_ledger(path, make_manifest("a"))
        append_ledger(path, make_manifest("b"))
        assert [m.name for m in load_manifests(path)] == ["a", "b"]

    def test_load_manifests_rejects_json_array(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text("[]")
        with pytest.raises(ConfigurationError):
            load_manifests(path)

    def test_latest_by_name(self):
        old = make_manifest("m", reward=1.0)
        new = make_manifest("m", reward=2.0)
        other = make_manifest("other")
        head = latest_by_name([old, other, new])
        assert head["m"] is new
        assert head["other"] is other


class TestLedgerDiffIntegration:
    """Write -> read -> bench-diff of identical ledgers: zero deltas
    regressed, exit-equivalent ok."""

    def test_identical_ledgers_report_no_regressions(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_ledger(path, make_manifest())
        manifests = read_ledger(path)
        report = diff_ledgers(manifests, manifests)
        assert report.ok
        assert report.compared_runs == ["bench"]
        assert report.regressions == []
        for delta in report.deltas:
            assert delta.abs_delta == 0.0
