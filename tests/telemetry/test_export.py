"""Tests for JSONL export, canonicalisation, and sweep merging."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.results import RunRecord
from repro.telemetry import (Tracer, canonical_events,
                             collect_sweep_trace, read_jsonl,
                             write_jsonl)


def sample_events():
    tracer = Tracer()
    with tracer.span("outer", phase="x"):
        with tracer.span("inner"):
            pass
    tracer.count("drops", 2)
    tracer.observe("threshold_mhz", 400.0)
    return tracer.events()


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        events = sample_events()
        path = write_jsonl(tmp_path / "trace.jsonl", events)
        assert read_jsonl(path) == events

    def test_creates_parent_dirs(self, tmp_path):
        path = write_jsonl(tmp_path / "a" / "b" / "t.jsonl",
                           sample_events())
        assert path.exists()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "counter", "name": "a", '
                        '"labels": {}, "value": 1.0}\n\n')
        assert len(read_jsonl(path)) == 1

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ConfigurationError):
            read_jsonl(path)


class TestCanonicalEvents:
    def test_strips_wall_clock_fields_only(self):
        events = sample_events()
        canon = canonical_events(events)
        for event in canon:
            assert "start_s" not in event
            assert "duration_s" not in event
        spans = [e for e in canon if e["kind"] == "span"]
        assert {e["name"] for e in spans} == {"outer", "inner"}
        # Deterministic fields survive.
        assert any(e.get("seq") == 0 for e in spans)

    def test_does_not_mutate_input(self):
        events = sample_events()
        canonical_events(events)
        assert any("duration_s" in e for e in events)

    def test_equal_for_identical_runs(self):
        assert (canonical_events(sample_events())
                == canonical_events(sample_events()))


class TestCollectSweepTrace:
    def record(self, algorithm, trace):
        return RunRecord(algorithm=algorithm, x=1.0, seed=0,
                         metrics={"total_reward": 1.0},
                         trace=tuple(trace) if trace else None)

    def test_annotates_run_identity_in_order(self):
        records = [self.record("A", sample_events()),
                   self.record("B", sample_events())]
        merged = collect_sweep_trace(records)
        assert {e["run"] for e in merged} == {0, 1}
        assert merged[0]["algorithm"] == "A"
        # Record order (canonical spec order) is preserved.
        runs = [e["run"] for e in merged]
        assert runs == sorted(runs)

    def test_untraced_records_skipped(self):
        records = [self.record("A", None),
                   self.record("B", sample_events())]
        merged = collect_sweep_trace(records)
        assert all(e["algorithm"] == "B" for e in merged)

    def test_empty(self):
        assert collect_sweep_trace([]) == []
