"""Tests for perf-diff: regression localization and CLI exit codes."""

import copy
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.perfdiff import (EXIT_ERROR, EXIT_OK,
                                      EXIT_REGRESSED, PerfDelta,
                                      diff_digests, diff_profile_sets,
                                      main, worst_regression)
from repro.telemetry.profiling import (ProfileDigest, SpanProfile,
                                       write_profile_set)


def make_digest(extra_spans=None, counters=None, calls=None):
    spans = {
        "offline_run": SpanProfile("offline_run", calls=1,
                                   total_s=1.0, self_s=0.2,
                                   min_s=1.0, max_s=1.0),
        "offline_run/lp_solve": SpanProfile(
            "offline_run/lp_solve", calls=3, total_s=0.6, self_s=0.6,
            min_s=0.1, max_s=0.3),
        "offline_run/rounding": SpanProfile(
            "offline_run/rounding", calls=1, total_s=0.2, self_s=0.2,
            min_s=0.2, max_s=0.2),
    }
    for path, span in (extra_spans or {}).items():
        spans[path] = span
    if calls:
        for path, n in calls.items():
            spans[path].calls = n
    base_counters = {'lp_solves_total{mode="cold"}': 3.0,
                     'simplex_iterations_total{phase="primal"}': 40.0,
                     "rounding_admits_total": 8.0}
    base_counters.update(counters or {})
    return ProfileDigest(spans=spans, counters=base_counters,
                         top_level_s=1.0, runs=1)


class TestDiffDigests:
    def test_identical_digests_nothing_regresses(self):
        rows = diff_digests("Appro", make_digest(), make_digest())
        assert not any(row.regressed for row in rows)

    def test_call_count_drift_gates_both_directions(self):
        fewer = make_digest(calls={"offline_run/lp_solve": 2})
        rows = diff_digests("Appro", make_digest(), fewer)
        bad = [r for r in rows if r.regressed]
        assert len(bad) == 1
        assert bad[0].key == "offline_run/lp_solve"
        assert bad[0].kind == "calls"

    def test_counter_drift_gates(self):
        noisier = make_digest(
            counters={'simplex_iterations_total{phase="primal"}': 160.0})
        rows = diff_digests("Appro", make_digest(), noisier)
        bad = [r for r in rows if r.regressed]
        assert [r.key for r in bad] \
            == ['simplex_iterations_total{phase="primal"}']

    def test_tol_absorbs_small_drift(self):
        noisier = make_digest(
            counters={'simplex_iterations_total{phase="primal"}': 41.0})
        rows = diff_digests("Appro", make_digest(), noisier, tol=0.05)
        assert not any(row.regressed for row in rows)

    def test_new_span_always_regresses(self):
        hot = make_digest(extra_spans={
            "offline_run/synthetic_hotspot": SpanProfile(
                "offline_run/synthetic_hotspot", calls=2,
                total_s=0.9, self_s=0.9, min_s=0.4, max_s=0.5)})
        rows = diff_digests("Appro", make_digest(), hot, tol=0.5)
        bad = [r for r in rows if r.regressed]
        assert [r.key for r in bad] == ["offline_run/synthetic_hotspot"]
        assert bad[0].rel == float("inf")

    def test_timing_advisory_without_gate(self):
        slow = copy.deepcopy(make_digest())
        slow.spans["offline_run/lp_solve"].self_s = 6.0
        rows = diff_digests("Appro", make_digest(), slow)
        assert not any(row.regressed for row in rows)

    def test_gate_catches_slowdown_above_floor(self):
        slow = copy.deepcopy(make_digest())
        slow.spans["offline_run/lp_solve"].self_s = 6.0
        rows = diff_digests("Appro", make_digest(), slow, gate=0.5)
        bad = [r for r in rows if r.regressed]
        assert [(r.kind, r.key) for r in bad] \
            == [("self_s", "offline_run/lp_solve")]

    def test_min_ms_floor_silences_tiny_spans(self):
        slow = copy.deepcopy(make_digest())
        slow.spans["offline_run/rounding"].self_s = 0.004  # 4 ms
        base = copy.deepcopy(make_digest())
        base.spans["offline_run/rounding"].self_s = 0.001
        rows = diff_digests("Appro", base, slow, gate=0.5, min_ms=5.0)
        assert not any(row.regressed for row in rows)

    def test_gate_ignores_speedups(self):
        fast = copy.deepcopy(make_digest())
        fast.spans["offline_run/lp_solve"].self_s = 0.01
        rows = diff_digests("Appro", make_digest(), fast, gate=0.1)
        assert not any(row.regressed for row in rows)


class TestWorstRegression:
    def test_localizes_injected_hotspot(self):
        hot = make_digest(extra_spans={
            "offline_run/synthetic_hotspot": SpanProfile(
                "offline_run/synthetic_hotspot", calls=2,
                total_s=0.9, self_s=0.9, min_s=0.4, max_s=0.5)})
        rows = diff_digests("Appro", make_digest(), hot)
        where, evidence = worst_regression(rows)
        assert where == "offline_run/synthetic_hotspot"
        assert any(row.kind == "calls" for row in evidence)

    def test_counter_regression_anchors_to_owning_span(self):
        noisier = make_digest(
            counters={'simplex_iterations_total{phase="primal"}': 400.0})
        rows = diff_digests("Appro", make_digest(), noisier)
        where, evidence = worst_regression(rows)
        assert where == "offline_run/lp_solve"
        assert any(row.kind == "counter" for row in evidence)

    def test_none_when_clean(self):
        rows = diff_digests("Appro", make_digest(), make_digest())
        assert worst_regression(rows) is None

    def test_unowned_counter_stands_alone(self):
        rows = [PerfDelta("d", "counter", "service_shed_total",
                          0.0, 5.0, regressed=True)]
        where, evidence = worst_regression(rows)
        assert where == "service_shed_total"


class TestDiffProfileSets:
    def test_identical_sets_exit_ok(self):
        code, report = diff_profile_sets({"Appro": make_digest()},
                                         {"Appro": make_digest()})
        assert code == EXIT_OK
        assert "deterministic attribution ok" in report
        assert "exit 0" in report

    def test_regression_exit_one_and_headline(self):
        hot = make_digest(extra_spans={
            "offline_run/synthetic_hotspot": SpanProfile(
                "offline_run/synthetic_hotspot", calls=2,
                total_s=0.9, self_s=0.9, min_s=0.4, max_s=0.5)})
        code, report = diff_profile_sets({"Appro": make_digest()},
                                         {"Appro": hot})
        assert code == EXIT_REGRESSED
        assert ("worst regressed span: offline_run/synthetic_hotspot"
                in report)

    def test_one_sided_digest_noted_not_gated(self):
        code, report = diff_profile_sets(
            {"Appro": make_digest(), "Greedy": make_digest()},
            {"Appro": make_digest()})
        assert code == EXIT_OK
        assert "'Greedy' present on one side only" in report

    def test_no_common_names_raises(self):
        with pytest.raises(ConfigurationError):
            diff_profile_sets({"A": make_digest()},
                              {"B": make_digest()})


class TestCli:
    def write(self, tmp_path, filename, digests):
        path = tmp_path / filename
        write_profile_set(path, digests)
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        assert main([old, old]) == EXIT_OK
        assert "exit 0" in capsys.readouterr().out

    def test_injected_slowdown_localized_exit_one(self, tmp_path,
                                                  capsys):
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        hot = make_digest(extra_spans={
            "offline_run/synthetic_hotspot": SpanProfile(
                "offline_run/synthetic_hotspot", calls=2,
                total_s=0.9, self_s=0.9, min_s=0.4, max_s=0.5)})
        new = self.write(tmp_path, "new.json", {"Appro": hot})
        assert main([old, new]) == EXIT_REGRESSED
        out = capsys.readouterr().out
        assert ("worst regressed span: offline_run/synthetic_hotspot"
                in out)

    def test_missing_file_exits_two(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        assert main([old, str(tmp_path / "nope.json")]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_empty_artifact_exits_two(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"schema": "x", "digests": {}}))
        assert main([old, str(empty)]) == EXIT_ERROR

    def test_negative_knobs_exit_two(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        assert main(["--tol", "-1", old, old]) == EXIT_ERROR

    def test_dispatch_through_experiments_cli(self, tmp_path, capsys):
        from repro.experiments.__main__ import main as experiments_main
        old = self.write(tmp_path, "old.json",
                         {"Appro": make_digest()})
        assert experiments_main(["perf-diff", old, old]) == EXIT_OK
        assert "perf-diff:" in capsys.readouterr().out
