"""Unit tests for the tracer core: spans, counters, values, nulls."""

import pytest

from repro.telemetry import (NULL_TRACER, NullTracer, Tracer, get_tracer,
                             set_tracer, use_tracer)


class FakeClock:
    """Deterministic clock: every call advances by `step` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("work"):
            pass
        (event,) = [e for e in tracer.events() if e["kind"] == "span"]
        assert event["name"] == "work"
        assert event["duration_s"] == pytest.approx(1.0)
        assert event["parent"] is None
        assert event["depth"] == 0

    def test_nesting_tracks_parent_and_depth(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        spans = [e for e in tracer.events() if e["kind"] == "span"]
        outer = next(e for e in spans if e["name"] == "outer")
        inners = [e for e in spans if e["name"] == "inner"]
        assert outer["seq"] == 0
        assert all(e["parent"] == 0 and e["depth"] == 1 for e in inners)
        # Start order, not completion order.
        assert [e["name"] for e in spans] == ["outer", "inner", "inner"]

    def test_labels_recorded(self):
        tracer = Tracer()
        with tracer.span("lp_solve", backend="scipy"):
            pass
        (event,) = tracer.events()
        assert event["labels"] == {"backend": "scipy"}

    def test_exception_propagates_and_span_closes(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        assert tracer.open_spans == 0
        (event,) = tracer.events()
        assert event["duration_s"] > 0

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.count("c")
            tracer.observe("v", 1.0)
        tracer.clear()
        assert tracer.events() == []


class TestCountersAndValues:
    def test_counter_accumulates(self):
        tracer = Tracer()
        tracer.count("drops")
        tracer.count("drops", 3)
        assert tracer.counter("drops") == 4.0

    def test_counter_labels_are_separate_series(self):
        tracer = Tracer()
        tracer.count("nodes", 2, backend="bnb")
        tracer.count("nodes", 5, backend="scipy")
        assert tracer.counter("nodes", backend="bnb") == 2.0
        assert tracer.counter("nodes", backend="scipy") == 5.0

    def test_observe_keeps_samples(self):
        tracer = Tracer()
        for value in (1.0, 2.0, 3.0):
            tracer.observe("threshold_mhz", value)
        assert tracer.observations("threshold_mhz") == [1.0, 2.0, 3.0]

    def test_events_are_deterministically_ordered(self):
        def build():
            tracer = Tracer(clock=FakeClock())
            tracer.count("b")
            tracer.count("a")
            tracer.observe("z", 1.0)
            with tracer.span("s"):
                pass
            return tracer.events()

        assert build() == build()
        kinds = [e["kind"] for e in build()]
        assert kinds == ["span", "counter", "counter", "value"]


class TestNullTracer:
    def test_span_is_shared_noop(self):
        null = NullTracer()
        span = null.span("anything", label=1)
        assert span is null.span("other")
        with span:
            pass
        assert null.events() == []

    def test_count_observe_noops(self):
        null = NullTracer()
        null.count("x", 5)
        null.observe("y", 1.0)
        assert null.events() == []

    def test_enabled_flags(self):
        assert Tracer().enabled is True
        assert NullTracer().enabled is False


class TestCurrentTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_set_and_reset(self):
        tracer = Tracer()
        try:
            assert set_tracer(tracer) is tracer
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                assert get_tracer() is tracer
                raise RuntimeError("x")
        assert get_tracer() is NULL_TRACER

    def test_instrumented_code_records_through_current(self):
        from repro.solver.model import LinearProgram
        from repro.solver.interface import solve_lp

        lp = LinearProgram(name="t", maximize=True)
        lp.add_variable("x", low=0.0, high=1.0, objective=1.0)
        tracer = Tracer()
        with use_tracer(tracer):
            solve_lp(lp)
        spans = [e for e in tracer.events() if e["kind"] == "span"]
        assert any(e["name"] == "lp_solve"
                   and e["labels"] == {"backend": "scipy",
                                       "warm": "cold"}
                   for e in spans)
