"""Tests for the deferred_resolution invariant and service event kinds."""

from __future__ import annotations

import pytest

from repro.exceptions import InvariantViolation
from repro.telemetry.audit import INVARIANTS, InvariantMonitor


def ev(kind, slot=0, request=None, **extra):
    event = {"kind": kind, "slot": slot}
    if request is not None:
        event["request"] = request
    event.update(extra)
    return event


class TestDeferredResolution:
    def test_registered_invariant(self):
        assert "deferred_resolution" in INVARIANTS

    def test_deferral_resolved_by_start_is_clean(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("admit_deferred", 0, request=1, value=1.0),
            ev("start", 2, request=1, station=0, reward=1.0),
            ev("complete", 5, request=1, station=0, reward=1.0),
        ])
        monitor.finish(None)
        assert monitor.ok, monitor.report()

    def test_deferral_resolved_by_drop_is_clean(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("admit_deferred", 0, request=1),
            ev("drop", 4, request=1),
        ])
        monitor.finish(None)
        assert monitor.ok, monitor.report()

    def test_unresolved_deferral_fails_at_finish(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("admit_deferred", 0, request=1),
        ])
        monitor.finish(None)
        assert not monitor.ok
        assert any(v.invariant == "deferred_resolution"
                   for v in monitor.violations)

    def test_finish_without_result_still_checks(self):
        """finish(None) must not early-return past the deferred check."""
        monitor = InvariantMonitor(mode="strict")
        monitor.observe(ev("arrival", 0, request=9))
        monitor.observe(ev("admit_deferred", 0, request=9))
        with pytest.raises(InvariantViolation):
            monitor.finish(None)

    def test_deferral_counts_are_tracked(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("admit_deferred", 0, request=1),
            ev("start", 1, request=1, station=0, reward=0.0),
        ])
        monitor.finish(None)
        assert monitor.checks["deferred_resolution"] >= 2


class TestShed:
    def test_shed_is_clean_for_fresh_request(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([ev("shed", 3, request=7, value=64.0)])
        monitor.finish(None)
        assert monitor.ok, monitor.report()

    def test_shed_after_terminal_is_double_terminal(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("drop", 1, request=1),
            ev("shed", 2, request=1),
        ])
        assert any(v.invariant == "double_terminal"
                   for v in monitor.violations)

    def test_terminal_after_shed_is_double_terminal(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("shed", 0, request=1),
            ev("drop", 1, request=1),
        ])
        assert any(v.invariant == "double_terminal"
                   for v in monitor.violations)


class TestServiceKindsPassThrough:
    def test_checkpoint_and_resume_are_inert(self):
        monitor = InvariantMonitor(mode="strict")
        monitor.check_events([
            ev("arrival", 0, request=1),
            ev("checkpoint", 0),
            ev("resume", 0),
            ev("start", 1, request=1, station=0, reward=0.0),
            ev("complete", 2, request=1, station=0, reward=0.0),
        ])
        monitor.finish(None)
        assert monitor.ok

    def test_checkpoint_respects_slot_order(self):
        monitor = InvariantMonitor(mode="collect")
        monitor.check_events([
            ev("checkpoint", 5),
            ev("arrival", 3, request=1),
        ])
        assert any(v.invariant == "slot_order"
                   for v in monitor.violations)
