"""Tests for bench-diff: tolerance gating and the CLI exit codes."""

import dataclasses

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import (Delta, RunManifest, append_ledger,
                             diff_ledgers, diff_manifests, write_bench)
from repro.telemetry import regression


def make_manifest(name="bench", reward=100.0, runtime=0.5,
                  phases=None):
    return RunManifest(
        name=name,
        created_at="2026-08-05T00:00:00Z",
        git_rev="deadbeef",
        config_hash="abc123",
        seeds=(0, 1),
        workers=2,
        python_version="3.11.0",
        numpy_version="1.26.0",
        platform="test",
        peak_rss_kb=1024,
        phases=dict(phases or {"fig3": 1.5}),
        metrics={"Greedy": {"total_reward": reward,
                            "runtime_s": runtime}},
        extra={"scale": "smoke"},
    )


def perturbed(manifest, *, reward=None, runtime=None, phases=None):
    metrics = {algo: dict(row)
               for algo, row in manifest.metrics.items()}
    if reward is not None:
        metrics["Greedy"]["total_reward"] = reward
    if runtime is not None:
        metrics["Greedy"]["runtime_s"] = runtime
    return dataclasses.replace(
        manifest, metrics=metrics,
        phases=dict(phases if phases is not None else manifest.phases))


class TestDelta:
    def test_relative_delta(self):
        delta = Delta(run="m", key="k", old=100.0, new=110.0,
                      wall_clock=False, regressed=False)
        assert delta.abs_delta == pytest.approx(10.0)
        assert delta.rel_delta == pytest.approx(0.1)

    def test_zero_baseline_stays_finite(self):
        delta = Delta(run="m", key="k", old=0.0, new=1.0,
                      wall_clock=False, regressed=False)
        assert delta.rel_delta == pytest.approx(1.0 / 1e-12)
        assert delta.rel_delta != float("inf")


class TestDiffManifests:
    def test_identical_is_ok(self):
        manifest = make_manifest()
        report = diff_manifests(manifest, manifest)
        assert report.ok
        assert not report.regressions

    def test_metric_drift_gates_both_directions(self):
        base = make_manifest(reward=100.0)
        worse = perturbed(base, reward=90.0)
        better = perturbed(base, reward=110.0)
        assert not diff_manifests(base, worse, metric_tol=0.05).ok
        # An *increase* still means the baseline is stale.
        assert not diff_manifests(base, better, metric_tol=0.05).ok
        assert diff_manifests(base, worse, metric_tol=0.2).ok

    def test_wall_clock_advisory_by_default(self):
        base = make_manifest(runtime=1.0)
        slower = perturbed(base, runtime=10.0)
        report = diff_manifests(base, slower)
        assert report.ok
        wall = [d for d in report.deltas
                if d.key == "Greedy.runtime_s"]
        assert wall and wall[0].wall_clock

    def test_gate_wall_fails_slowdowns_only(self):
        base = make_manifest(runtime=1.0)
        slower = perturbed(base, runtime=2.0)
        faster = perturbed(base, runtime=0.5)
        assert not diff_manifests(base, slower, gate_wall=True,
                                  wall_tol=0.25).ok
        assert diff_manifests(base, faster, gate_wall=True,
                              wall_tol=0.25).ok
        assert diff_manifests(base, slower, gate_wall=True,
                              wall_tol=2.0).ok

    def test_wall_keys_limit_the_gate(self):
        base = make_manifest(runtime=1.0, phases={"fig3": 1.0})
        slow_phase = perturbed(base, phases={"fig3": 100.0})
        slow_algo = perturbed(base, runtime=5.0)
        # A gated pattern only fires on matching keys ...
        assert diff_manifests(base, slow_phase, gate_wall=True,
                              wall_keys=["Greedy.runtime_s"]).ok
        assert not diff_manifests(base, slow_algo, gate_wall=True,
                                  wall_keys=["Greedy.runtime_s"]).ok
        # ... wildcards work, and no patterns means gate everything.
        assert not diff_manifests(base, slow_algo, gate_wall=True,
                                  wall_keys=["*.runtime_s"]).ok
        assert not diff_manifests(base, slow_phase, gate_wall=True).ok

    def test_phases_and_rss_are_wall_clock(self):
        base = make_manifest(phases={"fig3": 1.0})
        slower = perturbed(base, phases={"fig3": 100.0})
        report = diff_manifests(base, slower)
        assert report.ok
        keys = {d.key for d in report.deltas if d.wall_clock}
        assert "phase.fig3" in keys
        assert "peak_rss_kb" in keys

    def test_missing_metric_is_advisory(self):
        base = make_manifest()
        gone = dataclasses.replace(
            base, metrics={"Greedy": {"runtime_s": 0.5}})
        report = diff_manifests(base, gone)
        assert report.ok
        assert any("total_reward" in item for item in report.missing)

    def test_negative_tolerance_rejected(self):
        manifest = make_manifest()
        with pytest.raises(ConfigurationError):
            diff_manifests(manifest, manifest, metric_tol=-1.0)


class TestDiffLedgers:
    def test_latest_per_name_wins(self):
        stale = make_manifest(reward=1.0)
        head = make_manifest(reward=100.0)
        report = diff_ledgers([stale, head], [head])
        assert report.ok

    def test_missing_names_advisory(self):
        report = diff_ledgers([make_manifest("a")],
                              [make_manifest("a"),
                               make_manifest("b")])
        assert report.ok
        assert "run 'b'" in report.missing

    def test_no_common_names_is_not_ok(self):
        report = diff_ledgers([make_manifest("a")],
                              [make_manifest("b")])
        assert not report.ok
        assert report.compared_runs == []

    def test_name_filter(self):
        report = diff_ledgers(
            [make_manifest("a"), make_manifest("b")],
            [make_manifest("a"), make_manifest("b", reward=999.0)],
            name="a")
        assert report.compared_runs == ["a"]
        assert report.ok


class TestRenderReport:
    def test_render_marks_rows(self):
        base = make_manifest(reward=100.0)
        report = diff_manifests(base, perturbed(base, reward=90.0),
                                metric_tol=0.05)
        text = report.render()
        assert "run 'bench':" in text
        assert "REGRESSION" in text
        assert "regression(s)" in text

    def test_render_empty(self):
        report = diff_ledgers([make_manifest("a")],
                              [make_manifest("b")])
        assert "no common run names" in report.render()

    def test_wall_clock_rows_sorted_by_relative_magnitude(self):
        # phase.fig3 shifts 1.5 -> 1.65 (+10%); runtime_s shifts
        # 0.5 -> 1.0 (+100%); RSS is unchanged.  The advisory block
        # must lead with the biggest relative mover, regardless of the
        # keys' alphabetical order.
        base = make_manifest(runtime=0.5, phases={"fig3": 1.5})
        new = perturbed(base, runtime=1.0, phases={"fig3": 1.65})
        text = diff_manifests(base, new).render()
        lines = [line.strip() for line in text.splitlines()]
        wall = [line for line in lines
                if line.endswith("~")]
        assert wall[0].startswith("Greedy.runtime_s")
        assert wall[1].startswith("phase.fig3")
        assert wall[2].startswith("peak_rss_kb")
        # Per-key old -> new values ride along on every row.
        assert "0.5" in wall[0] and "->" in wall[0] and "1" in wall[0]

    def test_deterministic_rows_precede_wall_clock(self):
        base = make_manifest()
        new = perturbed(base, runtime=5.0)
        lines = diff_manifests(base, new).render().splitlines()
        reward_at = next(i for i, line in enumerate(lines)
                         if "total_reward" in line)
        runtime_at = next(i for i, line in enumerate(lines)
                          if "runtime_s" in line)
        assert reward_at < runtime_at


class TestCli:
    def bench(self, tmp_path, filename, manifest):
        path = tmp_path / filename
        write_bench(path, manifest)
        return str(path)

    def test_identical_exits_zero(self, tmp_path, capsys):
        base = self.bench(tmp_path, "old.json", make_manifest())
        assert regression.main([base, base]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_over_tolerance_exits_one(self, tmp_path, capsys):
        old = self.bench(tmp_path, "old.json",
                         make_manifest(reward=100.0))
        new = self.bench(tmp_path, "new.json",
                         make_manifest(reward=90.0))
        assert regression.main([old, new, "--tol", "0.05"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "Greedy.total_reward" in out

    def test_within_tolerance_exits_zero(self, tmp_path):
        old = self.bench(tmp_path, "old.json",
                         make_manifest(reward=100.0))
        new = self.bench(tmp_path, "new.json",
                         make_manifest(reward=90.0))
        assert regression.main([old, new, "--tol", "0.2"]) == 0

    def test_gate_wall_flag(self, tmp_path):
        old = self.bench(tmp_path, "old.json",
                         make_manifest(runtime=1.0))
        new = self.bench(tmp_path, "new.json",
                         make_manifest(runtime=5.0))
        assert regression.main([old, new]) == 0
        assert regression.main([old, new, "--gate-wall"]) == 1
        assert regression.main([old, new, "--gate-wall",
                                "--wall-tol", "10"]) == 0

    def test_gate_wall_keys_flag(self, tmp_path):
        old = self.bench(tmp_path, "old.json",
                         make_manifest(runtime=1.0,
                                       phases={"fig3": 1.0}))
        new = self.bench(tmp_path, "new.json",
                         make_manifest(runtime=1.0,
                                       phases={"fig3": 100.0}))
        # The phase slowdown is outside the pattern -> passes; the
        # flag alone implies --gate-wall for matching keys.
        assert regression.main([old, new, "--gate-wall-keys",
                                "Greedy.runtime_s"]) == 0
        assert regression.main([old, new, "--gate-wall-keys",
                                "phase.*"]) == 1
        slow = self.bench(tmp_path, "slow.json",
                          make_manifest(runtime=5.0,
                                        phases={"fig3": 1.0}))
        assert regression.main([old, slow, "--gate-wall-keys",
                                "Greedy.runtime_s,phase.*"]) == 1
        assert regression.main([old, slow, "--gate-wall-keys",
                                "Greedy.runtime_s", "--wall-tol",
                                "10"]) == 0

    def test_missing_file_exits_two(self, tmp_path, capsys):
        base = self.bench(tmp_path, "old.json", make_manifest())
        assert regression.main([base, str(tmp_path / "nope.json")]) == 2
        assert "bench-diff:" in capsys.readouterr().err

    def test_no_common_runs_exits_two(self, tmp_path):
        old = self.bench(tmp_path, "old.json", make_manifest("a"))
        new = self.bench(tmp_path, "new.json", make_manifest("b"))
        assert regression.main([old, new]) == 2

    def test_reads_jsonl_ledgers_too(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_ledger(path, make_manifest())
        assert regression.main([str(path), str(path)]) == 0

    def test_dispatch_through_experiments_cli(self, tmp_path):
        from repro.experiments.__main__ import main as experiments_main

        base = self.bench(tmp_path, "old.json", make_manifest())
        assert experiments_main(["bench-diff", base, base]) == 0
