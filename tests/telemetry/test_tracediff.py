"""The trace-diff divergence localizer and its CLI."""

import json

import pytest

from repro.telemetry.tracediff import (EXIT_DIVERGED, EXIT_ERROR,
                                       EXIT_OK, diff_journals,
                                       first_divergence, load_journal,
                                       main, render_divergence)


def stream(n, start=0):
    return [{"kind": "arrival", "slot": i, "request": i}
            for i in range(start, start + n)]


def write_jsonl(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events),
                    encoding="utf-8")
    return str(path)


class TestFirstDivergence:
    def test_identical(self):
        assert first_divergence(stream(5), stream(5)) is None

    def test_both_empty(self):
        assert first_divergence([], []) is None

    def test_differing_event(self):
        a, b = stream(5), stream(5)
        b[3]["slot"] = 99
        assert first_divergence(a, b) == 3

    def test_prefix_diverges_at_shorter_length(self):
        assert first_divergence(stream(3), stream(5)) == 3
        assert first_divergence(stream(5), stream(3)) == 3

    def test_key_order_is_irrelevant(self):
        a = [{"kind": "drop", "slot": 1}]
        b = [{"slot": 1, "kind": "drop"}]
        assert first_divergence(a, b) is None


class TestDiffJournals:
    def test_identical_exit_ok(self):
        code, report = diff_journals(stream(4), stream(4))
        assert code == EXIT_OK
        assert "identical" in report
        assert "4 events" in report

    def test_divergent_exit_and_localization(self):
        a, b = stream(10), stream(10)
        b[6]["request"] = 42
        code, report = diff_journals(a, b, names=("serial", "par"))
        assert code == EXIT_DIVERGED
        assert "diverge at event 6" in report
        assert "serial" in report and "par" in report
        # The divergent pair, marked per side.
        assert "< [6]" in report and "> [6]" in report
        # The per-field diff names the disagreeing key and values.
        assert "request: 6 != 42" in report

    def test_context_window(self):
        a, b = stream(10), stream(10)
        b[6]["request"] = 42
        report = render_divergence(a, b, 6, context=2)
        assert "= [4]" in report and "= [5]" in report
        assert "= [3]" not in report
        assert "omitted" in report
        assert "= [7]" in report and "= [8]" in report
        assert "[9]" not in report

    def test_prefix_renders_end_of_journal(self):
        code, report = diff_journals(stream(5), stream(3))
        assert code == EXIT_DIVERGED
        assert "<end of journal>" in report

    def test_later_mismatches_marked(self):
        a, b = stream(6), stream(6)
        b[2]["request"] = 42
        b[4]["request"] = 43
        report = render_divergence(a, b, 2, context=3)
        assert "~ [4]" in report


class TestLoadJournal:
    def test_round_trip(self, tmp_path):
        events = stream(3)
        path = write_jsonl(tmp_path / "a.jsonl", events)
        assert load_journal(path) == events

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "a.jsonl"
        path.write_text('{"kind": "drop", "slot": 0}\n\n',
                        encoding="utf-8")
        assert len(load_journal(str(path))) == 1

    def test_malformed_json_names_the_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "drop"}\nnot json\n',
                        encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_journal(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(ValueError, match="expected a JSON object"):
            load_journal(str(path))


class TestCli:
    def test_identical_exits_zero(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl", stream(4))
        b = write_jsonl(tmp_path / "b.jsonl", stream(4))
        assert main([a, b]) == EXIT_OK
        assert "identical" in capsys.readouterr().out

    def test_divergence_exits_one_and_prints_event(self, tmp_path,
                                                   capsys):
        events = stream(8)
        a = write_jsonl(tmp_path / "a.jsonl", events)
        events[5]["slot"] = 99
        b = write_jsonl(tmp_path / "b.jsonl", events)
        assert main([a, b]) == EXIT_DIVERGED
        out = capsys.readouterr().out
        assert "diverge at event 5" in out
        assert '"slot": 99' in out

    def test_missing_file_exits_two(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl", stream(2))
        assert main([a, str(tmp_path / "nope.jsonl")]) == EXIT_ERROR
        assert "error" in capsys.readouterr().err

    def test_malformed_file_exits_two(self, tmp_path, capsys):
        a = write_jsonl(tmp_path / "a.jsonl", stream(2))
        bad = tmp_path / "b.jsonl"
        bad.write_text("nope\n", encoding="utf-8")
        assert main([a, str(bad)]) == EXIT_ERROR

    def test_negative_context_exits_two(self, tmp_path):
        a = write_jsonl(tmp_path / "a.jsonl", stream(2))
        assert main([a, a, "--context", "-1"]) == EXIT_ERROR

    def test_dispatch_through_experiments_main(self, tmp_path,
                                               capsys):
        from repro.experiments.__main__ import main as exp_main

        a = write_jsonl(tmp_path / "a.jsonl", stream(3))
        b = write_jsonl(tmp_path / "b.jsonl", stream(3))
        assert exp_main(["trace-diff", a, b]) == EXIT_OK
