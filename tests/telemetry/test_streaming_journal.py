"""Tests for the opt-in streaming (chunked JSONL) Journal mode."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.events import Event, EventKind
from repro.telemetry.audit import Journal
from repro.telemetry.export import write_jsonl


def make_events(n):
    return [Event(slot=t, kind=EventKind.ARRIVAL, request_id=t)
            for t in range(n)]


class TestStreamingBytes:
    def test_stream_matches_write_jsonl_bytes(self, tmp_path):
        """The streamed file is byte-identical to the batch exporter's."""
        events = make_events(25)
        streamed = tmp_path / "stream.jsonl"
        journal = Journal(stream_path=str(streamed), flush_every=7)
        for event in events:
            journal.record(event)
        journal.close()

        batch = tmp_path / "batch.jsonl"
        write_jsonl(batch, [e.to_record() for e in events])
        assert streamed.read_bytes() == batch.read_bytes()

    @pytest.mark.parametrize("flush_every", [1, 3, 10, 1000])
    def test_flush_interval_never_changes_bytes(self, tmp_path,
                                                flush_every):
        events = make_events(17)
        path = tmp_path / f"f{flush_every}.jsonl"
        journal = Journal(stream_path=str(path), flush_every=flush_every)
        for event in events:
            journal.record(event)
        journal.close()
        reference = "".join(
            json.dumps(e.to_record(), sort_keys=True) + "\n"
            for e in events)
        assert path.read_text() == reference

    def test_flushed_events_leave_memory(self, tmp_path):
        journal = Journal(stream_path=str(tmp_path / "j.jsonl"),
                          flush_every=5)
        for event in make_events(12):
            journal.record(event)
        # Two full chunks flushed; only the tail of 2 remains buffered.
        assert len(journal.events()) == 2
        assert journal.total_recorded == 12
        assert len(journal) == 12
        journal.close()


class TestAppendMode:
    def test_append_continues_file_and_indices(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(stream_path=str(path), flush_every=2)
        for event in make_events(6):
            first.record(event)
        first.close()

        seen = []

        class Spy:
            def observe(self, record, index):
                seen.append(index)

        second = Journal(stream_path=str(path), flush_every=2,
                         append=True, already_recorded=6)
        second.attach(Spy())
        second.record(Event(slot=6, kind=EventKind.ARRIVAL,
                            request_id=6))
        second.close()
        assert seen == [6]
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert json.loads(lines[-1])["request"] == 6

    def test_byte_position_flushes_and_reports_length(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(stream_path=str(path), flush_every=100)
        for event in make_events(4):
            journal.record(event)
        pos = journal.byte_position()
        assert pos == path.stat().st_size > 0
        assert journal.events() == []  # byte_position flushed
        journal.close()

    def test_append_requires_stream_path(self):
        with pytest.raises(ConfigurationError):
            Journal(append=True)

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Journal(flush_every=0)
        with pytest.raises(ConfigurationError):
            Journal(stream_path=str(tmp_path / "x.jsonl"),
                    append=True, already_recorded=-1)


class TestCrashConsistency:
    """A streaming journal interrupted mid-run must leave a parseable
    JSONL prefix that downstream consumers (trace-diff, checkpoint
    resume-truncation) accept as-is."""

    def test_context_manager_flushes_on_exception(self, tmp_path):
        path = tmp_path / "crash.jsonl"
        events = make_events(9)
        with pytest.raises(RuntimeError):
            with Journal(stream_path=str(path), flush_every=4) as journal:
                for event in events:
                    journal.record(event)
                raise RuntimeError("simulated crash")
        lines = path.read_text().splitlines()
        assert len(lines) == 9  # the unflushed tail was not lost
        parsed = [json.loads(line) for line in lines]
        assert [p["request"] for p in parsed] == list(range(9))

    def test_crash_prefix_accepted_by_trace_diff(self, tmp_path):
        from repro.telemetry.tracediff import (EXIT_DIVERGED, EXIT_OK,
                                               main as trace_diff)
        full = tmp_path / "full.jsonl"
        with Journal(stream_path=str(full), flush_every=3) as journal:
            for event in make_events(12):
                journal.record(event)

        crashed = tmp_path / "crashed.jsonl"
        with pytest.raises(RuntimeError):
            with Journal(stream_path=str(crashed),
                         flush_every=3) as journal:
                for event in make_events(12):
                    journal.record(event)
                raise RuntimeError("simulated crash")
        # Identical streams: the flushed crash file is a *complete*
        # copy here (everything recorded pre-crash survived).
        assert trace_diff([str(full), str(crashed)]) == EXIT_OK

        # A genuine prefix (crash before the last records) still
        # parses; trace-diff localizes the truncation, not a parse
        # error (exit 1, not 2).
        prefix = tmp_path / "prefix.jsonl"
        with pytest.raises(RuntimeError):
            with Journal(stream_path=str(prefix),
                         flush_every=3) as journal:
                for event in make_events(7):
                    journal.record(event)
                raise RuntimeError("simulated crash")
        assert trace_diff([str(full), str(prefix)]) == EXIT_DIVERGED

    def test_crash_prefix_accepted_by_resume_truncation(self, tmp_path):
        from repro.service.checkpoint import truncate_journal
        path = tmp_path / "j.jsonl"
        journal = Journal(stream_path=str(path), flush_every=2)
        for event in make_events(5):
            journal.record(event)
        cursor = journal.byte_position()  # checkpoint taken here
        with pytest.raises(RuntimeError):
            with journal:
                for event in make_events(3):
                    journal.record(event)
                raise RuntimeError("simulated crash")
        assert path.stat().st_size > cursor  # ran past the checkpoint
        truncate_journal(str(path), cursor)
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line) for line in lines)

    def test_exit_without_exception_also_closes(self, tmp_path):
        path = tmp_path / "clean.jsonl"
        with Journal(stream_path=str(path), flush_every=100) as journal:
            journal.record(make_events(1)[0])
            assert journal.streaming
        assert not journal.streaming  # closed, handle released
        assert len(path.read_text().splitlines()) == 1

    def test_null_journal_context_manager(self):
        from repro.telemetry.audit import NULL_JOURNAL
        with NULL_JOURNAL as journal:
            journal.record({"kind": "arrival"})
        assert journal.events() == []


class TestInMemoryUnchanged:
    """The default (no stream_path) behaviour is exactly the old one."""

    def test_events_and_len(self):
        journal = Journal()
        for event in make_events(5):
            journal.record(event)
        assert len(journal) == 5
        assert len(journal.events()) == 5
        assert not journal.streaming

    def test_clear_resets(self):
        journal = Journal()
        for event in make_events(5):
            journal.record(event)
        journal.clear()
        assert len(journal) == 0
        assert journal.events() == []

    def test_flush_is_noop_in_memory(self):
        journal = Journal()
        journal.record(make_events(1)[0])
        journal.flush()
        assert len(journal.events()) == 1
