"""Tests for the opt-in streaming (chunked JSONL) Journal mode."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.events import Event, EventKind
from repro.telemetry.audit import Journal
from repro.telemetry.export import write_jsonl


def make_events(n):
    return [Event(slot=t, kind=EventKind.ARRIVAL, request_id=t)
            for t in range(n)]


class TestStreamingBytes:
    def test_stream_matches_write_jsonl_bytes(self, tmp_path):
        """The streamed file is byte-identical to the batch exporter's."""
        events = make_events(25)
        streamed = tmp_path / "stream.jsonl"
        journal = Journal(stream_path=str(streamed), flush_every=7)
        for event in events:
            journal.record(event)
        journal.close()

        batch = tmp_path / "batch.jsonl"
        write_jsonl(batch, [e.to_record() for e in events])
        assert streamed.read_bytes() == batch.read_bytes()

    @pytest.mark.parametrize("flush_every", [1, 3, 10, 1000])
    def test_flush_interval_never_changes_bytes(self, tmp_path,
                                                flush_every):
        events = make_events(17)
        path = tmp_path / f"f{flush_every}.jsonl"
        journal = Journal(stream_path=str(path), flush_every=flush_every)
        for event in events:
            journal.record(event)
        journal.close()
        reference = "".join(
            json.dumps(e.to_record(), sort_keys=True) + "\n"
            for e in events)
        assert path.read_text() == reference

    def test_flushed_events_leave_memory(self, tmp_path):
        journal = Journal(stream_path=str(tmp_path / "j.jsonl"),
                          flush_every=5)
        for event in make_events(12):
            journal.record(event)
        # Two full chunks flushed; only the tail of 2 remains buffered.
        assert len(journal.events()) == 2
        assert journal.total_recorded == 12
        assert len(journal) == 12
        journal.close()


class TestAppendMode:
    def test_append_continues_file_and_indices(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(stream_path=str(path), flush_every=2)
        for event in make_events(6):
            first.record(event)
        first.close()

        seen = []

        class Spy:
            def observe(self, record, index):
                seen.append(index)

        second = Journal(stream_path=str(path), flush_every=2,
                         append=True, already_recorded=6)
        second.attach(Spy())
        second.record(Event(slot=6, kind=EventKind.ARRIVAL,
                            request_id=6))
        second.close()
        assert seen == [6]
        lines = path.read_text().splitlines()
        assert len(lines) == 7
        assert json.loads(lines[-1])["request"] == 6

    def test_byte_position_flushes_and_reports_length(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(stream_path=str(path), flush_every=100)
        for event in make_events(4):
            journal.record(event)
        pos = journal.byte_position()
        assert pos == path.stat().st_size > 0
        assert journal.events() == []  # byte_position flushed
        journal.close()

    def test_append_requires_stream_path(self):
        with pytest.raises(ConfigurationError):
            Journal(append=True)

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            Journal(flush_every=0)
        with pytest.raises(ConfigurationError):
            Journal(stream_path=str(tmp_path / "x.jsonl"),
                    append=True, already_recorded=-1)


class TestInMemoryUnchanged:
    """The default (no stream_path) behaviour is exactly the old one."""

    def test_events_and_len(self):
        journal = Journal()
        for event in make_events(5):
            journal.record(event)
        assert len(journal) == 5
        assert len(journal.events()) == 5
        assert not journal.streaming

    def test_clear_resets(self):
        journal = Journal()
        for event in make_events(5):
            journal.record(event)
        journal.clear()
        assert len(journal) == 0
        assert journal.events() == []

    def test_flush_is_noop_in_memory(self):
        journal = Journal()
        journal.record(make_events(1)[0])
        journal.flush()
        assert len(journal.events()) == 1
