"""Decision journal and invariant monitor.

The mutation tests seed one deliberate violation per named invariant
(oversubscribed station, double COMPLETE, migration past a feasible
closer neighbour, replayed eliminated arm, ...) and assert that the
monitor fires it in strict mode and collects it in collect mode -
every key of ``INVARIANTS`` is exercised by at least one mutation.
"""

import pytest

from repro.exceptions import ConfigurationError, InvariantViolation
from repro.sim.events import Event, EventKind
from repro.telemetry.audit import (INVARIANTS, NULL_JOURNAL,
                                   InvariantMonitor, Journal,
                                   NullJournal, Violation,
                                   audit_records,
                                   collect_sweep_journal, get_journal,
                                   set_journal, use_journal)


def ev(kind, slot=0, **fields):
    """A journal record (the canonical dict form)."""
    record = {"kind": kind, "slot": slot}
    record.update(fields)
    return record


#: A legal little stream: station up, one served request, one drop.
CLEAN = [
    ev("station_up", station=0, value=100.0),
    ev("arrival", request=1),
    ev("arrival", request=2),
    ev("start", slot=1, request=1, station=0, reward=5.0,
       share_mhz=40.0),
    ev("drop", slot=2, request=2),
    ev("complete", slot=3, request=1, station=0, reward=5.0),
]


class TestJournal:
    def test_records_canonical_dicts(self):
        journal = Journal()
        journal.record(Event(slot=3, kind=EventKind.ARRIVAL,
                             request_id=7))
        assert journal.events() == [
            {"kind": "arrival", "slot": 3, "request": 7}]

    def test_accepts_prebuilt_dicts(self):
        journal = Journal()
        journal.record({"kind": "drop", "slot": 1, "request": 2})
        assert len(journal) == 1

    def test_observers_see_events_in_order(self):
        journal = Journal()
        seen = []

        class Spy:
            def observe(self, event, index):
                seen.append((index, event["kind"]))

        journal.attach(Spy())
        journal.record(ev("arrival", request=1))
        journal.record(ev("drop", slot=1, request=1))
        assert seen == [(0, "arrival"), (1, "drop")]

    def test_clear_keeps_observers(self):
        journal = Journal()
        seen = []

        class Spy:
            def observe(self, event, index):
                seen.append(index)

        journal.attach(Spy())
        journal.record(ev("arrival", request=1))
        journal.clear()
        assert len(journal) == 0
        journal.record(ev("arrival", request=2))
        assert seen == [0, 0]

    def test_null_journal_is_disabled_noop(self):
        null = NullJournal()
        assert not null.enabled
        null.record(ev("arrival", request=1))
        null.attach(object())
        assert null.events() == []
        assert len(null) == 0

    def test_default_current_journal_is_null(self):
        assert get_journal() is NULL_JOURNAL

    def test_use_journal_installs_and_restores(self):
        journal = Journal()
        with use_journal(journal) as current:
            assert current is journal
            assert get_journal() is journal
        assert get_journal() is NULL_JOURNAL

    def test_use_journal_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_journal(Journal()):
                raise RuntimeError("boom")
        assert get_journal() is NULL_JOURNAL

    def test_set_journal_none_restores_null(self):
        set_journal(Journal())
        assert set_journal(None) is NULL_JOURNAL
        assert get_journal() is NULL_JOURNAL


class TestMonitorCleanStream:
    def test_clean_stream_has_no_violations(self):
        monitor = InvariantMonitor(mode="strict").check_events(CLEAN)
        assert monitor.ok
        assert monitor.violations == []

    def test_finish_matches_result(self):
        monitor = InvariantMonitor(mode="strict").check_events(CLEAN)
        monitor.finish({"total_reward": 5.0, "num_admitted": 1})
        assert monitor.ok

    def test_checks_are_counted(self):
        monitor = InvariantMonitor().check_events(CLEAN)
        assert monitor.checks["lifecycle"] > 0
        assert monitor.checks["capacity"] > 0

    def test_mode_validation(self):
        with pytest.raises(ConfigurationError):
            InvariantMonitor(mode="sloppy")
        with pytest.raises(ConfigurationError):
            InvariantMonitor(tol=-1.0)

    def test_report_names_every_invariant(self):
        text = InvariantMonitor().check_events(CLEAN).report()
        for name in INVARIANTS:
            assert name in text


def _assert_mutation(events, invariant, finish=None):
    """The core mutation contract: strict raises, collect collects."""
    strict = InvariantMonitor(mode="strict")
    with pytest.raises(InvariantViolation) as exc_info:
        strict.check_events(events)
        if finish is not None:
            strict.finish(finish)
    assert exc_info.value.violation.invariant == invariant

    collect = InvariantMonitor(mode="collect").check_events(events)
    if finish is not None:
        collect.finish(finish)
    assert not collect.ok
    assert any(v.invariant == invariant for v in collect.violations)
    return collect


class TestMutations:
    """One seeded violation per named invariant."""

    def test_slot_order(self):
        events = [ev("arrival", slot=5, request=1),
                  ev("arrival", slot=3, request=2)]
        _assert_mutation(events, "slot_order")

    def test_slot_order_ignores_resource_slot_kinds(self):
        events = [ev("arrival", slot=5, request=1),
                  ev("admit", slot=0, request=1, station=0,
                     reward=1.0)]
        assert InvariantMonitor(mode="strict").check_events(events).ok

    def test_lifecycle_start_without_arrival(self):
        events = [ev("start", request=9, station=0, reward=1.0)]
        _assert_mutation(events, "lifecycle")

    def test_lifecycle_complete_without_start(self):
        events = [ev("arrival", request=1),
                  ev("complete", slot=1, request=1, reward=0.0)]
        _assert_mutation(events, "lifecycle")

    def test_double_terminal_double_complete(self):
        events = CLEAN + [ev("complete", slot=4, request=1,
                             station=0, reward=5.0)]
        _assert_mutation(events, "double_terminal")

    def test_double_terminal_drop_after_complete(self):
        events = CLEAN + [ev("drop", slot=4, request=1)]
        _assert_mutation(events, "double_terminal")

    def test_capacity_oversubscribed_reservations(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("admit", request=1, station=0, reward=1.0,
                     reserved_mhz=60.0),
                  ev("admit", request=2, station=0, reward=1.0,
                     reserved_mhz=60.0)]
        collect = _assert_mutation(events, "capacity")
        assert "oversubscribed" in str(collect.violations[0])

    def test_capacity_share_beyond_station(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("arrival", request=1),
                  ev("start", slot=1, request=1, station=0,
                     reward=1.0, share_mhz=150.0)]
        _assert_mutation(events, "capacity")

    def test_capacity_migration_frees_the_source(self):
        # 60 + 60 only fits because the migration moved 60 away first.
        events = [ev("station_up", station=0, value=100.0),
                  ev("station_up", station=1, value=100.0),
                  ev("admit", request=1, station=0, reward=1.0,
                     reserved_mhz=60.0),
                  ev("migrate", request=1, station=1, src=0,
                     task=0, reserved_mhz=60.0),
                  ev("admit", request=2, station=0, reward=1.0,
                     reserved_mhz=60.0)]
        assert InvariantMonitor(mode="strict").check_events(events).ok

    def test_reward_consistency(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("arrival", request=1),
                  ev("start", slot=1, request=1, station=0,
                     reward=5.0),
                  ev("complete", slot=2, request=1, station=0,
                     reward=7.0)]
        _assert_mutation(events, "reward_consistency")

    def test_reward_accounting_total(self):
        monitor = InvariantMonitor(mode="collect").check_events(CLEAN)
        monitor.finish({"total_reward": 99.0, "num_admitted": 1})
        assert any(v.invariant == "reward_accounting"
                   for v in monitor.violations)

    def test_reward_accounting_admission_count(self):
        monitor = InvariantMonitor(mode="collect").check_events(CLEAN)
        monitor.finish({"total_reward": 5.0, "num_admitted": 3})
        assert any(v.invariant == "reward_accounting"
                   for v in monitor.violations)

    def test_reward_accounting_strict_raises(self):
        monitor = InvariantMonitor(mode="strict").check_events(CLEAN)
        with pytest.raises(InvariantViolation):
            monitor.finish({"total_reward": 99.0})

    def test_migration_target_skipped_feasible_neighbour(self):
        # Station 2 was closer and had 80 MHz free for a 50 MHz share,
        # yet the task went to station 3: not the closest feasible.
        events = [ev("migrate", request=1, station=3, src=0, task=0,
                     reserved_mhz=50.0,
                     detail=[[2, 80.0, "capacity"]])]
        _assert_mutation(events, "migration_target")

    def test_migration_target_honest_skips_pass(self):
        events = [ev("migrate", request=1, station=3, src=0, task=0,
                     reserved_mhz=50.0,
                     detail=[[1, 10.0, "capacity"],
                             [2, 80.0, "latency"]])]
        assert InvariantMonitor(mode="strict").check_events(events).ok

    def test_arm_replay(self):
        events = [ev("arm_eliminated", arm=3, value=500.0),
                  ev("arm_selected", slot=1, arm=3, value=500.0)]
        _assert_mutation(events, "arm_replay")

    def test_arm_separation(self):
        # UCB above the best LCB: the intervals had not separated.
        events = [ev("arm_eliminated", arm=2, value=400.0,
                     detail=[0.9, 0.5])]
        _assert_mutation(events, "arm_separation")

    def test_arm_separation_legal_elimination_passes(self):
        events = [ev("arm_selected", arm=2, value=400.0),
                  ev("arm_eliminated", slot=1, arm=2, value=400.0,
                     detail=[0.4, 0.5])]
        assert InvariantMonitor(mode="strict").check_events(events).ok

    def test_station_outage(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("arrival", request=1),
                  ev("station_down", slot=1, station=0),
                  ev("start", slot=1, request=1, station=0,
                     reward=0.0)]
        _assert_mutation(events, "station_outage")

    def test_station_recovers_after_outage(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("arrival", request=1),
                  ev("station_down", slot=1, station=0),
                  ev("station_up", slot=3, station=0, value=100.0),
                  ev("start", slot=3, request=1, station=0,
                     reward=1.0)]
        assert InvariantMonitor(mode="strict").check_events(events).ok

    def test_deferred_resolution_lost_request(self):
        events = [ev("arrival", request=1),
                  ev("admit_deferred", slot=0, request=1, value=1.0)]
        monitor = InvariantMonitor(mode="collect").check_events(events)
        monitor.finish(None)
        assert any(v.invariant == "deferred_resolution"
                   for v in monitor.violations)

    def test_deferred_resolution_started_later_passes(self):
        events = [ev("station_up", station=0, value=100.0),
                  ev("arrival", request=1),
                  ev("admit_deferred", slot=0, request=1, value=1.0),
                  ev("start", slot=2, request=1, station=0,
                     reward=1.0)]
        monitor = InvariantMonitor(mode="strict").check_events(events)
        assert monitor.finish(None).ok

    def test_every_invariant_has_a_mutation(self):
        """Meta-check: the suite above covers all named invariants."""
        import inspect

        source = inspect.getsource(TestMutations)
        for name in INVARIANTS:
            assert f'"{name}"' in source or f"'{name}'" in source


class TestOnlineMonitoring:
    def test_strict_monitor_fires_at_record_time(self):
        journal = Journal()
        monitor = InvariantMonitor(mode="strict")
        journal.attach(monitor)
        journal.record(ev("arrival", request=1))
        with pytest.raises(InvariantViolation):
            journal.record(ev("arrival", request=1))
        # The journal still holds both events; the monitor located
        # the second one.
        assert len(journal) == 2
        assert monitor.violations[0].index == 1


class TestSweepHelpers:
    class FakeRecord:
        def __init__(self, journal, metrics=None):
            self.journal = journal
            self.metrics = metrics or {}
            self.algorithm = "Algo"
            self.x = 1.0
            self.seed = 0

    def test_collect_sweep_journal_annotates(self):
        records = [self.FakeRecord(tuple(CLEAN)),
                   self.FakeRecord(None),
                   self.FakeRecord(tuple(CLEAN))]
        merged = collect_sweep_journal(records)
        assert len(merged) == 2 * len(CLEAN)
        assert merged[0]["run"] == 0
        assert merged[-1]["run"] == 2
        assert all(e["algorithm"] == "Algo" for e in merged)

    def test_audit_records_checks_each_run(self):
        good = self.FakeRecord(
            tuple(CLEAN), {"total_reward": 5.0, "num_admitted": 1})
        bad = self.FakeRecord(
            tuple(CLEAN), {"total_reward": 50.0, "num_admitted": 1})
        outcome = audit_records([good, bad, self.FakeRecord(None)])
        assert outcome.runs_audited == 2
        assert not outcome.ok
        assert len(outcome.violations) == 1
        tag, violation = outcome.violations[0]
        assert violation.invariant == "reward_accounting"

    def test_audit_outcome_requires_an_audited_run(self):
        assert not audit_records([self.FakeRecord(None)]).ok


class TestViolation:
    def test_str_includes_location(self):
        violation = Violation("capacity", "too much", index=7)
        assert "[capacity]" in str(violation)
        assert "event 7" in str(violation)

    def test_exception_carries_violation(self):
        violation = Violation("lifecycle", "bad")
        error = InvariantViolation(violation)
        assert error.violation is violation
        assert "lifecycle" in str(error)
