"""Unit tests for the streaming metrics runtime.

The contract under test: bounded memory (fixed bucket geometry, ring
window), slot-keyed (never wall-clock) sliding windows, canonical
snapshots, exact export/restore round-trips, and a null registry whose
every operation is a no-op.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.metrics import (EVENT_METRIC_MAP, NULL_REGISTRY,
                                     MetricsRegistry, NullRegistry,
                                     StreamingHistogram, get_metrics,
                                     set_metrics, use_metrics)


class TestStreamingHistogramBuckets:
    def test_bucket_bounds_are_geometric(self):
        hist = StreamingHistogram(lowest=1.0, growth=2.0, num_buckets=5)
        assert hist.bucket_index(0.5) == 0
        assert hist.bucket_index(1.0) == 0
        assert hist.bucket_index(1.5) == 1
        assert hist.bucket_index(2.0) == 1
        assert hist.bucket_index(3.0) == 2
        assert hist.bucket_index(1e9) == 4  # overflow bucket

    def test_observe_tracks_count_sum_min_max(self):
        hist = StreamingHistogram()
        for value in (0.5, 2.0, 0.25):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(2.75)
        assert hist.min == 0.25
        assert hist.max == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StreamingHistogram(lowest=0.0)
        with pytest.raises(ConfigurationError):
            StreamingHistogram(growth=1.0)
        with pytest.raises(ConfigurationError):
            StreamingHistogram(num_buckets=1)
        with pytest.raises(ConfigurationError):
            StreamingHistogram(window_slots=0)


class TestStreamingHistogramQuantiles:
    def test_empty_histogram_quantile_is_zero(self):
        assert StreamingHistogram().quantile(95.0) == 0.0

    def test_quantile_range_validated(self):
        hist = StreamingHistogram()
        with pytest.raises(ConfigurationError):
            hist.quantile(101.0)
        with pytest.raises(ConfigurationError):
            hist.quantile(-1.0)

    def test_quantiles_within_one_bucket_of_exact(self):
        """The accuracy guarantee: estimates land within one bucket's
        relative width of the exact order statistic."""
        hist = StreamingHistogram(lowest=1e-4, growth=2 ** 0.25,
                                  num_buckets=96)
        values = [0.001 * (1 + (i * 37) % 1000) for i in range(1000)]
        for value in values:
            hist.observe(value)
        ordered = sorted(values)
        for q in (50.0, 95.0, 99.0):
            exact = ordered[int(q / 100.0 * (len(ordered) - 1))]
            estimate = hist.quantile(q)
            assert estimate == pytest.approx(exact, rel=hist.growth - 1)

    def test_overflow_bucket_interpolates_toward_max(self):
        hist = StreamingHistogram(lowest=1.0, growth=2.0, num_buckets=3)
        hist.observe(100.0)  # far past the last bound (2.0)
        assert hist.quantile(100.0) <= 100.0
        assert hist.quantile(100.0) > 2.0


class TestStreamingHistogramWindow:
    def test_window_drops_old_slots(self):
        hist = StreamingHistogram(window_slots=4)
        hist.observe(1.0, slot=0)
        hist.observe(1.0, slot=10)
        assert sum(hist.window_counts()) == 1  # slot 0 aged out
        assert hist.count == 2  # lifetime totals keep everything

    def test_ring_cell_recycled_on_wraparound(self):
        hist = StreamingHistogram(window_slots=2)
        hist.observe(1.0, slot=0)
        hist.observe(1.0, slot=2)  # same cell as slot 0, must reset
        assert sum(hist.window_counts(slot=2)) == 1

    def test_window_quantile_sees_only_recent_slots(self):
        hist = StreamingHistogram(lowest=1e-3, growth=2.0,
                                  num_buckets=32, window_slots=8)
        for slot in range(100):
            hist.observe(100.0 if slot < 50 else 0.001, slot=slot)
        assert hist.quantile(95.0, window=True) < 1.0
        assert hist.quantile(95.0, window=False) > 1.0

    def test_window_counts_at_explicit_slot(self):
        hist = StreamingHistogram(window_slots=4)
        for slot in range(4):
            hist.observe(1.0, slot=slot)
        assert sum(hist.window_counts(slot=3)) == 4
        # An end slot past the window sees nothing.
        assert sum(hist.window_counts(slot=10)) == 0


class TestStreamingHistogramState:
    def test_export_restore_roundtrip_is_exact(self):
        hist = StreamingHistogram(lowest=1e-5, growth=1.5,
                                  num_buckets=16, window_slots=8)
        for slot in range(20):
            hist.observe(0.001 * (slot + 1), slot=slot)
        clone = StreamingHistogram.from_state(hist.export_state())
        assert clone.snapshot() == hist.snapshot()
        # And the clone keeps evolving identically.
        hist.observe(0.5, slot=21)
        clone.observe(0.5, slot=21)
        assert clone.snapshot() == hist.snapshot()

    def test_state_is_json_serializable(self):
        hist = StreamingHistogram()
        hist.observe(0.01, slot=3)
        restored = StreamingHistogram.from_state(
            json.loads(json.dumps(hist.export_state())))
        assert restored.snapshot() == hist.snapshot()

    def test_snapshot_shape(self):
        hist = StreamingHistogram()
        hist.observe(0.02, slot=1)
        snap = hist.snapshot()
        assert snap["count"] == 1
        assert {"p50", "p95", "p99", "window", "buckets"} <= set(snap)
        assert snap["window"]["count"] == 1
        [[upper, count]] = snap["buckets"]
        assert count == 1 and upper >= 0.02


class TestMetricsRegistry:
    def test_counters_accumulate_by_name_and_labels(self):
        registry = MetricsRegistry()
        registry.inc("lp_solves_total", mode="hit")
        registry.inc("lp_solves_total", 2.0, mode="hit")
        registry.inc("lp_solves_total", mode="cold")
        assert registry.counter("lp_solves_total", mode="hit") == 3.0
        assert registry.counter("lp_solves_total", mode="cold") == 1.0
        assert registry.counter("lp_solves_total") == 0.0

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        assert registry.gauge("queue_depth") is None
        registry.set_gauge("queue_depth", 3.0)
        registry.set_gauge("queue_depth", 1.0)
        assert registry.gauge("queue_depth") == 1.0

    def test_observe_creates_histogram_lazily(self):
        registry = MetricsRegistry(histogram_window_slots=7)
        assert registry.histogram("lat") is None
        registry.observe("lat", 0.5)
        assert registry.histogram("lat").window_slots == 7

    def test_observe_defaults_to_current_slot(self):
        registry = MetricsRegistry(histogram_window_slots=4)
        registry.advance_slot(9)
        registry.observe("lat", 1.0)
        hist = registry.histogram("lat")
        assert sum(hist.window_counts(slot=9)) == 1
        assert sum(hist.window_counts(slot=20)) == 0

    def test_advance_slot_is_monotone(self):
        registry = MetricsRegistry()
        registry.advance_slot(5)
        registry.advance_slot(3)
        assert registry.slot == 5

    def test_snapshot_is_canonical_and_jsonable(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("b_total")
        left.inc("a_total", mode="x")
        right.inc("a_total", mode="x")
        right.inc("b_total")
        assert (json.dumps(left.snapshot(), sort_keys=True)
                == json.dumps(right.snapshot(), sort_keys=True))
        assert list(left.snapshot()["counters"]) == \
            ['a_total{mode="x"}', "b_total"]

    def test_export_restore_roundtrip(self):
        registry = MetricsRegistry(histogram_window_slots=8)
        registry.advance_slot(4)
        registry.inc("a_total", 3.0, mode="hit")
        registry.set_gauge("depth", 2.0)
        registry.observe("lat", 0.01, slot=4)
        clone = MetricsRegistry()
        clone.restore_state(registry.export_state())
        assert clone.snapshot() == registry.snapshot()
        assert clone.slot == 4

    def test_restore_none_is_a_noop(self):
        registry = MetricsRegistry()
        registry.inc("kept_total")
        registry.restore_state(None)
        assert registry.counter("kept_total") == 1.0

    def test_clear(self):
        registry = MetricsRegistry()
        registry.advance_slot(3)
        registry.inc("a_total")
        registry.clear()
        assert registry.slot == 0
        assert registry.snapshot()["counters"] == {}

    def test_window_slots_validated(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(histogram_window_slots=0)


class TestPrometheusExposition:
    def test_counters_and_gauges_render_with_types(self):
        registry = MetricsRegistry()
        registry.inc("shed_total", 4, policy="greedy")
        registry.set_gauge("queue_depth", 7.0)
        text = registry.to_prometheus()
        assert "# TYPE shed_total counter" in text
        assert 'shed_total{policy="greedy"} 4' in text
        assert "# TYPE queue_depth gauge" in text
        assert "queue_depth 7" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        registry.register_histogram("lat", lowest=1.0, growth=2.0,
                                    num_buckets=3)
        registry.observe("lat", 0.5)
        registry.observe("lat", 1.5)
        registry.observe("lat", 99.0)
        lines = registry.to_prometheus().splitlines()
        buckets = [l for l in lines if l.startswith("lat_bucket")]
        assert buckets == ['lat_bucket{le="1"} 1',
                           'lat_bucket{le="2"} 2',
                           'lat_bucket{le="+Inf"} 3']
        assert "lat_count 3" in lines
        assert any(l.startswith("lat_sum ") for l in lines)

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestNullRegistry:
    def test_every_operation_is_a_noop(self):
        null = NullRegistry()
        null.advance_slot(5)
        null.inc("a_total", 2.0, mode="x")
        null.set_gauge("g", 1.0)
        null.observe("h", 0.5, slot=3)
        null.restore_state({"slot": 9})
        assert null.counter("a_total", mode="x") == 0.0
        assert null.gauge("g") is None
        assert null.histogram("h") is None
        assert null.snapshot() == {"slot": 0, "counters": {},
                                   "gauges": {}, "histograms": {}}
        assert null.to_prometheus() == ""
        assert null.export_state() is None

    def test_disabled_flag(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True


class TestAmbientRegistry:
    def test_default_is_the_null_registry(self):
        assert get_metrics() is NULL_REGISTRY

    def test_use_metrics_installs_and_restores(self):
        registry = MetricsRegistry()
        with use_metrics(registry) as current:
            assert current is registry
            assert get_metrics() is registry
        assert get_metrics() is NULL_REGISTRY

    def test_use_metrics_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_metrics(outer):
            with use_metrics(inner):
                assert get_metrics() is inner
            assert get_metrics() is outer
        assert get_metrics() is NULL_REGISTRY

    def test_use_metrics_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with use_metrics(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_metrics() is NULL_REGISTRY

    def test_set_metrics_none_restores_null(self):
        set_metrics(MetricsRegistry())
        try:
            assert get_metrics() is not NULL_REGISTRY
        finally:
            set_metrics(None)
        assert get_metrics() is NULL_REGISTRY


class TestEventMetricMap:
    def test_every_entry_names_at_least_one_metric(self):
        assert EVENT_METRIC_MAP
        for kind, names in EVENT_METRIC_MAP.items():
            assert isinstance(kind, str)
            assert names, f"{kind} maps to no metric"

    def test_map_values_are_finite_after_instrumented_run(self):
        """Sanity: the mapped names are usable registry names."""
        registry = MetricsRegistry()
        for names in EVENT_METRIC_MAP.values():
            for name in names:
                registry.inc(name)
        for value in registry.snapshot()["counters"].values():
            assert math.isfinite(value)
