"""Tests for the deterministic profiling harness (ProfileDigest)."""

import cProfile
import json
import tracemalloc

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import Tracer
from repro.telemetry.profiling import (
    COUNTER_OWNERS, DIGEST_SCHEMA, PROFILE_SET_SCHEMA, ProfileDigest,
    SpanProfile, canonical_digest, capture_memory_top, capture_stats,
    counter_base, digest_from_events, folded_from_digest,
    folded_from_stats, load_profile_set, merge_digests, merge_memory,
    merge_stats, render_digest, render_memory_top, series_id,
    top_functions, write_folded, write_profile_set)


class StepClock:
    def __init__(self, *instants):
        self._instants = list(instants)

    def __call__(self):
        if self._instants:
            return self._instants.pop(0)
        return 0.0


def traced_run():
    # run: 0 -> 10; lp_solve: 1 -> 4; nested lp_solve: 2 -> 3.
    tracer = Tracer(clock=StepClock(0.0, 1.0, 2.0, 3.0, 4.0, 10.0))
    with tracer.span("offline_run"):
        with tracer.span("lp_solve"):
            with tracer.span("lp_solve"):
                pass
            tracer.count("lp_solves_total", 1, mode="cold")
        tracer.count("simplex_iterations_total", 12, phase="primal")
    return tracer.events()


class TestDigestFromEvents:
    def test_reentrant_span_gets_longer_path(self):
        digest = digest_from_events(traced_run())
        assert "offline_run/lp_solve" in digest.spans
        assert "offline_run/lp_solve/lp_solve" in digest.spans
        outer = digest.spans["offline_run/lp_solve"]
        inner = digest.spans["offline_run/lp_solve/lp_solve"]
        assert outer.calls == 1 and inner.calls == 1
        assert outer.total_s == pytest.approx(3.0)
        assert inner.total_s == pytest.approx(1.0)

    def test_self_time_subtracts_children(self):
        digest = digest_from_events(traced_run())
        assert digest.spans["offline_run"].self_s == pytest.approx(7.0)
        assert digest.spans["offline_run/lp_solve"].self_s \
            == pytest.approx(2.0)

    def test_top_level_is_parentless_only(self):
        digest = digest_from_events(traced_run())
        assert digest.top_level_s == pytest.approx(10.0)

    def test_counters_fold_under_flat_series_ids(self):
        digest = digest_from_events(traced_run())
        assert digest.counters['lp_solves_total{mode="cold"}'] == 1
        assert digest.counters[
            'simplex_iterations_total{phase="primal"}'] == 12

    def test_registry_counters_share_the_namespace(self):
        digest = digest_from_events(
            traced_run(), {"rounding_admits_total": 5.0})
        assert digest.counters["rounding_admits_total"] == 5.0

    def test_counter_owner_join(self):
        digest = digest_from_events(
            traced_run(), {"rounding_admits_total": 5.0})
        mine = digest.span_counters("lp_solve")
        assert 'lp_solves_total{mode="cold"}' in mine
        assert 'simplex_iterations_total{phase="primal"}' in mine
        assert "rounding_admits_total" not in mine
        assert digest.span_counters("rounding") \
            == {"rounding_admits_total": 5.0}

    def test_counter_owner_map_targets_real_leaves(self):
        # Every owner in the static map is a plain span name.
        for base, owner in COUNTER_OWNERS.items():
            assert "/" not in owner
            assert counter_base(base) == base


class TestSeriesIds:
    def test_series_id_sorts_labels(self):
        assert series_id("c", {"b": 1, "a": 2}) == 'c{a="2",b="1"}'
        assert series_id("c", {}) == "c"

    def test_counter_base_strips_labels(self):
        assert counter_base('c{a="1"}') == "c"
        assert counter_base("plain") == "plain"


class TestMergeAndCanonical:
    def test_merge_sums_calls_and_counters(self):
        one = digest_from_events(traced_run())
        two = merge_digests([one, digest_from_events(traced_run())])
        assert two.runs == 2
        assert two.spans["offline_run"].calls == 2
        assert two.counters['lp_solves_total{mode="cold"}'] == 2

    def test_merge_accepts_dicts(self):
        one = digest_from_events(traced_run())
        again = merge_digests([one.to_dict()])
        assert canonical_digest(again) == canonical_digest(one)

    def test_min_max_merge(self):
        a = SpanProfile("s", calls=1, total_s=1.0, self_s=1.0,
                        min_s=1.0, max_s=1.0)
        b = SpanProfile("s", calls=1, total_s=3.0, self_s=3.0,
                        min_s=3.0, max_s=3.0)
        a.absorb(b)
        assert a.min_s == 1.0 and a.max_s == 3.0 and a.calls == 2

    def test_canonical_strips_wall_clock_fields(self):
        canon = canonical_digest(digest_from_events(traced_run()))
        for row in canon["spans"].values():
            assert set(row) == {"calls"}
        assert "top_level_s" not in canon
        assert canon["schema"] == DIGEST_SCHEMA

    def test_round_trip(self):
        digest = digest_from_events(traced_run())
        rebuilt = ProfileDigest.from_dict(
            json.loads(json.dumps(digest.to_dict())))
        assert rebuilt.to_dict() == digest.to_dict()

    def test_malformed_digest_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ProfileDigest.from_dict({"spans": {"a": "nonsense"}})


class TestRender:
    def test_render_orders_by_self_time(self):
        text = render_digest(digest_from_events(traced_run()))
        lines = text.splitlines()
        first = next(line for line in lines[1:] if line.strip())
        assert first.startswith("offline_run ")
        assert "[lp_solve]" in text  # owner tag on joined counters

    def test_render_markdown(self):
        text = render_digest(digest_from_events(traced_run()),
                             markdown=True)
        assert text.splitlines()[0].startswith("| span path |")


class TestProfileSetIO:
    def test_write_and_load(self, tmp_path):
        digest = digest_from_events(traced_run())
        path = tmp_path / "PROF_x.json"
        write_profile_set(path, {"Appro": digest})
        data = json.loads(path.read_text())
        assert data["schema"] == PROFILE_SET_SCHEMA
        loaded = load_profile_set(path)
        assert canonical_digest(loaded["Appro"]) \
            == canonical_digest(digest)

    def test_load_bare_digest(self, tmp_path):
        digest = digest_from_events(traced_run())
        path = tmp_path / "digest.json"
        path.write_text(json.dumps(digest.to_dict()))
        loaded = load_profile_set(path)
        assert list(loaded) == ["profile"]

    def test_load_bench_manifest_profiles(self, tmp_path):
        from repro.telemetry.ledger import RunManifest, write_bench
        digest = digest_from_events(traced_run())
        manifest = RunManifest(
            name="fig3", created_at="2026-08-08T00:00:00Z",
            git_rev="deadbeef", config_hash="abc", seeds=(0,),
            workers=1, python_version="3.11", numpy_version="1.26",
            platform="test", peak_rss_kb=None,
            phases={}, metrics={},
            profiles={"Appro": digest.to_dict()})
        path = tmp_path / "BENCH_fig3.json"
        write_bench(path, manifest)
        loaded = load_profile_set(path)
        assert "Appro" in loaded

    def test_load_without_digests_raises(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"schema": PROFILE_SET_SCHEMA,
                                    "digests": {}}))
        with pytest.raises(ConfigurationError):
            load_profile_set(path)


def _busy_profile():
    profiler = cProfile.Profile()
    profiler.enable()
    sum(i * i for i in range(2000))
    sorted(range(500), key=lambda v: -v)
    profiler.disable()
    return profiler


class TestStats:
    def test_capture_stats_is_picklable_shape(self):
        stats = capture_stats(_busy_profile())
        assert stats
        for func_id, row in stats.items():
            assert isinstance(func_id, str)
            assert {"calls", "prim", "tt", "ct"} <= set(row)
            json.dumps(row)  # plain data, no Stats objects

    def test_merge_stats_sums(self):
        one = capture_stats(_busy_profile())
        merged = merge_stats([one, one])
        some = next(iter(one))
        assert merged[some]["calls"] == 2 * one[some]["calls"]

    def test_top_functions(self):
        rows = top_functions(capture_stats(_busy_profile()), top=5)
        assert 0 < len(rows) <= 5

    def test_folded_lines_have_weights(self, tmp_path):
        lines = folded_from_stats(capture_stats(_busy_profile()))
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) >= 1
            assert stack
        out = write_folded(tmp_path / "p.folded", lines)
        assert out.read_text().count("\n") == len(lines)

    def test_folded_from_digest(self):
        lines = folded_from_digest(digest_from_events(traced_run()))
        stacks = {line.rsplit(" ", 1)[0] for line in lines}
        assert "offline_run;lp_solve;lp_solve" in stacks


class TestMemory:
    def test_capture_and_merge(self):
        own = not tracemalloc.is_tracing()
        if own:
            tracemalloc.start()
        try:
            blob = [bytes(1000) for _ in range(50)]
            rows = capture_memory_top(tracemalloc.take_snapshot(),
                                      top=10)
        finally:
            del blob
            if own:
                tracemalloc.stop()
        assert rows and all({"site", "size_kb", "count"} <= set(r)
                            for r in rows)
        merged = merge_memory([rows, rows], top=5)
        assert len(merged) <= 5
        assert merged[0]["size_kb"] >= merged[-1]["size_kb"]
        assert "allocation site" in render_memory_top(merged)
