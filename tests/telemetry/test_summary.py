"""Tests for trace aggregation and the breakdown renderer."""

import numpy as np
import pytest

from repro.telemetry import Tracer, render_summary, summarize_events
from repro.telemetry.export import collect_sweep_trace
from repro.telemetry.summary import percentile_linear
from repro.sim.results import RunRecord


class StepClock:
    """Returns preprogrammed instants, then keeps stepping by 1."""

    def __init__(self, *instants):
        self._instants = list(instants)

    def __call__(self):
        if self._instants:
            return self._instants.pop(0)
        return 0.0


def nested_trace():
    # outer: 0 -> 10 (duration 10); inner: 2 -> 5 (duration 3).
    tracer = Tracer(clock=StepClock(0.0, 2.0, 5.0, 10.0))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.count("drops", 4)
    tracer.observe("threshold_mhz", 500.0)
    tracer.observe("threshold_mhz", 700.0)
    return tracer.events()


class TestSummarizeEvents:
    def test_span_stats(self):
        summary = summarize_events(nested_trace())
        outer = summary.spans["outer"]
        inner = summary.spans["inner"]
        assert outer.count == 1
        assert outer.total_s == pytest.approx(10.0)
        assert outer.mean_s == pytest.approx(10.0)
        assert inner.total_s == pytest.approx(3.0)

    def test_self_time_subtracts_direct_children(self):
        summary = summarize_events(nested_trace())
        assert summary.spans["outer"].self_s == pytest.approx(7.0)
        assert summary.spans["inner"].self_s == pytest.approx(3.0)

    def test_top_level_total_counts_only_parentless_spans(self):
        summary = summarize_events(nested_trace())
        assert summary.top_level_s == pytest.approx(10.0)

    def test_counters_and_values_totalled(self):
        summary = summarize_events(nested_trace() + nested_trace())
        assert summary.counters["drops"] == pytest.approx(8.0)
        assert summary.values["threshold_mhz"] == [500.0, 700.0,
                                                   500.0, 700.0]

    def test_p95(self):
        tracer = Tracer(clock=StepClock(*[float(i) for i in
                                          range(0, 2 * 100, 1)]))
        # 100 spans of duration 1.0 each.
        for _ in range(100):
            with tracer.span("s"):
                pass
        summary = summarize_events(tracer.events())
        assert summary.spans["s"].p95_s == pytest.approx(1.0)

    def test_merged_runs_do_not_cross_link_parents(self):
        records = [RunRecord("A", 1.0, 0, {}, trace=tuple(nested_trace())),
                   RunRecord("B", 1.0, 0, {}, trace=tuple(nested_trace()))]
        merged = collect_sweep_trace(records)
        summary = summarize_events(merged)
        # Two runs: outer self time doubles, not corrupted by reused
        # seq numbers across runs.
        assert summary.spans["outer"].self_s == pytest.approx(14.0)
        assert summary.top_level_s == pytest.approx(20.0)

    def test_attributed_fraction(self):
        summary = summarize_events(nested_trace())
        assert summary.attributed_fraction(10.0) == pytest.approx(1.0)
        assert summary.attributed_fraction(20.0) == pytest.approx(0.5)
        assert summary.attributed_fraction(None) == 1.0
        assert summarize_events([]).attributed_fraction(None) == 0.0


def reentrant_trace():
    # outer lp_solve: 0 -> 10; nested lp_solve (recursive refinement
    # pass): 2 -> 6; its nested child (different name): 3 -> 4.
    tracer = Tracer(clock=StepClock(0.0, 2.0, 3.0, 4.0, 6.0, 10.0))
    with tracer.span("lp_solve"):
        with tracer.span("lp_solve"):
            with tracer.span("pivot"):
                pass
    return tracer.events()


class TestReentrantSpans:
    """A name nested inside itself must not double-count total time."""

    def test_total_counts_outermost_occurrence_only(self):
        summary = summarize_events(reentrant_trace())
        stats = summary.spans["lp_solve"]
        # Naive aggregation would report 10 + 4 = 14s for a 10s run.
        assert stats.total_s == pytest.approx(10.0)
        assert summary.top_level_s == pytest.approx(10.0)

    def test_count_and_distribution_see_every_call(self):
        summary = summarize_events(reentrant_trace())
        stats = summary.spans["lp_solve"]
        assert stats.count == 2
        assert sorted(stats.durations) == pytest.approx([4.0, 10.0])
        assert stats.mean_s == pytest.approx(7.0)
        assert stats.min_s == pytest.approx(4.0)
        assert stats.max_s == pytest.approx(10.0)

    def test_self_time_still_sums_to_wall_time(self):
        summary = summarize_events(reentrant_trace())
        # outer self 10-4=6, inner self 4-1=3, pivot self 1.
        assert summary.spans["lp_solve"].self_s == pytest.approx(9.0)
        assert summary.spans["pivot"].self_s == pytest.approx(1.0)
        total_self = sum(s.self_s for s in summary.spans.values())
        assert total_self == pytest.approx(summary.top_level_s)

    def test_share_never_exceeds_100_percent(self):
        text = render_summary(reentrant_trace())
        row = next(line for line in text.splitlines()
                   if line.startswith("lp_solve"))
        assert row.rstrip().endswith("100.0")

    def test_deep_same_name_chain(self):
        tracer = Tracer(clock=StepClock(0.0, 1.0, 2.0, 3.0, 4.0, 5.0))
        with tracer.span("r"):
            with tracer.span("r"):
                with tracer.span("r"):
                    pass
        summary = summarize_events(tracer.events())
        stats = summary.spans["r"]
        assert stats.count == 3
        assert stats.total_s == pytest.approx(5.0)
        assert summary.top_level_s == pytest.approx(5.0)

    def test_siblings_with_same_name_both_count(self):
        # Two same-name spans side by side are NOT re-entrant.
        tracer = Tracer(clock=StepClock(0.0, 1.0, 2.0, 3.0))
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        summary = summarize_events(tracer.events())
        assert summary.spans["s"].total_s == pytest.approx(2.0)


class TestPercentileLinear:
    """The p95 estimator is pinned to linear interpolation so the
    summary cannot drift if a future NumPy changes the default."""

    def test_matches_linear_interpolation(self):
        data = [0.0, 1.0, 2.0, 3.0]
        # Linear interpolation: p50 of [0..3] sits between 1 and 2.
        assert percentile_linear(data, 50) == pytest.approx(1.5)
        assert percentile_linear(data, 95) == pytest.approx(2.85)

    def test_matches_numpy_linear_spelling(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 10, size=101)
        try:
            expected = float(np.percentile(data, 95, method="linear"))
        except TypeError:  # numpy < 1.22
            expected = float(np.percentile(data, 95,
                                           interpolation="linear"))
        assert percentile_linear(data, 95) == expected

    def test_p95_uses_pinned_estimator(self):
        tracer = Tracer(clock=StepClock(0.0, 1.0, 1.0, 3.0))
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        summary = summarize_events(tracer.events())
        # Durations [1.0, 2.0]: linear p95 = 1.95 exactly.
        assert summary.spans["s"].p95_s == pytest.approx(1.95)


class TestRenderSummary:
    def test_text_table_contains_spans_sorted_by_total(self):
        text = render_summary(nested_trace())
        lines = text.splitlines()
        assert "span" in lines[0]
        outer_at = next(i for i, line in enumerate(lines)
                        if line.startswith("outer"))
        inner_at = next(i for i, line in enumerate(lines)
                        if line.startswith("inner"))
        assert outer_at < inner_at
        assert "drops = 4" in text
        assert "threshold_mhz" in text

    def test_markdown_table(self):
        text = render_summary(nested_trace(), markdown=True)
        assert text.splitlines()[0].startswith("| span |")
        assert "|---" in text.splitlines()[1]

    def test_min_max_columns(self):
        tracer = Tracer(clock=StepClock(0.0, 1.0, 1.0, 4.0))
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        text = render_summary(tracer.events())
        header = text.splitlines()[0]
        assert "min_ms" in header and "max_ms" in header
        row = next(line for line in text.splitlines()
                   if line.startswith("s "))
        assert "1000.000" in row and "3000.000" in row

    def test_total_override_changes_share(self):
        text = render_summary(nested_trace(), total_s=20.0)
        outer_row = next(line for line in text.splitlines()
                         if line.startswith("outer"))
        assert outer_row.rstrip().endswith("50.0")

    def test_empty_trace(self):
        assert "(no spans recorded)" in render_summary([])
