"""Tests for trace aggregation and the breakdown renderer."""

import numpy as np
import pytest

from repro.telemetry import Tracer, render_summary, summarize_events
from repro.telemetry.export import collect_sweep_trace
from repro.telemetry.summary import percentile_linear
from repro.sim.results import RunRecord


class StepClock:
    """Returns preprogrammed instants, then keeps stepping by 1."""

    def __init__(self, *instants):
        self._instants = list(instants)

    def __call__(self):
        if self._instants:
            return self._instants.pop(0)
        return 0.0


def nested_trace():
    # outer: 0 -> 10 (duration 10); inner: 2 -> 5 (duration 3).
    tracer = Tracer(clock=StepClock(0.0, 2.0, 5.0, 10.0))
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tracer.count("drops", 4)
    tracer.observe("threshold_mhz", 500.0)
    tracer.observe("threshold_mhz", 700.0)
    return tracer.events()


class TestSummarizeEvents:
    def test_span_stats(self):
        summary = summarize_events(nested_trace())
        outer = summary.spans["outer"]
        inner = summary.spans["inner"]
        assert outer.count == 1
        assert outer.total_s == pytest.approx(10.0)
        assert outer.mean_s == pytest.approx(10.0)
        assert inner.total_s == pytest.approx(3.0)

    def test_self_time_subtracts_direct_children(self):
        summary = summarize_events(nested_trace())
        assert summary.spans["outer"].self_s == pytest.approx(7.0)
        assert summary.spans["inner"].self_s == pytest.approx(3.0)

    def test_top_level_total_counts_only_parentless_spans(self):
        summary = summarize_events(nested_trace())
        assert summary.top_level_s == pytest.approx(10.0)

    def test_counters_and_values_totalled(self):
        summary = summarize_events(nested_trace() + nested_trace())
        assert summary.counters["drops"] == pytest.approx(8.0)
        assert summary.values["threshold_mhz"] == [500.0, 700.0,
                                                   500.0, 700.0]

    def test_p95(self):
        tracer = Tracer(clock=StepClock(*[float(i) for i in
                                          range(0, 2 * 100, 1)]))
        # 100 spans of duration 1.0 each.
        for _ in range(100):
            with tracer.span("s"):
                pass
        summary = summarize_events(tracer.events())
        assert summary.spans["s"].p95_s == pytest.approx(1.0)

    def test_merged_runs_do_not_cross_link_parents(self):
        records = [RunRecord("A", 1.0, 0, {}, trace=tuple(nested_trace())),
                   RunRecord("B", 1.0, 0, {}, trace=tuple(nested_trace()))]
        merged = collect_sweep_trace(records)
        summary = summarize_events(merged)
        # Two runs: outer self time doubles, not corrupted by reused
        # seq numbers across runs.
        assert summary.spans["outer"].self_s == pytest.approx(14.0)
        assert summary.top_level_s == pytest.approx(20.0)

    def test_attributed_fraction(self):
        summary = summarize_events(nested_trace())
        assert summary.attributed_fraction(10.0) == pytest.approx(1.0)
        assert summary.attributed_fraction(20.0) == pytest.approx(0.5)
        assert summary.attributed_fraction(None) == 1.0
        assert summarize_events([]).attributed_fraction(None) == 0.0


class TestPercentileLinear:
    """The p95 estimator is pinned to linear interpolation so the
    summary cannot drift if a future NumPy changes the default."""

    def test_matches_linear_interpolation(self):
        data = [0.0, 1.0, 2.0, 3.0]
        # Linear interpolation: p50 of [0..3] sits between 1 and 2.
        assert percentile_linear(data, 50) == pytest.approx(1.5)
        assert percentile_linear(data, 95) == pytest.approx(2.85)

    def test_matches_numpy_linear_spelling(self):
        rng = np.random.default_rng(7)
        data = rng.uniform(0, 10, size=101)
        try:
            expected = float(np.percentile(data, 95, method="linear"))
        except TypeError:  # numpy < 1.22
            expected = float(np.percentile(data, 95,
                                           interpolation="linear"))
        assert percentile_linear(data, 95) == expected

    def test_p95_uses_pinned_estimator(self):
        tracer = Tracer(clock=StepClock(0.0, 1.0, 1.0, 3.0))
        with tracer.span("s"):
            pass
        with tracer.span("s"):
            pass
        summary = summarize_events(tracer.events())
        # Durations [1.0, 2.0]: linear p95 = 1.95 exactly.
        assert summary.spans["s"].p95_s == pytest.approx(1.95)


class TestRenderSummary:
    def test_text_table_contains_spans_sorted_by_total(self):
        text = render_summary(nested_trace())
        lines = text.splitlines()
        assert "span" in lines[0]
        outer_at = next(i for i, line in enumerate(lines)
                        if line.startswith("outer"))
        inner_at = next(i for i, line in enumerate(lines)
                        if line.startswith("inner"))
        assert outer_at < inner_at
        assert "drops = 4" in text
        assert "threshold_mhz" in text

    def test_markdown_table(self):
        text = render_summary(nested_trace(), markdown=True)
        assert text.splitlines()[0].startswith("| span |")
        assert "|---" in text.splitlines()[1]

    def test_total_override_changes_share(self):
        text = render_summary(nested_trace(), total_s=20.0)
        outer_row = next(line for line in text.splitlines()
                         if line.startswith("outer"))
        assert outer_row.rstrip().endswith("50.0")

    def test_empty_trace(self):
        assert "(no spans recorded)" in render_summary([])
