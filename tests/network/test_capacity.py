"""Unit and property tests for resource slots and the capacity ledger."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.exceptions import CapacityError, ConfigurationError
from repro.network.capacity import CapacityLedger, ResourceSlots
from repro.network.topology import generate_topology


@pytest.fixture()
def net():
    return generate_topology(NetworkConfig(num_base_stations=4), rng=0)


@pytest.fixture()
def ledger(net):
    return CapacityLedger(net)


class TestResourceSlots:
    def test_paper_geometry(self):
        slots = ResourceSlots(capacity_mhz=3300.0, slot_size_mhz=1000.0)
        assert slots.num_slots == 3
        assert slots.slot_offset_mhz(0) == 0.0
        assert slots.slot_offset_mhz(2) == 2000.0

    def test_remaining_after(self):
        slots = ResourceSlots(capacity_mhz=3300.0, slot_size_mhz=1000.0)
        assert slots.remaining_after_mhz(0) == pytest.approx(3300.0)
        assert slots.remaining_after_mhz(2) == pytest.approx(1300.0)

    def test_slot_bounds(self):
        slots = ResourceSlots(capacity_mhz=3300.0, slot_size_mhz=1000.0)
        with pytest.raises(ConfigurationError):
            slots.slot_offset_mhz(3)
        with pytest.raises(ConfigurationError):
            slots.slot_offset_mhz(-1)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ResourceSlots(capacity_mhz=0.0, slot_size_mhz=100.0)
        with pytest.raises(ConfigurationError):
            ResourceSlots(capacity_mhz=100.0, slot_size_mhz=0.0)

    @settings(max_examples=30, deadline=None)
    @given(capacity=st.floats(min_value=100.0, max_value=10000.0),
           slot=st.floats(min_value=10.0, max_value=100.0))
    def test_offsets_monotone_property(self, capacity, slot):
        slots = ResourceSlots(capacity_mhz=capacity, slot_size_mhz=slot)
        offsets = [slots.slot_offset_mhz(i) for i in range(slots.num_slots)]
        assert offsets == sorted(offsets)
        assert all(off < capacity for off in offsets)


class TestLedgerBasics:
    def test_initially_empty(self, net, ledger):
        for sid in net.station_ids:
            assert ledger.occupied_mhz(sid) == 0.0
            assert ledger.free_mhz(sid) == net.station(sid).capacity_mhz

    def test_reserve_release_cycle(self, ledger):
        ledger.reserve(1, 0, 500.0)
        assert ledger.occupied_mhz(0) == pytest.approx(500.0)
        assert ledger.holding_mhz(1, 0) == pytest.approx(500.0)
        ledger.release(1, 0, 500.0)
        assert ledger.occupied_mhz(0) == pytest.approx(0.0)
        assert ledger.holding_mhz(1, 0) == 0.0

    def test_overfill_raises(self, net, ledger):
        capacity = net.station(0).capacity_mhz
        with pytest.raises(CapacityError):
            ledger.reserve(1, 0, capacity + 1.0)

    def test_over_release_raises(self, ledger):
        ledger.reserve(1, 0, 100.0)
        with pytest.raises(CapacityError):
            ledger.release(1, 0, 200.0)

    def test_release_all(self, ledger):
        ledger.reserve(1, 0, 100.0)
        ledger.reserve(1, 1, 200.0)
        ledger.release_all(1)
        assert ledger.occupied_mhz(0) == 0.0
        assert ledger.occupied_mhz(1) == 0.0
        # Idempotent.
        ledger.release_all(1)

    def test_stations_of(self, ledger):
        ledger.reserve(7, 2, 10.0)
        ledger.reserve(7, 0, 10.0)
        assert ledger.stations_of(7) == [0, 2]

    def test_unknown_station_raises(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.occupied_mhz(99)

    def test_negative_demand_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.fits(0, -1.0)
        with pytest.raises(ConfigurationError):
            ledger.reserve(1, 0, -1.0)


class TestPrefixOpen:
    def test_slot_zero_open_only_when_empty(self, ledger):
        assert ledger.prefix_open(0, 0)
        ledger.reserve(1, 0, 1.0)
        assert not ledger.prefix_open(0, 0)

    def test_higher_slots_tolerate_occupancy(self, ledger):
        ledger.reserve(1, 0, 900.0)
        assert ledger.prefix_open(0, 1)   # 900 <= 1000
        ledger.reserve(2, 0, 900.0)
        assert not ledger.prefix_open(0, 1)  # 1800 > 1000
        assert ledger.prefix_open(0, 2)   # 1800 <= 2000


class TestMigration:
    def test_migrate_moves_holding(self, ledger):
        ledger.reserve(1, 0, 400.0)
        ledger.migrate(1, 0, 1, 250.0)
        assert ledger.holding_mhz(1, 0) == pytest.approx(150.0)
        assert ledger.holding_mhz(1, 1) == pytest.approx(250.0)

    def test_migrate_rejects_when_target_full(self, net, ledger):
        capacity = net.station(1).capacity_mhz
        ledger.reserve(9, 1, capacity)
        ledger.reserve(1, 0, 400.0)
        with pytest.raises(CapacityError):
            ledger.migrate(1, 0, 1, 400.0)
        # State unchanged on failure.
        assert ledger.holding_mhz(1, 0) == pytest.approx(400.0)

    def test_utilization(self, net, ledger):
        ledger.reserve(1, 0, net.station(0).capacity_mhz / 2.0)
        util = ledger.utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0


class TestLedgerInvariants:
    @settings(max_examples=30, deadline=None)
    @given(amounts=st.lists(
        st.floats(min_value=1.0, max_value=400.0), min_size=1, max_size=20))
    def test_occupied_equals_sum_of_holdings(self, amounts):
        net = generate_topology(NetworkConfig(num_base_stations=3), rng=1)
        ledger = CapacityLedger(net)
        reserved = []
        for i, amount in enumerate(amounts):
            sid = i % 3
            if ledger.fits(sid, amount):
                ledger.reserve(i, sid, amount)
                reserved.append((i, sid, amount))
        for sid in net.station_ids:
            total = sum(a for (_i, s, a) in reserved if s == sid)
            assert ledger.occupied_mhz(sid) == pytest.approx(total)
            assert ledger.occupied_mhz(sid) <= (
                net.station(sid).capacity_mhz + 1e-9)
