"""Unit and property tests for the shortest-path table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError
from repro.network.paths import PathTable
from repro.network.topology import generate_topology


@pytest.fixture(scope="module")
def net():
    return generate_topology(NetworkConfig(num_base_stations=12), rng=3)


@pytest.fixture(scope="module")
def table(net):
    return PathTable(net)


class TestDelays:
    def test_self_delay_zero(self, net, table):
        for sid in net.station_ids:
            assert table.one_way_delay_ms(sid, sid) == 0.0

    def test_symmetry(self, net, table):
        for u in net.station_ids:
            for v in net.station_ids:
                assert table.one_way_delay_ms(u, v) == pytest.approx(
                    table.one_way_delay_ms(v, u))

    def test_round_trip_is_twice_one_way(self, net, table):
        u, v = net.station_ids[0], net.station_ids[-1]
        assert table.round_trip_delay_ms(u, v) == pytest.approx(
            2.0 * table.one_way_delay_ms(u, v))

    def test_triangle_inequality(self, net, table):
        ids = net.station_ids
        for u in ids[:6]:
            for v in ids[:6]:
                for w in ids[:6]:
                    assert (table.one_way_delay_ms(u, w)
                            <= table.one_way_delay_ms(u, v)
                            + table.one_way_delay_ms(v, w) + 1e-9)

    def test_path_delay_matches_link_sum(self, net, table):
        u, v = net.station_ids[0], net.station_ids[-1]
        path = table.path(u, v)
        total = sum(net.link_delay_ms(a, b)
                    for a, b in zip(path, path[1:]))
        assert total == pytest.approx(table.one_way_delay_ms(u, v))

    def test_unknown_station_raises(self, table):
        with pytest.raises(ConfigurationError):
            table.one_way_delay_ms(0, 999)


class TestPathStructure:
    def test_path_endpoints(self, net, table):
        u, v = 0, net.station_ids[-1]
        path = table.path(u, v)
        assert path[0] == u and path[-1] == v

    def test_path_uses_real_edges(self, net, table):
        u, v = 0, net.station_ids[-1]
        path = table.path(u, v)
        for a, b in zip(path, path[1:]):
            assert net.graph.has_edge(a, b)

    def test_hop_count(self, net, table):
        u, v = 0, net.station_ids[-1]
        assert table.hop_count(u, v) == len(table.path(u, v)) - 1
        assert table.hop_count(u, u) == 0


class TestNearest:
    def test_nearest_by_delay_is_minimum(self, net, table):
        src = 0
        nearest = table.nearest_by_delay(src)
        best = min(table.one_way_delay_ms(src, sid)
                   for sid in net.station_ids if sid != src)
        assert table.one_way_delay_ms(src, nearest) == pytest.approx(best)

    def test_nearest_excludes(self, net, table):
        src = 0
        first = table.nearest_by_delay(src)
        second = table.nearest_by_delay(src, exclude=(first,))
        assert second not in (src, first)

    def test_nearest_all_excluded_raises(self, net, table):
        others = tuple(sid for sid in net.station_ids if sid != 0)
        with pytest.raises(ConfigurationError):
            table.nearest_by_delay(0, exclude=others)

    def test_stations_by_delay_sorted(self, net, table):
        order = table.stations_by_delay(0)
        delays = [table.one_way_delay_ms(0, sid) for sid in order]
        assert delays == sorted(delays)
        assert len(order) == len(net) - 1

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=200))
    def test_all_pairs_reachable_property(self, seed):
        net = generate_topology(NetworkConfig(num_base_stations=9),
                                rng=seed)
        table = PathTable(net)
        for u in net.station_ids:
            for v in net.station_ids:
                assert table.one_way_delay_ms(u, v) >= 0.0
