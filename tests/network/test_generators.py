"""Unit tests for the extra topology families."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError
from repro.network.generators import (generate_grid, generate_ring,
                                      generate_star,
                                      generate_transit_stub)

CFG = NetworkConfig(num_base_stations=12)


class TestTransitStub:
    def test_connected_with_right_size(self):
        net = generate_transit_stub(CFG, num_transit=4, rng=0)
        assert len(net) == 12
        assert nx.is_connected(net.graph)

    def test_core_is_ring(self):
        net = generate_transit_stub(CFG, num_transit=4, rng=0)
        for t in range(4):
            assert net.graph.has_edge(t, (t + 1) % 4)

    def test_stub_nodes_attach_to_transit(self):
        net = generate_transit_stub(CFG, num_transit=4, rng=0)
        for node in range(4, 12):
            transit_neighbors = [nb for nb in net.graph.neighbors(node)
                                 if nb < 4]
            assert transit_neighbors, f"stub {node} has no uplink"

    def test_capacities_and_delays_in_range(self):
        net = generate_transit_stub(CFG, num_transit=3, rng=1)
        for bs in net:
            assert 3000.0 <= bs.capacity_mhz <= 3600.0
        for u, v in net.graph.edges:
            assert 2.0 <= net.link_delay_ms(u, v) <= 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_transit_stub(CFG, num_transit=0)
        with pytest.raises(ConfigurationError):
            generate_transit_stub(CFG, num_transit=12)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=2, max_value=25),
           seed=st.integers(min_value=0, max_value=100))
    def test_always_connected_property(self, n, seed):
        cfg = NetworkConfig(num_base_stations=n)
        transit = max(1, min(4, n - 1))
        net = generate_transit_stub(cfg, num_transit=transit, rng=seed)
        assert nx.is_connected(net.graph)


class TestRegularFamilies:
    def test_ring_degree(self):
        net = generate_ring(CFG, rng=0)
        assert nx.is_connected(net.graph)
        degrees = [d for _n, d in net.graph.degree()]
        assert all(d == 2 for d in degrees)

    def test_star_hub(self):
        net = generate_star(CFG, rng=0)
        assert net.graph.degree(0) == 11
        assert all(net.graph.degree(i) == 1 for i in range(1, 12))

    def test_grid_structure(self):
        cfg = NetworkConfig(num_base_stations=9)
        net = generate_grid(cfg, rng=0)
        assert nx.is_connected(net.graph)
        # Interior node of a 3x3 grid has degree 4.
        assert net.graph.degree(4) == 4

    def test_partial_last_row(self):
        cfg = NetworkConfig(num_base_stations=7)
        net = generate_grid(cfg, rng=0)
        assert len(net) == 7
        assert nx.is_connected(net.graph)


class TestAlgorithmsRunOnAllFamilies:
    @pytest.mark.parametrize("generator", [
        generate_transit_stub, generate_ring, generate_star,
        generate_grid])
    def test_heu_runs(self, generator):
        from repro.config import SimulationConfig
        from repro.core.heu import Heu
        from repro.core.instance import ProblemInstance
        from repro.core.latency import LatencyModel
        from repro.network.paths import PathTable
        from repro.sim.engine import run_offline

        config = SimulationConfig(
            network=NetworkConfig(num_base_stations=8), seed=0)
        network = generator(config.network, rng=0)
        paths = PathTable(network)
        latency = LatencyModel(network, paths, rng=0)
        instance = ProblemInstance(network=network, paths=paths,
                                   latency=latency, config=config)
        workload = instance.new_workload(15, seed=0)
        result = run_offline(Heu(), instance, workload, seed=0)
        assert result.total_reward > 0.0
