"""Unit and property tests for the MEC topology generator."""

import math

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkConfig
from repro.exceptions import ConfigurationError
from repro.network.topology import (BaseStation, MECNetwork,
                                    generate_topology)


class TestBaseStation:
    def test_num_slots_floor(self):
        bs = BaseStation(station_id=0, capacity_mhz=3300.0)
        assert bs.num_slots(1000.0) == 3

    def test_num_slots_exact_division(self):
        bs = BaseStation(station_id=0, capacity_mhz=3000.0)
        assert bs.num_slots(1000.0) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            BaseStation(station_id=0, capacity_mhz=0.0)

    def test_invalid_id(self):
        with pytest.raises(ConfigurationError):
            BaseStation(station_id=-1, capacity_mhz=100.0)

    def test_invalid_slot_size(self):
        bs = BaseStation(station_id=0, capacity_mhz=3300.0)
        with pytest.raises(ConfigurationError):
            bs.num_slots(0.0)


class TestGeneration:
    def test_default_size(self):
        net = generate_topology(NetworkConfig(), rng=0)
        assert len(net) == 20

    def test_connected(self):
        for seed in range(5):
            net = generate_topology(NetworkConfig(), rng=seed)
            assert nx.is_connected(net.graph)

    def test_capacities_in_range(self):
        net = generate_topology(NetworkConfig(), rng=1)
        for bs in net:
            assert 3000.0 <= bs.capacity_mhz <= 3600.0

    def test_link_delays_in_range(self):
        cfg = NetworkConfig(link_delay_range_ms=(2.0, 5.0))
        net = generate_topology(cfg, rng=2)
        for u, v in net.graph.edges:
            assert 2.0 <= net.link_delay_ms(u, v) <= 5.0

    def test_deterministic_from_seed(self):
        a = generate_topology(NetworkConfig(), rng=7)
        b = generate_topology(NetworkConfig(), rng=7)
        assert [s.capacity_mhz for s in a] == [s.capacity_mhz for s in b]
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_single_station(self):
        net = generate_topology(NetworkConfig(num_base_stations=1), rng=0)
        assert len(net) == 1
        assert net.graph.number_of_edges() == 0

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=30),
           seed=st.integers(min_value=0, max_value=1000))
    def test_always_connected_property(self, n, seed):
        net = generate_topology(
            NetworkConfig(num_base_stations=n), rng=seed)
        assert nx.is_connected(net.graph)
        assert len(net) == n


class TestMECNetwork:
    def test_station_lookup(self):
        net = generate_topology(NetworkConfig(num_base_stations=5), rng=0)
        assert net.station(3).station_id == 3
        with pytest.raises(ConfigurationError):
            net.station(99)

    def test_station_ids_sorted(self):
        net = generate_topology(NetworkConfig(num_base_stations=7), rng=0)
        assert net.station_ids == sorted(net.station_ids)

    def test_total_capacity(self):
        net = generate_topology(NetworkConfig(num_base_stations=5), rng=0)
        assert net.total_capacity_mhz() == pytest.approx(
            sum(bs.capacity_mhz for bs in net))

    def test_num_slots_consistency(self):
        net = generate_topology(NetworkConfig(), rng=3)
        for sid in net.station_ids:
            expected = int(math.floor(
                net.station(sid).capacity_mhz / net.slot_size_mhz))
            assert net.num_slots(sid) == expected
            # Paper geometry: 3000-3600 MHz at C_l=1000 gives L=3.
            assert net.num_slots(sid) == 3

    def test_closest_station(self):
        net = generate_topology(NetworkConfig(num_base_stations=6), rng=0)
        target = net.station(2)
        found = net.closest_station(target.position)
        assert found.station_id == 2

    def test_closest_station_with_exclusion(self):
        net = generate_topology(NetworkConfig(num_base_stations=6), rng=0)
        target = net.station(2)
        found = net.closest_station(target.position, exclude={2})
        assert found.station_id != 2

    def test_closest_station_all_excluded(self):
        net = generate_topology(NetworkConfig(num_base_stations=2), rng=0)
        with pytest.raises(ConfigurationError):
            net.closest_station((0.5, 0.5), exclude={0, 1})

    def test_duplicate_ids_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        stations = [BaseStation(0, 1000.0), BaseStation(0, 1000.0)]
        with pytest.raises(ConfigurationError):
            MECNetwork(stations=stations, graph=graph, slot_size_mhz=500.0)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from([0, 1])
        stations = [BaseStation(0, 1000.0), BaseStation(1, 1000.0)]
        with pytest.raises(ConfigurationError):
            MECNetwork(stations=stations, graph=graph, slot_size_mhz=500.0)

    def test_neighbors(self):
        net = generate_topology(NetworkConfig(num_base_stations=10), rng=4)
        for sid in net.station_ids:
            for nb in net.neighbors(sid):
                assert net.graph.has_edge(sid, nb)
