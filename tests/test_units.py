"""Unit tests for :mod:`repro.units`."""

import pytest

from repro.exceptions import ConfigurationError
from repro import units


class TestConversions:
    def test_mbps_round_trip(self):
        assert units.mbps_to_mbytes_per_s(80.0) == pytest.approx(10.0)
        assert units.mbytes_per_s_to_mbps(10.0) == pytest.approx(80.0)

    def test_round_trip_identity(self):
        for value in (0.0, 1.5, 37.2, 1000.0):
            back = units.mbytes_per_s_to_mbps(
                units.mbps_to_mbytes_per_s(value))
            assert back == pytest.approx(value)

    def test_kb_to_mb(self):
        assert units.kb_to_mb(64.0) == pytest.approx(0.064)

    def test_seconds_ms_round_trip(self):
        assert units.seconds_to_ms(0.05) == pytest.approx(50.0)
        assert units.ms_to_seconds(200.0) == pytest.approx(0.2)


class TestDemand:
    def test_demand_matches_paper_example(self):
        # 30-50 MB/s at 20 MHz per MB/s => 600-1000 MHz.
        assert units.demand_mhz(30.0, 20.0) == pytest.approx(600.0)
        assert units.demand_mhz(50.0, 20.0) == pytest.approx(1000.0)

    def test_demand_zero_rate(self):
        assert units.demand_mhz(0.0, 20.0) == 0.0

    def test_demand_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            units.demand_mhz(-1.0, 20.0)

    def test_demand_nonpositive_cunit_rejected(self):
        with pytest.raises(ConfigurationError):
            units.demand_mhz(10.0, 0.0)
        with pytest.raises(ConfigurationError):
            units.demand_mhz(10.0, -5.0)

    def test_rate_from_demand_inverts_demand(self):
        rate = units.rate_from_demand(units.demand_mhz(42.0, 20.0), 20.0)
        assert rate == pytest.approx(42.0)

    def test_rate_from_demand_validation(self):
        with pytest.raises(ConfigurationError):
            units.rate_from_demand(-1.0, 20.0)
        with pytest.raises(ConfigurationError):
            units.rate_from_demand(10.0, 0.0)
