"""Property tests: configuration serialization round-trips exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (NetworkConfig, OnlineConfig, RequestConfig,
                          SimulationConfig)
from repro.io import config_from_dict, config_to_dict


@st.composite
def configs(draw):
    """Random *valid* simulation configurations."""
    cap_lo = draw(st.floats(min_value=1500.0, max_value=3000.0))
    cap_hi = cap_lo + draw(st.floats(min_value=0.0, max_value=1000.0))
    slot = draw(st.floats(min_value=200.0, max_value=cap_lo))
    rate_lo = draw(st.floats(min_value=5.0, max_value=30.0))
    rate_hi = rate_lo + draw(st.floats(min_value=0.0, max_value=30.0))
    t_lo = draw(st.floats(min_value=50.0, max_value=400.0))
    t_hi = t_lo + draw(st.floats(min_value=0.0, max_value=600.0))
    return SimulationConfig(
        network=NetworkConfig(
            num_base_stations=draw(st.integers(1, 40)),
            capacity_range_mhz=(cap_lo, cap_hi),
            slot_size_mhz=slot,
            waxman_alpha=draw(st.floats(min_value=0.1, max_value=1.0)),
            waxman_beta=draw(st.floats(min_value=0.1, max_value=1.0)),
        ),
        requests=RequestConfig(
            num_requests=draw(st.integers(0, 500)),
            data_rate_range_mbps=(rate_lo, rate_hi),
            num_rate_levels=draw(st.integers(1, 10)),
            rate_decay=draw(st.floats(min_value=0.1, max_value=1.0)),
            stream_duration_slots=draw(st.integers(1, 100)),
        ),
        online=OnlineConfig(
            horizon_slots=draw(st.integers(1, 500)),
            threshold_range_mhz=(t_lo, t_hi),
            num_arms=draw(st.integers(1, 20)),
        ),
        seed=draw(st.integers(0, 2 ** 31 - 1)),
    ).validate()


class TestConfigRoundTripProperty:
    @settings(max_examples=40, deadline=None)
    @given(config=configs())
    def test_round_trip_identity(self, config):
        clone = config_from_dict(config_to_dict(config))
        assert clone == config

    @settings(max_examples=20, deadline=None)
    @given(config=configs())
    def test_round_trip_survives_json(self, config):
        import json

        payload = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(payload) == config
