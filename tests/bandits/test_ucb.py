"""Unit tests for the UCB1 comparison policy."""

import math

import numpy as np
import pytest

from repro.bandits.ucb import UCB1
from repro.exceptions import ConfigurationError


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UCB1(num_arms=0)
        with pytest.raises(ConfigurationError):
            UCB1(num_arms=2, confidence_scale=0.0)

    def test_initial_selection_prefers_unplayed(self):
        ucb = UCB1(num_arms=3)
        first = ucb.select_arm()
        ucb.record(first, 0.5)
        second = ucb.select_arm()
        assert second != first  # unplayed arms have infinite index

    def test_all_arms_stay_active(self):
        ucb = UCB1(num_arms=3)
        for _ in range(50):
            ucb.record(0, 1.0)
        assert ucb.active_arms() == [0, 1, 2]

    def test_mean_and_count(self):
        ucb = UCB1(num_arms=2)
        ucb.record(0, 0.2)
        ucb.record(0, 0.8)
        assert ucb.count(0) == 2
        assert ucb.mean(0) == pytest.approx(0.5)
        assert ucb.mean(1) == 0.0

    def test_index_formula(self):
        ucb = UCB1(num_arms=2)
        ucb.record(0, 0.5)
        ucb.record(1, 0.5)
        bonus = math.sqrt(2 * math.log(2) / 1)
        assert ucb.ucb(0) == pytest.approx(0.5 + bonus)

    def test_best_active_arm(self):
        ucb = UCB1(num_arms=3)
        assert ucb.best_active_arm() == 0  # before any play
        ucb.record(2, 0.9)
        ucb.record(1, 0.3)
        ucb.record(0, 0.1)
        assert ucb.best_active_arm() == 2


class TestLearning:
    def test_converges_to_best_arm(self):
        """UCB1 plays the best arm most often in the long run."""
        rng = np.random.default_rng(1)
        means = [0.2, 0.8, 0.5]
        ucb = UCB1(num_arms=3)
        for _ in range(600):
            arm = ucb.select_arm()
            ucb.record(arm, float(rng.random() < means[arm]))
        assert ucb.count(1) > ucb.count(0)
        assert ucb.count(1) > ucb.count(2)
        assert ucb.best_active_arm() == 1
