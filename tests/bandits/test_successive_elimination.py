"""Unit and behavioural tests for successive elimination."""

import math

import numpy as np
import pytest

from repro.bandits.successive_elimination import SuccessiveElimination
from repro.exceptions import BanditError, ConfigurationError


class TestBasics:
    def test_initial_state(self):
        se = SuccessiveElimination(num_arms=4, horizon=100)
        assert se.active_arms() == [0, 1, 2, 3]
        assert se.total_plays == 0
        assert se.mean(0) == 0.0
        assert se.radius(0) == math.inf
        assert se.ucb(0) == math.inf

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SuccessiveElimination(num_arms=0, horizon=10)
        with pytest.raises(ConfigurationError):
            SuccessiveElimination(num_arms=3, horizon=0)
        with pytest.raises(ConfigurationError):
            SuccessiveElimination(num_arms=3, horizon=10,
                                  confidence_scale=0.0)

    def test_arm_index_bounds(self):
        se = SuccessiveElimination(num_arms=2, horizon=10)
        with pytest.raises(ConfigurationError):
            se.mean(2)
        with pytest.raises(ConfigurationError):
            se.record(-1, 0.5)

    def test_record_updates_stats(self):
        se = SuccessiveElimination(num_arms=2, horizon=100)
        se.record(0, 0.4)
        se.record(0, 0.6)
        assert se.count(0) == 2
        assert se.mean(0) == pytest.approx(0.5)
        assert se.radius(0) == pytest.approx(
            math.sqrt(2 * math.log(100) / 2))


class TestSelection:
    def test_select_least_played_active(self):
        se = SuccessiveElimination(num_arms=3, horizon=100)
        assert se.select_arm() == 0
        se.record(0, 0.5)
        assert se.select_arm() == 1
        se.record(1, 0.5)
        assert se.select_arm() == 2

    def test_best_active_arm_by_mean(self):
        se = SuccessiveElimination(num_arms=3, horizon=10_000)
        se.record(0, 0.2)
        se.record(1, 0.9)
        se.record(2, 0.5)
        assert se.best_active_arm() == 1


class TestElimination:
    def test_bad_arm_eliminated(self):
        """A clearly dominated arm must be deactivated eventually."""
        se = SuccessiveElimination(num_arms=2, horizon=500,
                                   confidence_scale=0.3)
        rng = np.random.default_rng(0)
        for _ in range(400):
            arm = se.select_arm()
            reward = 0.9 if arm == 0 else 0.1
            se.record(arm, reward + rng.normal(0, 0.01))
        assert not se.is_active(1)
        assert se.is_active(0)

    def test_recording_to_eliminated_arm_raises(self):
        se = SuccessiveElimination(num_arms=2, horizon=500,
                                   confidence_scale=0.3)
        for _ in range(200):
            se.record(0, 0.9)
            if not se.is_active(1):
                break
            se.record(1, 0.1)
        assert not se.is_active(1)
        with pytest.raises(BanditError):
            se.record(1, 0.5)

    def test_never_eliminates_last_arm(self):
        se = SuccessiveElimination(num_arms=3, horizon=200,
                                   confidence_scale=0.1)
        for _ in range(150):
            arm = se.select_arm()
            se.record(arm, 0.9 if arm == 0 else 0.0)
        assert se.active_arms() == [0]

    def test_similar_arms_survive(self):
        """Arms with overlapping confidence intervals all stay active."""
        se = SuccessiveElimination(num_arms=3, horizon=100)
        for _ in range(20):
            arm = se.select_arm()
            se.record(arm, 0.5)
        assert se.active_arms() == [0, 1, 2]

    def test_ucb_lcb_bracket_mean(self):
        se = SuccessiveElimination(num_arms=1, horizon=100)
        se.record(0, 0.7)
        assert se.lcb(0) <= se.mean(0) <= se.ucb(0)
