"""Unit tests for the arm grid discretization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bandits.arms import ArmGrid
from repro.exceptions import ConfigurationError


class TestConstruction:
    def test_paper_epsilon(self):
        # epsilon = (high - low) / (kappa - 1), Algorithm 3 line 1.
        grid = ArmGrid(200.0, 1000.0, 9)
        assert grid.epsilon == pytest.approx(100.0)
        assert grid.num_arms == 9
        assert len(grid) == 9

    def test_endpoints_included(self):
        grid = ArmGrid(200.0, 1000.0, 9)
        assert grid.value(0) == pytest.approx(200.0)
        assert grid.value(8) == pytest.approx(1000.0)

    def test_single_arm_midpoint(self):
        grid = ArmGrid(0.0, 10.0, 1)
        assert grid.value(0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ArmGrid(10.0, 0.0, 3)
        with pytest.raises(ConfigurationError):
            ArmGrid(0.0, 10.0, 0)

    def test_value_bounds(self):
        grid = ArmGrid(0.0, 1.0, 3)
        with pytest.raises(ConfigurationError):
            grid.value(3)
        with pytest.raises(ConfigurationError):
            grid.value(-1)

    def test_values_read_only(self):
        grid = ArmGrid(0.0, 1.0, 3)
        with pytest.raises(ValueError):
            grid.values[0] = 5.0


class TestNearestArm:
    def test_exact_hits(self):
        grid = ArmGrid(0.0, 100.0, 11)
        for i in range(11):
            assert grid.nearest_arm(grid.value(i)) == i

    def test_rounding(self):
        grid = ArmGrid(0.0, 100.0, 11)
        assert grid.nearest_arm(14.0) == 1
        assert grid.nearest_arm(16.0) == 2

    def test_out_of_range_clamps(self):
        grid = ArmGrid(0.0, 100.0, 11)
        assert grid.nearest_arm(-50.0) == 0
        assert grid.nearest_arm(500.0) == 10


class TestDiscretizationError:
    def test_bound_formula(self):
        # DE(Z') <= eta * epsilon (Eq. 25).
        grid = ArmGrid(200.0, 1000.0, 9)
        assert grid.discretization_error_bound(2.0) == pytest.approx(200.0)

    def test_negative_eta_rejected(self):
        with pytest.raises(ConfigurationError):
            ArmGrid(0.0, 1.0, 3).discretization_error_bound(-1.0)

    @settings(max_examples=30, deadline=None)
    @given(kappa=st.integers(min_value=2, max_value=100))
    def test_finer_grids_smaller_error(self, kappa):
        coarse = ArmGrid(0.0, 100.0, kappa)
        fine = ArmGrid(0.0, 100.0, kappa + 1)
        assert (fine.discretization_error_bound(1.0)
                <= coarse.discretization_error_bound(1.0) + 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(x=st.floats(min_value=0.0, max_value=100.0),
           kappa=st.integers(min_value=2, max_value=50))
    def test_nearest_within_half_epsilon(self, x, kappa):
        grid = ArmGrid(0.0, 100.0, kappa)
        arm = grid.nearest_arm(x)
        assert abs(grid.value(arm) - x) <= grid.epsilon / 2 + 1e-9
