"""Unit tests for the epsilon-greedy ablation policy."""

import numpy as np
import pytest

from repro.bandits.epsilon_greedy import EpsilonGreedy
from repro.bandits.lipschitz import LipschitzBandit
from repro.exceptions import ConfigurationError


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EpsilonGreedy(num_arms=0)
        with pytest.raises(ConfigurationError):
            EpsilonGreedy(num_arms=2, epsilon_scale=0.0)

    def test_epsilon_decays(self):
        policy = EpsilonGreedy(num_arms=2, epsilon_scale=5.0, rng=0)
        assert policy.epsilon() == 1.0
        for _ in range(50):
            policy.record(0, 0.5)
        assert policy.epsilon() == pytest.approx(0.1)

    def test_never_eliminates(self):
        policy = EpsilonGreedy(num_arms=3, rng=0)
        for _ in range(30):
            policy.record(0, 1.0)
        assert policy.active_arms() == [0, 1, 2]

    def test_mean_and_count(self):
        policy = EpsilonGreedy(num_arms=2, rng=0)
        policy.record(1, 0.4)
        policy.record(1, 0.6)
        assert policy.count(1) == 2
        assert policy.mean(1) == pytest.approx(0.5)

    def test_arm_bounds(self):
        policy = EpsilonGreedy(num_arms=2, rng=0)
        with pytest.raises(ConfigurationError):
            policy.record(5, 0.5)


class TestLearning:
    def test_converges_to_best_arm(self):
        rng = np.random.default_rng(7)
        means = [0.2, 0.9, 0.4]
        policy = EpsilonGreedy(num_arms=3, epsilon_scale=10.0, rng=7)
        for _ in range(800):
            arm = policy.select_arm()
            policy.record(arm, float(rng.random() < means[arm]))
        assert policy.best_active_arm() == 1
        assert policy.count(1) > policy.count(0)

    def test_plugs_into_lipschitz_bandit(self):
        policy = EpsilonGreedy(num_arms=5, rng=3)
        bandit = LipschitzBandit(0.0, 1.0, num_arms=5, horizon=50,
                                 policy=policy)
        for _ in range(20):
            bandit.select_value()
            bandit.record(0.5)
        assert policy.total_plays == 20

    def test_drives_dynamic_rr(self, small_instance, online_workload):
        from repro.core.dynamic_rr import DynamicRR
        from repro.sim.online_engine import OnlineEngine

        policy = DynamicRR(bandit_policy="egreedy", rng=0)
        engine = OnlineEngine(small_instance, online_workload,
                              horizon_slots=40, rng=0)
        result = engine.run(policy)
        assert isinstance(policy.bandit.policy, EpsilonGreedy)
        assert result.total_reward > 0.0
