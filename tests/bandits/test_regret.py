"""Unit and statistical tests for regret tracking."""


import numpy as np
import pytest

from repro.bandits.regret import RegretTracker
from repro.bandits.successive_elimination import SuccessiveElimination
from repro.exceptions import ConfigurationError


class TestAccounting:
    def test_empty(self):
        tracker = RegretTracker()
        assert tracker.num_steps == 0
        assert tracker.cumulative_regret() == 0.0
        assert tracker.average_regret() == 0.0
        assert tracker.regret_curve().size == 0

    def test_oracle_validation(self):
        with pytest.raises(ConfigurationError):
            RegretTracker(oracle_mean=-1.0)

    def test_with_oracle(self):
        tracker = RegretTracker(oracle_mean=1.0)
        tracker.record(0, 0.5)
        tracker.record(0, 0.7)
        assert tracker.total_reward == pytest.approx(1.2)
        assert tracker.cumulative_regret() == pytest.approx(0.8)
        assert tracker.average_regret() == pytest.approx(0.4)

    def test_empirical_benchmark(self):
        tracker = RegretTracker()
        tracker.record(0, 0.2)
        tracker.record(1, 0.8)
        tracker.record(1, 0.8)
        # Best empirical arm mean = 0.8.
        assert tracker.benchmark_mean() == pytest.approx(0.8)
        assert tracker.cumulative_regret() == pytest.approx(
            0.8 * 3 - 1.8)

    def test_per_arm_means(self):
        tracker = RegretTracker()
        tracker.record(0, 0.0)
        tracker.record(0, 1.0)
        tracker.record(3, 0.5)
        means = tracker.per_arm_means()
        assert means == {0: pytest.approx(0.5), 3: pytest.approx(0.5)}

    def test_regret_curve_monotone_with_oracle(self):
        tracker = RegretTracker(oracle_mean=1.0)
        for reward in (0.3, 0.9, 0.1, 1.0):
            tracker.record(0, reward)
        curve = tracker.regret_curve()
        assert len(curve) == 4
        assert all(b >= a - 1e-12 for a, b in zip(curve, curve[1:]))


class TestSublinearity:
    def test_successive_elimination_regret_sublinear(self):
        """The driving claim of Theorem 3: SE regret grows sublinearly.

        Run SE on a 5-arm Bernoulli bandit and check the tail regret
        increments are smaller than the head increments.
        """
        rng = np.random.default_rng(4)
        means = [0.3, 0.5, 0.9, 0.4, 0.2]
        horizon = 1500
        se = SuccessiveElimination(num_arms=5, horizon=horizon,
                                   confidence_scale=0.5)
        tracker = RegretTracker(oracle_mean=0.9)
        for _ in range(horizon):
            arm = se.select_arm()
            reward = float(rng.random() < means[arm])
            se.record(arm, reward)
            tracker.record(arm, reward)
        assert tracker.is_sublinear(window=150)
        # Regret should also be well below the linear worst case.
        assert tracker.cumulative_regret() < 0.4 * horizon

    def test_is_sublinear_short_history_trivially_true(self):
        tracker = RegretTracker(oracle_mean=1.0)
        tracker.record(0, 0.0)
        assert tracker.is_sublinear(window=10)

    def test_constant_play_of_best_arm_has_zero_regret(self):
        tracker = RegretTracker(oracle_mean=0.5)
        for _ in range(50):
            tracker.record(0, 0.5)
        assert tracker.cumulative_regret() == pytest.approx(0.0)
        assert tracker.is_sublinear()
