"""Unit and behavioural tests for the discretized Lipschitz bandit."""

import math

import numpy as np
import pytest

from repro.bandits.lipschitz import LipschitzBandit
from repro.bandits.ucb import UCB1
from repro.exceptions import ConfigurationError


class TestProtocol:
    def test_select_then_record(self):
        bandit = LipschitzBandit(0.0, 10.0, num_arms=5, horizon=100)
        value = bandit.select_value()
        assert 0.0 <= value <= 10.0
        bandit.record(0.5)
        assert bandit.steps == 1

    def test_record_before_select_raises(self):
        bandit = LipschitzBandit(0.0, 10.0, num_arms=5, horizon=100)
        with pytest.raises(ConfigurationError):
            bandit.record(0.5)

    def test_bad_explore_fraction(self):
        with pytest.raises(ConfigurationError):
            LipschitzBandit(0.0, 1.0, 3, 10, explore_fraction=1.5)

    def test_custom_policy(self):
        policy = UCB1(num_arms=4)
        bandit = LipschitzBandit(0.0, 1.0, num_arms=4, horizon=50,
                                 policy=policy)
        bandit.select_value()
        bandit.record(1.0)
        assert policy.total_plays == 1

    def test_regret_bound_shape(self):
        """Theorem 3: sqrt(kappa T log T) + T eta epsilon."""
        bandit = LipschitzBandit(200.0, 1000.0, num_arms=9, horizon=400)
        eta = 0.01
        expected = (math.sqrt(9 * 400 * math.log(400))
                    + 400 * eta * bandit.grid.epsilon)
        assert bandit.regret_bound(eta) == pytest.approx(expected)


class TestLearning:
    def test_finds_best_region(self):
        """The bandit converges near the maximizer of a Lipschitz curve."""
        rng = np.random.default_rng(0)
        optimum = 6.0

        def reward_of(value: float) -> float:
            mean = max(0.0, 1.0 - 0.1 * abs(value - optimum))
            return float(np.clip(mean + rng.normal(0, 0.05), 0, 1))

        bandit = LipschitzBandit(0.0, 10.0, num_arms=11, horizon=800,
                                 explore_fraction=0.5,
                                 confidence_scale=0.3)
        for _ in range(800):
            value = bandit.select_value()
            bandit.record(reward_of(value))
        assert abs(bandit.best_value() - optimum) <= 2.0

    def test_exploitation_phase_plays_best(self):
        bandit = LipschitzBandit(0.0, 1.0, num_arms=2, horizon=10,
                                 explore_fraction=0.2,
                                 confidence_scale=0.3)
        # Exploration budget = 2 steps.
        for i in range(2):
            bandit.select_value()
            bandit.record(1.0 if i == 0 else 0.0)
        # Now in exploitation: should repeatedly pick the arm with mean 1.
        values = set()
        for _ in range(4):
            values.add(bandit.select_value())
            bandit.record(1.0)
        assert values == {bandit.grid.value(0)}
