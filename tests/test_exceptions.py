"""Tests for the exception hierarchy and its use across the library."""

import pytest

from repro.exceptions import (BanditError, CapacityError,
                              ConfigurationError,
                              InfeasibleProblemError, ReproError,
                              SchedulingError, SolverError,
                              UnboundedProblemError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, InfeasibleProblemError,
        UnboundedProblemError, SolverError, CapacityError,
        SchedulingError, BanditError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_single_catch_point(self):
        """Library failures are catchable with one except clause."""
        from repro.config import NetworkConfig

        with pytest.raises(ReproError):
            NetworkConfig(num_base_stations=0).validate()

    def test_solver_failures_catchable_together(self):
        from repro.solver.model import LinearProgram
        from repro.solver.simplex import solve_with_simplex

        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1.0}, "<=", 1.0)
        lp.add_constraint({"x": 1.0}, ">=", 2.0)
        with pytest.raises(ReproError):
            solve_with_simplex(lp)

    def test_messages_carry_context(self):
        from repro.network.capacity import CapacityLedger
        from repro.config import NetworkConfig
        from repro.network.topology import generate_topology

        net = generate_topology(NetworkConfig(num_base_stations=2),
                                rng=0)
        ledger = CapacityLedger(net)
        with pytest.raises(CapacityError) as excinfo:
            ledger.reserve(7, 0, 10 ** 9)
        message = str(excinfo.value)
        assert "request 7" in message
        assert "station 0" in message
