"""Tests for the library-level ablation drivers (reduced sizes)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (approximation_ratio_study,
                                         bandit_policy_study,
                                         clairvoyant_study,
                                         rounding_scale_study,
                                         slot_size_study,
                                         system_regret_study)


class TestOfflineStudies:
    def test_rounding_scale_study_shape(self):
        out = rounding_scale_study(scales=(1.0, 8.0), num_requests=25,
                                   seeds=(0,))
        assert set(out) == {1.0, 8.0}
        assert out[1.0] > out[8.0]  # single pass: more mass assigned

    def test_rounding_scale_validation(self):
        with pytest.raises(ConfigurationError):
            rounding_scale_study(scales=())

    def test_slot_size_study_shape(self):
        out = slot_size_study(slot_sizes=(1000.0,), num_requests=20,
                              seeds=(0,))
        assert out[1000.0] > 0.0

    def test_approximation_ratio_study(self):
        mean, ratios = approximation_ratio_study(num_requests=6,
                                                 seeds=(0, 1),
                                                 max_rounds=24)
        assert 0.0 < mean <= 1.2
        assert set(ratios).issubset({0, 1})


class TestOnlineStudies:
    def test_bandit_policy_study(self):
        out = bandit_policy_study(policies=("se",), num_requests=40,
                                  horizon_slots=30, seeds=(0,))
        assert out["se"] > 0.0

    def test_system_regret_study(self):
        out = system_regret_study(thresholds=(200.0, 800.0),
                                  num_requests=40, horizon_slots=30,
                                  seed=0)
        assert out["best_threshold"] in (200.0, 800.0)
        assert out["best_fixed_reward"] > 0.0
        assert out["dynamic_reward"] > 0.0
        assert out["relative_regret"] < 0.9

    def test_clairvoyant_study(self):
        out = clairvoyant_study(num_requests=40, horizon_slots=30,
                                seed=0)
        assert out["clairvoyant_bound"] >= out["online_reward"] * 0.999
        assert 0.0 < out["competitive_ratio"] <= 1.0 + 1e-9
        assert 0.0 <= out["bound_peak_utilization"] <= 1.0 + 1e-9

    def test_clairvoyant_study_with_baseline(self):
        from repro.baselines.ocorp import OcorpOnline

        out = clairvoyant_study(num_requests=30, horizon_slots=30,
                                seed=1, policy_factory=OcorpOnline)
        assert out["competitive_ratio"] <= 1.0 + 1e-9
