"""Tests for CSV export and the CLI driver."""

import csv

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.export import (export_figure, write_records_csv,
                                      write_series_csv)
from repro.sim.results import RunRecord, SweepResult


@pytest.fixture()
def sweep():
    result = SweepResult("num_requests")
    for x in (10, 20):
        for seed in (0, 1):
            result.add(RunRecord("Appro", x, seed,
                                 {"total_reward": float(x * (seed + 1)),
                                  "avg_latency_ms": 50.0}))
            result.add(RunRecord("Greedy", x, seed,
                                 {"total_reward": float(x),
                                  "avg_latency_ms": 40.0}))
    return result


class TestRecordsCsv:
    def test_round_trip(self, sweep, tmp_path):
        path = write_records_csv(sweep, tmp_path / "records.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["algorithm", "num_requests", "seed",
                           "total_reward", "avg_latency_ms"]
        assert len(rows) == 1 + len(sweep.records)

    def test_empty_sweep_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_records_csv(SweepResult("x"), tmp_path / "x.csv")


class TestSeriesCsv:
    def test_wide_table(self, sweep, tmp_path):
        path = write_series_csv(sweep, "total_reward",
                                tmp_path / "series.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["algorithm", "10", "20"]
        appro_row = next(r for r in rows if r[0] == "Appro")
        # Mean over seeds 0 and 1: x * 1.5.
        assert float(appro_row[1]) == pytest.approx(15.0)
        assert float(appro_row[2]) == pytest.approx(30.0)


class TestExportFigure:
    def test_writes_all_files(self, sweep, tmp_path):
        paths = export_figure(sweep, tmp_path / "out", "fig3",
                              metrics=("total_reward",
                                       "avg_latency_ms", "missing"))
        names = sorted(p.name for p in paths)
        assert names == ["fig3_avg_latency_ms.csv", "fig3_records.csv",
                         "fig3_total_reward.csv"]
        for path in paths:
            assert path.exists()


class TestCli:
    def test_parser_defaults(self):
        from repro.experiments.__main__ import build_parser

        args = build_parser().parse_args([])
        assert args.figures == ["all"]
        assert args.scale == "bench"
        assert args.out is None

    def test_parser_rejects_unknown_figure(self):
        from repro.experiments.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--figures", "9"])

    def test_main_runs_one_small_figure(self, tmp_path, capsys,
                                        monkeypatch):
        """Smoke-run the CLI on figure 3 with a stubbed tiny driver."""
        import repro.experiments.__main__ as cli

        def tiny_driver(scale, workers=1, trace=False):
            sweep = SweepResult("num_requests")
            sweep.add(RunRecord("Appro", 10, 0,
                                {"total_reward": 1.0,
                                 "avg_latency_ms": 2.0,
                                 "runtime_s": 0.1}))
            return sweep

        monkeypatch.setitem(cli._FIGURES, "3",
                            (tiny_driver, ("total_reward",)))
        code = cli.main(["--figures", "3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert (tmp_path / "fig3_records.csv").exists()

    def test_workers_flag_reaches_driver(self, monkeypatch, capsys):
        import repro.experiments.__main__ as cli

        seen = {}

        def tiny_driver(scale, workers=1, trace=False):
            seen["workers"] = workers
            sweep = SweepResult("num_requests")
            sweep.add(RunRecord("Appro", 10, 0, {"total_reward": 1.0}))
            return sweep

        monkeypatch.setitem(cli._FIGURES, "3",
                            (tiny_driver, ("total_reward",)))
        assert cli.main(["--figures", "3", "--workers", "2"]) == 0
        assert seen["workers"] == 2
        assert cli.main(["--figures", "3"]) == 0
        assert seen["workers"] == 1


class TestCliPlot:
    def test_plot_flag_renders_ascii(self, monkeypatch, capsys):
        import repro.experiments.__main__ as cli
        from repro.sim.results import RunRecord, SweepResult

        def tiny_driver(scale, workers=1, trace=False):
            sweep = SweepResult("num_requests")
            for x in (10, 20):
                sweep.add(RunRecord("Appro", x, 0,
                                    {"total_reward": float(x)}))
            return sweep

        monkeypatch.setitem(cli._FIGURES, "3",
                            (tiny_driver, ("total_reward",)))
        code = cli.main(["--figures", "3", "--plot"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 3: total_reward" in out
        assert "A=Appro" in out
