"""Tests for the live progress heartbeat.

The load-bearing property: progress is *observation only*.  With the
heartbeat on or off, serial or parallel, the records of a sweep are
byte-identical - the reporter can count and print, never influence.
"""

import io

import pytest

from repro.baselines.greedy import GreedyOffline
from repro.baselines.ocorp import OcorpOffline
from repro.exceptions import ConfigurationError
from repro.experiments.executor import (execute_specs, resolve_progress)
from repro.experiments.runner import build_offline_specs
from repro.telemetry import ProgressReporter

from test_executor import record_key, tiny_config


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def tick(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def make_reporter(min_interval_s=0.0, **kwargs):
    stream = io.StringIO()
    clock = FakeClock()
    reporter = ProgressReporter(stream=stream, clock=clock,
                                min_interval_s=min_interval_s,
                                **kwargs)
    return reporter, stream, clock


class TestProgressReporter:
    def test_opening_line_on_start(self):
        reporter, stream, _ = make_reporter()
        reporter.start(10)
        assert "0/10 specs (0.0%)" in stream.getvalue()

    def test_advance_counts_and_emits(self):
        reporter, stream, clock = make_reporter()
        reporter.start(4)
        clock.tick(2.0)
        reporter.advance(2)
        assert reporter.done == 2
        line = stream.getvalue().splitlines()[-1]
        assert "2/4 specs (50.0%)" in line
        assert "1.0 spec/s" in line
        assert "ETA 2s" in line

    def test_throttling(self):
        reporter, stream, clock = make_reporter(min_interval_s=10.0)
        reporter.start(100)
        for _ in range(50):
            clock.tick(0.01)
            reporter.advance(1)
        # Opening line only; every advance fell inside the interval.
        assert reporter.lines_emitted == 1
        clock.tick(10.0)
        reporter.advance(1)
        assert reporter.lines_emitted == 2

    def test_completion_always_emits(self):
        reporter, stream, clock = make_reporter(min_interval_s=1000.0)
        reporter.start(2)
        clock.tick(0.001)
        reporter.advance(2)
        assert "2/2 specs (100.0%)" in stream.getvalue()

    def test_finish_always_emits(self):
        reporter, _, _ = make_reporter(min_interval_s=1000.0)
        reporter.start(3)
        before = reporter.lines_emitted
        reporter.finish()
        assert reporter.lines_emitted == before + 1

    def test_phase_label_rendered(self):
        reporter, stream, _ = make_reporter()
        reporter.set_phase("fig4")
        reporter.start(1)
        assert "phase=fig4" in stream.getvalue()

    def test_phase_persists_across_cycles(self):
        # The CLIs set the phase, then the executor starts the cycle;
        # start() must not clobber the label.
        reporter, stream, _ = make_reporter()
        reporter.set_phase("fig3")
        reporter.start(2)
        reporter.start(2)
        assert stream.getvalue().count("phase=fig3") == 2
        reporter.start(2, phase="fig4")
        assert "phase=fig4" in stream.getvalue()

    def test_reuse_resets_counts(self):
        reporter, _, _ = make_reporter()
        reporter.start(2)
        reporter.advance(2)
        reporter.start(5)
        assert reporter.done == 0
        assert reporter.total == 5

    def test_label(self):
        reporter, stream, _ = make_reporter(label="bench")
        reporter.start(1)
        assert stream.getvalue().startswith("[bench]")

    def test_zero_total(self):
        reporter, stream, _ = make_reporter()
        reporter.start(0)
        assert "0/0 specs (100.0%)" in stream.getvalue()

    def test_guards(self):
        with pytest.raises(ConfigurationError):
            ProgressReporter(min_interval_s=-1.0)
        reporter, _, _ = make_reporter()
        with pytest.raises(ConfigurationError):
            reporter.start(-1)
        reporter.start(1)
        with pytest.raises(ConfigurationError):
            reporter.advance(-1)


class TestResolveProgress:
    def test_falsy_disables(self):
        assert resolve_progress(None) is None
        assert resolve_progress(False) is None

    def test_true_builds_default(self):
        assert isinstance(resolve_progress(True), ProgressReporter)

    def test_reporter_passes_through(self):
        reporter = ProgressReporter(stream=io.StringIO())
        assert resolve_progress(reporter) is reporter


class TestHeartbeatUnderBackends:
    """Records byte-identical with progress on or off, both backends."""

    def specs(self):
        return build_offline_specs(
            algorithm_factories=[GreedyOffline, OcorpOffline],
            x_values=[8, 12],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=2)

    def test_serial_records_identical_with_progress(self):
        specs = self.specs()
        reporter, stream, _ = make_reporter()
        plain = execute_specs(specs, workers=1)
        observed = execute_specs(specs, workers=1, progress=reporter)
        assert ([record_key(r) for r in plain]
                == [record_key(r) for r in observed])
        assert reporter.done == len(specs)
        assert f"{len(specs)}/{len(specs)} specs" in stream.getvalue()

    def test_process_records_identical_with_progress(self):
        specs = self.specs()
        reporter, stream, _ = make_reporter()
        plain = execute_specs(specs, workers=2)
        observed = execute_specs(specs, workers=2, progress=reporter)
        assert ([record_key(r) for r in plain]
                == [record_key(r) for r in observed])
        assert reporter.done == len(specs)
        assert f"{len(specs)}/{len(specs)} specs" in stream.getvalue()

    def test_serial_and_process_agree_under_progress(self):
        specs = self.specs()
        serial_reporter, _, _ = make_reporter()
        process_reporter, _, _ = make_reporter()
        serial = execute_specs(specs, workers=1,
                               progress=serial_reporter)
        parallel = execute_specs(specs, workers=4, chunksize=3,
                                 progress=process_reporter)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])

    def test_progress_heartbeats_cover_every_spec(self):
        specs = self.specs()
        reporter, _, _ = make_reporter()
        execute_specs(specs, workers=2, chunksize=1,
                      progress=reporter)
        # chunksize=1: one advance per spec, all accounted for.
        assert reporter.done == len(specs)
        assert reporter.total == len(specs)
