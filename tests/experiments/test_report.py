"""Tests for the Markdown report generator."""


from repro.experiments.report import (build_report,
                                      invariant_audit_markdown, main,
                                      render_figure_markdown,
                                      _markdown_table)
from repro.sim.results import RunRecord, SweepResult


def make_sweep(journal=None):
    sweep = SweepResult("num_requests")
    for x in (10, 20):
        sweep.add(RunRecord("Appro", x, 0, {"total_reward": 2.0 * x,
                                            "avg_latency_ms": 60.0},
                            journal=journal))
        sweep.add(RunRecord("Greedy", x, 0, {"total_reward": 1.0 * x,
                                             "avg_latency_ms": 40.0},
                            journal=journal))
    return sweep


def journal_for(x):
    """A clean single-request journal matching make_sweep's metrics."""
    return (
        {"kind": "station_up", "slot": 0, "station": 0, "value": 500.0},
        {"kind": "arrival", "slot": 0, "request": 1},
        {"kind": "start", "slot": 0, "request": 1, "station": 0,
         "reward": float(x)},
        {"kind": "complete", "slot": 1, "request": 1, "station": 0,
         "reward": float(x)},
    )


def make_journaled_sweep(tamper=False):
    sweep = SweepResult("num_requests")
    for x in (10, 20):
        journal = journal_for(2.0 * x)
        if tamper:  # double COMPLETE: the double_terminal mutation
            journal = journal + (journal[-1],)
        sweep.add(RunRecord(
            "Appro", x, 0,
            {"total_reward": 2.0 * x, "num_admitted": 1},
            journal=journal))
    return sweep


class TestMarkdownRendering:
    def test_table_shape(self):
        text = _markdown_table(make_sweep(), "total_reward")
        lines = text.split("\n")
        assert lines[0] == "| algorithm | 10 | 20 |"
        assert lines[1].startswith("|---")
        assert "| Appro | 20.0 | 40.0 |" in lines

    def test_figure_section(self):
        text = render_figure_markdown(make_sweep(), "9",
                                      ("total_reward",
                                       "avg_latency_ms"))
        assert text.startswith("## Figure 9")
        assert "### (a) total_reward" in text
        assert "### (b) avg_latency_ms" in text


class TestBuildReport:
    def test_stubbed_full_report(self):
        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        text = build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            title="Stub report")
        assert text.startswith("# Stub report")
        assert "## Figure 3" in text
        assert "| Appro |" in text
        assert "## Wall-clock" in text
        assert "workers=1" in text

    def test_workers_threaded_and_speedup_measured(self):
        calls = []

        def tiny_driver(scale, workers=1, trace=False):
            calls.append(workers)
            return make_sweep()

        text = build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            workers=2,
            measure_speedup=True)
        # One parallel pass plus one serial baseline pass.
        assert calls == [2, 1]
        assert "workers=2" in text
        assert "x |" in text  # a speedup column entry

    def test_no_speedup_pass_by_default(self):
        calls = []

        def tiny_driver(scale, workers=1, trace=False):
            calls.append(workers)
            return make_sweep()

        build_report(figures=(("3", tiny_driver, ("total_reward",)),),
                     include_theorems=False, workers=3)
        assert calls == [3]

    def test_cli_writes_file(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.report as report_mod

        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        monkeypatch.setattr(
            report_mod, "DEFAULT_FIGURES",
            (("3", tiny_driver, ("total_reward",)),))
        out = tmp_path / "report.md"
        code = main(["--out", str(out), "--no-theorems"])
        assert code == 0
        assert out.exists()
        assert "## Figure 3" in out.read_text()

    def test_cli_stdout(self, monkeypatch, capsys):
        import repro.experiments.report as report_mod

        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        monkeypatch.setattr(
            report_mod, "DEFAULT_FIGURES",
            (("3", tiny_driver, ("total_reward",)),))
        code = main(["--no-theorems"])
        assert code == 0
        assert "## Figure 3" in capsys.readouterr().out


class TestInvariantAuditSection:
    def test_no_journals_no_section(self):
        assert invariant_audit_markdown({"fig3": make_sweep()}) is None

    def test_clean_audit_renders_ok(self):
        text = invariant_audit_markdown(
            {"fig3": make_journaled_sweep()})
        assert text.startswith("## Invariant audit")
        assert "all invariants held" in text
        assert "| lifecycle |" in text
        assert "not exercised" in text  # e.g. arm invariants

    def test_violations_listed(self):
        text = invariant_audit_markdown(
            {"fig3": make_journaled_sweep(tamper=True)})
        assert "VIOLATION" in text
        assert "double_terminal" in text
        assert "Appro x=10 seed=0" in text

    def test_build_report_appends_audit_section(self):
        def tiny_driver(scale, workers=1, trace=False, journal=False):
            return make_journaled_sweep() if journal else make_sweep()

        text = build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            journal=True)
        assert "## Invariant audit" in text

    def test_journal_sink_receives_merged_events(self):
        def tiny_driver(scale, workers=1, trace=False, journal=False):
            return make_journaled_sweep() if journal else make_sweep()

        sink = []
        build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            journal=True, journal_sink=sink)
        assert sink
        assert all("figure" in e and "run" in e for e in sink)
