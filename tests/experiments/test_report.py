"""Tests for the Markdown report generator."""

import pytest

from repro.experiments.report import (build_report, main,
                                      render_figure_markdown,
                                      _markdown_table)
from repro.sim.results import RunRecord, SweepResult


def make_sweep():
    sweep = SweepResult("num_requests")
    for x in (10, 20):
        sweep.add(RunRecord("Appro", x, 0, {"total_reward": 2.0 * x,
                                            "avg_latency_ms": 60.0}))
        sweep.add(RunRecord("Greedy", x, 0, {"total_reward": 1.0 * x,
                                             "avg_latency_ms": 40.0}))
    return sweep


class TestMarkdownRendering:
    def test_table_shape(self):
        text = _markdown_table(make_sweep(), "total_reward")
        lines = text.split("\n")
        assert lines[0] == "| algorithm | 10 | 20 |"
        assert lines[1].startswith("|---")
        assert "| Appro | 20.0 | 40.0 |" in lines

    def test_figure_section(self):
        text = render_figure_markdown(make_sweep(), "9",
                                      ("total_reward",
                                       "avg_latency_ms"))
        assert text.startswith("## Figure 9")
        assert "### (a) total_reward" in text
        assert "### (b) avg_latency_ms" in text


class TestBuildReport:
    def test_stubbed_full_report(self):
        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        text = build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            title="Stub report")
        assert text.startswith("# Stub report")
        assert "## Figure 3" in text
        assert "| Appro |" in text
        assert "## Wall-clock" in text
        assert "workers=1" in text

    def test_workers_threaded_and_speedup_measured(self):
        calls = []

        def tiny_driver(scale, workers=1, trace=False):
            calls.append(workers)
            return make_sweep()

        text = build_report(
            figures=(("3", tiny_driver, ("total_reward",)),),
            include_theorems=False,
            workers=2,
            measure_speedup=True)
        # One parallel pass plus one serial baseline pass.
        assert calls == [2, 1]
        assert "workers=2" in text
        assert "x |" in text  # a speedup column entry

    def test_no_speedup_pass_by_default(self):
        calls = []

        def tiny_driver(scale, workers=1, trace=False):
            calls.append(workers)
            return make_sweep()

        build_report(figures=(("3", tiny_driver, ("total_reward",)),),
                     include_theorems=False, workers=3)
        assert calls == [3]

    def test_cli_writes_file(self, tmp_path, monkeypatch, capsys):
        import repro.experiments.report as report_mod

        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        monkeypatch.setattr(
            report_mod, "DEFAULT_FIGURES",
            (("3", tiny_driver, ("total_reward",)),))
        out = tmp_path / "report.md"
        code = main(["--out", str(out), "--no-theorems"])
        assert code == 0
        assert out.exists()
        assert "## Figure 3" in out.read_text()

    def test_cli_stdout(self, monkeypatch, capsys):
        import repro.experiments.report as report_mod

        def tiny_driver(scale, workers=1, trace=False):
            return make_sweep()

        monkeypatch.setattr(
            report_mod, "DEFAULT_FIGURES",
            (("3", tiny_driver, ("total_reward",)),))
        code = main(["--no-theorems"])
        assert code == 0
        assert "## Figure 3" in capsys.readouterr().out
