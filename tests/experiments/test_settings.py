"""Unit tests for experiment presets."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.settings import (ExperimentScale, base_config,
                                        bench_scale, config_with_max_rate,
                                        config_with_stations, paper_scale)


class TestScales:
    def test_paper_scale_matches_section_vi(self):
        scale = paper_scale()
        assert scale.request_counts == (100, 150, 200, 250, 300)
        assert scale.station_counts == (10, 20, 30, 40, 50)
        assert scale.max_rates_mbps == (15.0, 20.0, 25.0, 30.0, 35.0)
        assert scale.fig5_num_requests == 150

    def test_bench_scale_is_smaller(self):
        bench, paper = bench_scale(), paper_scale()
        assert len(bench.request_counts) <= len(paper.request_counts)
        assert bench.num_seeds <= paper.num_seeds

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentScale(request_counts=(), station_counts=(10,),
                            max_rates_mbps=(15.0,), num_seeds=1,
                            horizon_slots=10,
                            fig5_num_requests=10).validate()
        with pytest.raises(ConfigurationError):
            ExperimentScale(request_counts=(10,), station_counts=(10,),
                            max_rates_mbps=(15.0,), num_seeds=0,
                            horizon_slots=10,
                            fig5_num_requests=10).validate()


class TestConfigFactories:
    def test_base_config_seeded(self):
        assert base_config(seed=3).seed == 3

    def test_config_with_stations(self):
        cfg = config_with_stations(35, seed=1)
        assert cfg.network.num_base_stations == 35
        assert cfg.seed == 1

    def test_config_with_max_rate(self):
        cfg = config_with_max_rate(25.0)
        lo, hi = cfg.requests.data_rate_range_mbps
        assert hi == 25.0
        assert lo == pytest.approx(15.0)

    def test_config_with_max_rate_validates(self):
        cfg = config_with_max_rate(15.0)
        assert cfg.requests.data_rate_range_mbps[0] < 15.0
