"""Journaling through the sweep executor: determinism and inertness.

The load-bearing properties mirror the tracing ones:

* journaling is *inert* - records (and the metrics inside them) are
  identical with journaling on or off;
* journals are *canonical* - a serial and a parallel execution of the
  same specs produce byte-identical journals, so trace-diff between
  them exits 0 and any real divergence is localizable.
"""

from repro.baselines.greedy import GreedyOffline, GreedyOnline
from repro.core.dynamic_rr import DynamicRR
from repro.core.heu import Heu
from repro.experiments.executor import (OFFLINE, ONLINE, RunSpec,
                                        execute_run, execute_specs)
from repro.experiments.runner import run_offline_sweep
from repro.experiments.settings import base_config
from repro.telemetry import (NULL_JOURNAL, audit_records,
                             collect_sweep_journal, get_journal)
from repro.telemetry.tracediff import EXIT_DIVERGED, EXIT_OK, main


def tiny_config(x=0, seed=0):
    cfg = base_config(seed)
    return cfg.with_overrides(
        network=cfg.network.__class__(num_base_stations=6))


def record_key(record):
    return (record.algorithm, record.x, record.seed,
            tuple(sorted((k, v) for k, v in record.metrics.items()
                         if k != "runtime_s")))


def offline_spec(journal=False, factory=GreedyOffline, seed=1):
    return RunSpec(mode=OFFLINE, factory=factory, x=8.0, seed=seed,
                   config=tiny_config(8, seed), num_requests=8,
                   journal=journal)


def online_spec(journal=False, factory=GreedyOnline, seed=0):
    return RunSpec(mode=ONLINE, factory=factory, x=6.0, seed=seed,
                   config=tiny_config(6, seed), num_requests=6,
                   horizon_slots=10, journal=journal)


class TestJournalIsInert:
    def test_unjournaled_record_has_no_journal(self):
        assert execute_run(offline_spec()).journal is None

    def test_journaled_record_carries_events(self):
        record = execute_run(offline_spec(journal=True))
        assert record.journal
        assert all(isinstance(e, dict) for e in record.journal)

    def test_metrics_identical_with_and_without_journaling(self):
        plain = execute_run(offline_spec(factory=Heu))
        journaled = execute_run(offline_spec(factory=Heu,
                                             journal=True))
        assert record_key(plain) == record_key(journaled)

    def test_online_metrics_identical_with_journaling(self):
        plain = execute_run(online_spec(factory=DynamicRR))
        journaled = execute_run(online_spec(factory=DynamicRR,
                                            journal=True))
        assert record_key(plain) == record_key(journaled)

    def test_journal_restored_after_journaled_run(self):
        execute_run(offline_spec(journal=True))
        assert get_journal() is NULL_JOURNAL

    def test_journal_composes_with_tracing(self):
        import dataclasses

        spec = dataclasses.replace(offline_spec(journal=True),
                                   trace=True)
        record = execute_run(spec)
        assert record.journal and record.trace


class TestSerialParallelJournalEquivalence:
    def specs(self):
        return [offline_spec(factory=Heu), online_spec(),
                online_spec(factory=DynamicRR)]

    def test_journals_byte_identical(self):
        serial = execute_specs(self.specs(), workers=1, journal=True)
        parallel = execute_specs(self.specs(), workers=3, journal=True)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])
        assert (collect_sweep_journal(serial)
                == collect_sweep_journal(parallel))

    def test_merged_stream_is_canonical_spec_order(self):
        records = execute_specs(self.specs(), workers=3, journal=True)
        merged = collect_sweep_journal(records)
        runs = [e["run"] for e in merged]
        assert runs == sorted(runs)
        assert set(runs) == {0, 1, 2}

    def test_trace_diff_serial_vs_parallel_exits_zero(self, tmp_path):
        import json

        paths = []
        for workers in (1, 3):
            records = execute_specs(self.specs(), workers=workers,
                                    journal=True)
            path = tmp_path / f"w{workers}.jsonl"
            path.write_text("".join(
                json.dumps(e, sort_keys=True) + "\n"
                for e in collect_sweep_journal(records)),
                encoding="utf-8")
            paths.append(str(path))
        assert main(paths) == EXIT_OK

    def test_trace_diff_different_seeds_diverges(self, tmp_path,
                                                 capsys):
        import json

        paths = []
        for seed in (0, 1):
            records = execute_specs(
                [online_spec(factory=DynamicRR, seed=seed)],
                workers=1, journal=True)
            path = tmp_path / f"s{seed}.jsonl"
            path.write_text("".join(
                json.dumps(e, sort_keys=True) + "\n"
                for e in collect_sweep_journal(records)),
                encoding="utf-8")
            paths.append(str(path))
        assert main(paths) == EXIT_DIVERGED
        out = capsys.readouterr().out
        assert "diverge at event" in out
        assert "< [" in out and "> [" in out


class TestSweepAudit:
    def test_runner_journal_knob(self):
        sweep = run_offline_sweep(
            algorithm_factories=[Heu],
            x_values=[8],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=2,
            x_label="num_requests",
            journal=True)
        assert all(r.journal for r in sweep.records)
        outcome = audit_records(sweep.records)
        assert outcome.ok
        assert outcome.runs_audited == len(sweep.records)
        assert outcome.checks["reward_accounting"] > 0

    def test_unjournaled_sweep_audits_nothing(self):
        sweep = run_offline_sweep(
            algorithm_factories=[GreedyOffline],
            x_values=[8],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=1,
            x_label="num_requests")
        assert all(r.journal is None for r in sweep.records)
        assert audit_records(sweep.records).runs_audited == 0
