"""Unit tests for the shape-validation helpers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.validation import (ShapeCheck, check_dominates,
                                          check_monotone,
                                          check_saturates,
                                          check_winner_everywhere,
                                          validate_all)
from repro.sim.results import RunRecord, SweepResult


def make_sweep(series_by_algo):
    sweep = SweepResult("x")
    for algorithm, values in series_by_algo.items():
        for i, value in enumerate(values):
            sweep.add(RunRecord(algorithm, float(i), 0,
                                {"total_reward": float(value)}))
    return sweep


class TestDominates:
    def test_pass_and_fail(self):
        sweep = make_sweep({"A": [10, 20], "B": [5, 5]})
        assert check_dominates(sweep, "A", "B").passed
        assert not check_dominates(sweep, "B", "A").passed

    def test_margin(self):
        sweep = make_sweep({"A": [12], "B": [10]})
        assert check_dominates(sweep, "A", "B", margin=1.0).passed
        assert not check_dominates(sweep, "A", "B", margin=1.5).passed


class TestMonotone:
    def test_increasing(self):
        sweep = make_sweep({"A": [1, 2, 3]})
        assert check_monotone(sweep, "A", "total_reward").passed

    def test_noise_tolerance(self):
        sweep = make_sweep({"A": [10, 9.8, 12]})
        assert check_monotone(sweep, "A", "total_reward",
                              tolerance=0.05).passed
        assert not check_monotone(sweep, "A", "total_reward",
                                  tolerance=0.0).passed

    def test_decreasing(self):
        sweep = make_sweep({"A": [3, 2, 1]})
        assert check_monotone(sweep, "A", "total_reward",
                              increasing=False).passed
        assert not check_monotone(sweep, "A", "total_reward").passed

    def test_bad_tolerance(self):
        sweep = make_sweep({"A": [1]})
        with pytest.raises(ConfigurationError):
            check_monotone(sweep, "A", "total_reward", tolerance=1.5)


class TestSaturates:
    def test_knee_detected(self):
        sweep = make_sweep({"A": [0, 100, 120, 125]})
        assert check_saturates(sweep, "A").passed

    def test_linear_growth_fails(self):
        sweep = make_sweep({"A": [0, 100, 200, 300]})
        assert not check_saturates(sweep, "A").passed

    def test_short_series_trivially_passes(self):
        sweep = make_sweep({"A": [1, 2]})
        assert check_saturates(sweep, "A").passed


class TestWinnerEverywhere:
    def test_pass(self):
        sweep = make_sweep({"A": [10, 20], "B": [5, 15]})
        assert check_winner_everywhere(sweep, "A").passed

    def test_fail_lists_losses(self):
        sweep = make_sweep({"A": [10, 5], "B": [5, 15]})
        check = check_winner_everywhere(sweep, "A")
        assert not check.passed
        assert "1.0" in check.detail


class TestValidateAll:
    def test_report_on_success(self):
        checks = [ShapeCheck("a", True, "ok"),
                  ShapeCheck("b", True, "ok")]
        report = validate_all(checks)
        assert report.count("PASS") == 2

    def test_raises_on_failure(self):
        checks = [ShapeCheck("a", True, "ok"),
                  ShapeCheck("b", False, "broken")]
        with pytest.raises(AssertionError) as excinfo:
            validate_all(checks)
        assert "FAIL" in str(excinfo.value)


class TestOnRealSweep:
    def test_figure3_shapes_via_helpers(self, small_instance):
        """Wire the helpers to a real (tiny) offline sweep."""
        from repro.baselines.greedy import GreedyOffline
        from repro.core.heu import Heu
        from repro.experiments.runner import run_offline_sweep
        from repro.experiments.settings import base_config

        sweep = run_offline_sweep(
            algorithm_factories=[Heu, GreedyOffline],
            x_values=[20, 30],
            make_config=lambda x, seed: small_instance.config,
            num_requests_of=lambda x: int(x),
            num_seeds=1,
            x_label="num_requests")
        report = validate_all([
            check_dominates(sweep, "Heu", "Greedy"),
            check_winner_everywhere(sweep, "Heu"),
        ])
        assert "PASS" in report


class TestFairnessIndex:
    def test_jains_index(self):
        from repro.sim.metrics import jains_fairness_index

        assert jains_fairness_index([]) == 1.0
        assert jains_fairness_index([5, 5, 5]) == pytest.approx(1.0)
        assert jains_fairness_index([0, 0, 0]) == pytest.approx(1.0)
        skewed = jains_fairness_index([0, 0, 0, 1000])
        assert skewed == pytest.approx(0.25, abs=0.01)
        with pytest.raises(ConfigurationError):
            jains_fairness_index([-1.0])
