"""Tests for the ASCII line plot renderer."""

import pytest

from repro.experiments.reporting import render_ascii_plot
from repro.sim.results import RunRecord, SweepResult


def make_sweep(series):
    sweep = SweepResult("n")
    for algorithm, values in series.items():
        for i, value in enumerate(values):
            sweep.add(RunRecord(algorithm, 100 * (i + 1), 0,
                                {"total_reward": float(value)}))
    return sweep


class TestRenderAsciiPlot:
    def test_markers_and_legend(self):
        sweep = make_sweep({"Heu": [1, 2, 3], "Greedy": [3, 2, 1]})
        text = render_ascii_plot(sweep, "total_reward")
        assert "H=Heu" in text and "G=Greedy" in text
        assert "H" in text.split("\n")[0] or "H" in text

    def test_extremes_on_edges(self):
        sweep = make_sweep({"A": [0, 100]})
        text = render_ascii_plot(sweep, "total_reward", height=5,
                                 width=20)
        lines = text.split("\n")
        # Max value row carries the high label; min the low label.
        assert lines[0].strip().startswith("100.0")
        assert "0.0" in lines[4]

    def test_overlap_marker(self):
        sweep = make_sweep({"A": [5, 5], "B": [5, 9]})
        text = render_ascii_plot(sweep, "total_reward", height=6,
                                 width=10)
        assert "*" in text

    def test_title(self):
        sweep = make_sweep({"A": [1, 2]})
        text = render_ascii_plot(sweep, "total_reward", title="demo")
        assert text.startswith("demo")

    def test_flat_series_does_not_crash(self):
        sweep = make_sweep({"A": [7, 7, 7]})
        text = render_ascii_plot(sweep, "total_reward")
        assert "A=A" in text

    def test_single_x(self):
        sweep = make_sweep({"A": [4]})
        text = render_ascii_plot(sweep, "total_reward")
        assert "A" in text

    def test_bad_canvas(self):
        sweep = make_sweep({"A": [1, 2]})
        with pytest.raises(ValueError):
            render_ascii_plot(sweep, "total_reward", height=1)

    def test_marker_collision_renamed(self):
        sweep = make_sweep({"Alpha": [1, 2], "Avocado": [2, 3]})
        text = render_ascii_plot(sweep, "total_reward")
        assert "A=Alpha" in text
        assert "B=Avocado" in text
