"""Tracing through the sweep executor: determinism and attribution.

The two load-bearing properties:

* tracing is *inert* - records (and the metrics inside them) are
  identical with tracing on or off, and the canonical trace (wall
  clock stripped) is identical between serial and parallel backends;
* tracing is *complete* - the aggregated summary attributes nearly all
  of a run's wall time to named top-level spans.
"""


from repro.baselines.greedy import GreedyOffline, GreedyOnline
from repro.core.appro import Appro
from repro.core.dynamic_rr import DynamicRR
from repro.experiments.executor import (OFFLINE, ONLINE, RunSpec,
                                        execute_run, execute_specs)
from repro.experiments.runner import run_offline_sweep
from repro.experiments.settings import base_config
from repro.telemetry import (canonical_events, collect_sweep_trace,
                             get_tracer, NULL_TRACER, summarize_events)


def tiny_config(x=0, seed=0):
    cfg = base_config(seed)
    return cfg.with_overrides(
        network=cfg.network.__class__(num_base_stations=6))


def record_key(record):
    return (record.algorithm, record.x, record.seed,
            tuple(sorted((k, v) for k, v in record.metrics.items()
                         if k != "runtime_s")))


def offline_spec(trace=False, factory=GreedyOffline, num_requests=8):
    return RunSpec(mode=OFFLINE, factory=factory, x=8.0, seed=1,
                   config=tiny_config(8, 1),
                   num_requests=num_requests, trace=trace)


def online_spec(trace=False, factory=GreedyOnline):
    return RunSpec(mode=ONLINE, factory=factory, x=6.0, seed=0,
                   config=tiny_config(6, 0), num_requests=6,
                   horizon_slots=10, trace=trace)


class TestTraceIsInert:
    def test_untraced_record_has_no_trace(self):
        assert execute_run(offline_spec()).trace is None

    def test_traced_record_carries_events(self):
        record = execute_run(offline_spec(trace=True))
        assert record.trace
        assert all(isinstance(e, dict) for e in record.trace)

    def test_metrics_identical_with_and_without_tracing(self):
        plain = execute_run(offline_spec())
        traced = execute_run(offline_spec(trace=True))
        assert record_key(plain) == record_key(traced)

    def test_online_metrics_identical_with_tracing(self):
        plain = execute_run(online_spec(factory=DynamicRR))
        traced = execute_run(online_spec(factory=DynamicRR, trace=True))
        assert record_key(plain) == record_key(traced)

    def test_tracer_restored_after_traced_run(self):
        execute_run(offline_spec(trace=True))
        assert get_tracer() is NULL_TRACER


class TestSerialParallelTraceEquivalence:
    def specs(self):
        return [offline_spec(), online_spec(),
                online_spec(factory=DynamicRR)]

    def test_canonical_traces_identical(self):
        specs = self.specs()
        serial = execute_specs(specs, workers=1, trace=True)
        parallel = execute_specs(specs, workers=3, trace=True)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])
        for left, right in zip(serial, parallel):
            assert (canonical_events(left.trace)
                    == canonical_events(right.trace))

    def test_merged_stream_is_canonical_spec_order(self):
        records = execute_specs(self.specs(), workers=3, trace=True)
        merged = collect_sweep_trace(records)
        runs = [e["run"] for e in merged]
        assert runs == sorted(runs)
        assert set(runs) == {0, 1, 2}


class TestExpectedSpans:
    def test_offline_appro_spans(self):
        record = execute_run(offline_spec(trace=True, factory=Appro,
                                          num_requests=10))
        names = {e["name"] for e in record.trace
                 if e["kind"] == "span"}
        assert {"offline_run", "build_lp", "lp_solve",
                "rounding"} <= names
        counters = {e["name"] for e in record.trace
                    if e["kind"] == "counter"}
        assert "rounding_rounds" in counters

    def test_online_dynamic_rr_spans(self):
        record = execute_run(online_spec(trace=True, factory=DynamicRR))
        names = {e["name"] for e in record.trace
                 if e["kind"] == "span"}
        assert {"slot_admission", "bandit_round"} <= names
        values = {e["name"] for e in record.trace
                  if e["kind"] == "value"}
        assert "threshold_mhz" in values

    def test_runner_trace_knob(self):
        sweep = run_offline_sweep(
            algorithm_factories=[GreedyOffline],
            x_values=[8],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=1,
            x_label="num_requests",
            trace=True)
        assert all(r.trace for r in sweep.records)


class TestAttribution:
    def test_traced_run_attributes_most_wall_time(self):
        """Top-level spans must cover >= 90% of the run's wall time."""
        record = execute_run(offline_spec(trace=True, factory=Appro,
                                          num_requests=30))
        summary = summarize_events(record.trace)
        total = record.metrics["runtime_s"]
        assert total > 0
        # offline_run wraps the full algorithm pipeline; runtime_s is
        # measured inside it, so coverage should be essentially 1.
        assert summary.attributed_fraction(total) >= 0.9

    def test_online_run_attributes_most_wall_time(self):
        record = execute_run(online_spec(trace=True, factory=DynamicRR))
        summary = summarize_events(record.trace)
        assert summary.attributed_fraction(
            record.metrics["runtime_s"]) >= 0.9
