"""Profiling through the sweep executor: inertness and determinism.

The acceptance properties of the performance-attribution layer:

* profiling is *inert* - records (and their metrics) are identical
  with profiling on or off, serially and across the process pool, and
  journal bytes do not change when profiling rides along;
* the digest is *deterministic* - its canonical half (span paths,
  call counts, domain counters) is equal between serial and parallel
  execution of the same specs.
"""

import json

from repro.baselines.greedy import GreedyOffline, GreedyOnline
from repro.core.appro import Appro
from repro.core.dynamic_rr import DynamicRR
from repro.experiments.executor import (OFFLINE, ONLINE, RunSpec,
                                        execute_run, execute_specs)
from repro.experiments.settings import base_config
from repro.telemetry import canonical_digest, get_tracer, NULL_TRACER
from repro.telemetry.profiling import ProfileDigest


def tiny_config(x=0, seed=0):
    cfg = base_config(seed)
    return cfg.with_overrides(
        network=cfg.network.__class__(num_base_stations=6))


def record_key(record):
    return (record.algorithm, record.x, record.seed,
            tuple(sorted((k, v) for k, v in record.metrics.items()
                         if k != "runtime_s")))


def offline_spec(factory=GreedyOffline, num_requests=8, **knobs):
    return RunSpec(mode=OFFLINE, factory=factory, x=8.0, seed=1,
                   config=tiny_config(8, 1),
                   num_requests=num_requests, **knobs)


def online_spec(factory=GreedyOnline, **knobs):
    return RunSpec(mode=ONLINE, factory=factory, x=6.0, seed=0,
                   config=tiny_config(6, 0), num_requests=6,
                   horizon_slots=10, **knobs)


class TestProfileIsInert:
    def test_unprofiled_record_has_no_profile(self):
        record = execute_run(offline_spec())
        assert record.profile is None
        assert record.profile_stats is None
        assert record.profile_mem is None

    def test_metrics_identical_with_and_without_profiling(self):
        plain = execute_run(offline_spec(factory=Appro))
        profiled = execute_run(offline_spec(factory=Appro,
                                            profile=True))
        assert record_key(plain) == record_key(profiled)

    def test_online_metrics_identical_with_profiling(self):
        plain = execute_run(online_spec(factory=DynamicRR))
        profiled = execute_run(online_spec(factory=DynamicRR,
                                           profile=True))
        assert record_key(plain) == record_key(profiled)

    def test_profile_does_not_switch_on_trace(self):
        record = execute_run(offline_spec(profile=True))
        assert record.trace is None
        assert record.journal is None
        assert record.profile is not None

    def test_journal_bytes_identical_with_profiling(self):
        def journal_bytes(record):
            return "".join(
                json.dumps(event, sort_keys=True) + "\n"
                for event in record.journal).encode()

        plain = execute_run(offline_spec(factory=Appro, journal=True))
        profiled = execute_run(offline_spec(factory=Appro,
                                            journal=True,
                                            profile=True,
                                            profile_mem=True))
        assert journal_bytes(plain) == journal_bytes(profiled)

    def test_tracer_restored_after_profiled_run(self):
        execute_run(offline_spec(profile=True))
        assert get_tracer() is NULL_TRACER


class TestDigestContents:
    def test_appro_digest_spans_and_counters(self):
        record = execute_run(offline_spec(factory=Appro,
                                          num_requests=10,
                                          profile=True))
        digest = ProfileDigest.from_dict(record.profile)
        assert "offline_run" in digest.spans
        assert any(path.endswith("lp_solve")
                   for path in digest.spans)
        assert any(series.startswith("lp_solves_total")
                   for series in digest.counters)
        # Registry counters join the same namespace.
        assert any(series.startswith("rounding_")
                   for series in digest.counters)

    def test_profile_stats_ride_home(self):
        record = execute_run(offline_spec(factory=Appro,
                                          profile=True))
        assert record.profile_stats
        assert all(isinstance(k, str)
                   for k in record.profile_stats)

    def test_profile_mem_rows(self):
        record = execute_run(offline_spec(profile=True,
                                          profile_mem=True))
        assert record.profile_mem
        assert all({"site", "size_kb", "count"} <= set(row)
                   for row in record.profile_mem)

    def test_profile_mem_alone_skips_digest(self):
        record = execute_run(offline_spec(profile_mem=True))
        assert record.profile is None
        assert record.profile_mem


class TestSerialParallelProfileEquivalence:
    def specs(self, **knobs):
        return [offline_spec(factory=Appro, **knobs),
                online_spec(**knobs),
                online_spec(factory=DynamicRR, **knobs)]

    def test_canonical_digests_identical(self):
        serial = execute_specs(self.specs(), workers=1, profile=True)
        parallel = execute_specs(self.specs(), workers=2, profile=True)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])
        for left, right in zip(serial, parallel):
            assert left.profile and right.profile
            assert (canonical_digest(left.profile)
                    == canonical_digest(right.profile))

    def test_profiled_journal_bytes_identical_across_backends(self):
        serial = execute_specs(self.specs(journal=True), workers=1)
        profiled = execute_specs(self.specs(journal=True),
                                 workers=2, profile=True)
        for left, right in zip(serial, profiled):
            assert left.journal == right.journal
