"""Tests for the parallel sweep execution layer.

The load-bearing property is the determinism guarantee: for the same
spec list, every backend (serial, process pool, any worker count or
chunking) must return the *identical* sequence of records - same
algorithms, x, seeds, and metric values to full float precision.
"""

import functools

import numpy as np
import pytest

from repro.baselines.greedy import GreedyOffline, GreedyOnline
from repro.baselines.ocorp import OcorpOffline, OcorpOnline
from repro.core.dynamic_rr import DynamicRR
from repro.exceptions import ConfigurationError
from repro.experiments.executor import (OFFLINE, ONLINE, ProcessBackend,
                                        RunSpec, SerialBackend,
                                        _fresh_algorithm,
                                        default_chunksize, execute_run,
                                        execute_specs, execute_sweep,
                                        make_backend, resolve_workers,
                                        validate_chunksize)
from repro.experiments.runner import (build_offline_specs,
                                      build_online_specs,
                                      run_offline_sweep,
                                      run_online_sweep)
from repro.experiments.settings import base_config


def tiny_config(x, seed):
    cfg = base_config(seed)
    return cfg.with_overrides(
        network=cfg.network.__class__(num_base_stations=6))


def record_key(record):
    """A record as a fully-comparable tuple (exact float equality).

    ``runtime_s`` is excluded: it is a wall-clock measurement of the
    executing machine, not a simulated quantity, so it legitimately
    varies between runs.  Every other metric must match exactly.
    """
    return (record.algorithm, record.x, record.seed,
            tuple(sorted((k, v) for k, v in record.metrics.items()
                         if k != "runtime_s")))


class TestRunSpec:
    def test_unknown_mode_rejected(self):
        spec = RunSpec(mode="nope", factory=GreedyOffline, x=1.0,
                       seed=0, config=tiny_config(1, 0), num_requests=4)
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_online_needs_horizon(self):
        spec = RunSpec(mode=ONLINE, factory=GreedyOnline, x=1.0,
                       seed=0, config=tiny_config(1, 0), num_requests=4)
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_bad_num_requests_rejected(self):
        spec = RunSpec(mode=OFFLINE, factory=GreedyOffline, x=1.0,
                       seed=0, config=tiny_config(1, 0), num_requests=0)
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_execute_run_is_deterministic(self):
        spec = RunSpec(mode=OFFLINE, factory=GreedyOffline, x=8.0,
                       seed=1, config=tiny_config(8, 1), num_requests=8)
        first = execute_run(spec)
        second = execute_run(spec)
        assert record_key(first) == record_key(second)
        assert first.algorithm == "Greedy"


class TestFactorySeeding:
    """Policies with an rng constructor knob must not fall back to OS
    entropy inside a sweep (regression: DynamicRR made Figs. 4-6
    irreproducible even serially)."""

    def test_rng_factory_is_seeded_deterministically(self):
        a = _fresh_algorithm(DynamicRR, seed=3)
        b = _fresh_algorithm(DynamicRR, seed=3)
        assert (a._rng.integers(0, 10**9, size=4)
                == b._rng.integers(0, 10**9, size=4)).all()

    def test_different_seeds_different_streams(self):
        a = _fresh_algorithm(DynamicRR, seed=3)
        b = _fresh_algorithm(DynamicRR, seed=4)
        assert not (a._rng.integers(0, 10**9, size=8)
                    == b._rng.integers(0, 10**9, size=8)).all()

    def test_explicitly_bound_rng_is_respected(self):
        factory = functools.partial(DynamicRR,
                                    rng=np.random.default_rng(99))
        reference = np.random.default_rng(99).integers(0, 10**9, size=4)
        policy = _fresh_algorithm(factory, seed=3)
        assert (policy._rng.integers(0, 10**9, size=4)
                == reference).all()

    def test_factory_without_rng_param_untouched(self):
        policy = _fresh_algorithm(GreedyOnline, seed=3)
        assert policy.name == "Greedy"

    def test_dynamic_rr_run_is_reproducible(self):
        spec = RunSpec(mode=ONLINE, factory=DynamicRR, x=6.0, seed=0,
                       config=tiny_config(6, 0), num_requests=6,
                       horizon_slots=8)
        assert record_key(execute_run(spec)) \
            == record_key(execute_run(spec))


class TestWorkerKnob:
    def test_resolve_defaults(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-2)

    def test_backend_selection(self):
        assert isinstance(make_backend(1), SerialBackend)
        assert isinstance(make_backend(None), SerialBackend)
        backend = make_backend(3)
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 3

    def test_process_backend_guards(self):
        with pytest.raises(ConfigurationError):
            ProcessBackend(1)
        with pytest.raises(ConfigurationError):
            ProcessBackend(2, chunksize=0)

    def test_default_chunksize(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(7, 4) == 1
        assert default_chunksize(64, 4) == 4

    def test_empty_spec_list(self):
        assert execute_specs([], workers=4) == []

    def test_nonpositive_chunksize_rejected_everywhere(self):
        # The guard must fire at construction on every path - even
        # serial ones, which would otherwise silently ignore the knob.
        for bad in (0, -3):
            with pytest.raises(ConfigurationError):
                validate_chunksize(bad)
            with pytest.raises(ConfigurationError):
                make_backend(1, chunksize=bad)
            with pytest.raises(ConfigurationError):
                make_backend(4, chunksize=bad)
            with pytest.raises(ConfigurationError):
                execute_specs([], workers=1, chunksize=bad)
        assert validate_chunksize(None) is None
        assert validate_chunksize(2) == 2


class TestSerialParallelEquivalence:
    """workers=1 and workers=4 must agree bit for bit."""

    def fig3_shaped_specs(self):
        # Fig. 3 shape: offline algorithms x |R| sweep x seeds.
        return build_offline_specs(
            algorithm_factories=[GreedyOffline, OcorpOffline],
            x_values=[8, 12],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=2)

    def fig4_shaped_specs(self):
        # Fig. 4 shape: online policies x |R| sweep x seeds.
        return build_online_specs(
            policy_factories=[GreedyOnline, OcorpOnline],
            x_values=[6, 10],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            horizon_slots=15,
            num_seeds=2)

    def test_fig3_shaped_sweep_identical(self):
        specs = self.fig3_shaped_specs()
        serial = execute_specs(specs, workers=1)
        parallel = execute_specs(specs, workers=4)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])

    def test_fig4_shaped_sweep_identical(self):
        specs = self.fig4_shaped_specs()
        serial = execute_specs(specs, workers=1)
        parallel = execute_specs(specs, workers=4)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in parallel])

    def test_chunksize_does_not_change_records(self):
        specs = self.fig3_shaped_specs()
        serial = execute_specs(specs, workers=1)
        chunked = execute_specs(specs, workers=2, chunksize=3)
        assert ([record_key(r) for r in serial]
                == [record_key(r) for r in chunked])

    def test_execute_sweep_preserves_canonical_order(self):
        specs = self.fig3_shaped_specs()
        sweep = execute_sweep(specs, "num_requests", workers=4)
        assert [(r.x, r.seed, r.algorithm) for r in sweep.records] \
            == [(s.x, s.seed, s.factory().name) for s in specs]


class TestRunnerWorkersKnob:
    """The public sweep runners honor workers end to end."""

    def test_offline_sweep_parallel_matches_serial(self):
        kwargs = dict(
            algorithm_factories=[GreedyOffline, OcorpOffline],
            x_values=[8, 12],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=2,
            x_label="num_requests")
        serial = run_offline_sweep(**kwargs)
        parallel = run_offline_sweep(workers=4, **kwargs)
        assert ([record_key(r) for r in serial.records]
                == [record_key(r) for r in parallel.records])
        assert parallel.x_label == "num_requests"

    def test_online_sweep_parallel_matches_serial(self):
        kwargs = dict(
            policy_factories=[GreedyOnline],
            x_values=[10],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            horizon_slots=15,
            num_seeds=2,
            x_label="num_requests")
        serial = run_online_sweep(**kwargs)
        parallel = run_online_sweep(workers=4, **kwargs)
        assert ([record_key(r) for r in serial.records]
                == [record_key(r) for r in parallel.records])
