"""Tests for the sweep runners and ASCII reporting."""


from repro.baselines.greedy import GreedyOffline, GreedyOnline
from repro.core.appro import Appro
from repro.experiments.reporting import render_figure, render_table
from repro.experiments.runner import run_offline_sweep, run_online_sweep
from repro.experiments.settings import base_config
from repro.sim.results import RunRecord, SweepResult


def tiny_config(x, seed):
    cfg = base_config(seed)
    return cfg.with_overrides(
        network=cfg.network.__class__(num_base_stations=6))


class TestOfflineSweep:
    def test_records_complete(self):
        sweep = run_offline_sweep(
            algorithm_factories=[Appro, GreedyOffline],
            x_values=[8, 12],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            num_seeds=2,
            x_label="num_requests",
        )
        assert sweep.x_values() == [8, 12]
        assert set(sweep.algorithms()) == {"Appro", "Greedy"}
        # 2 x-values x 2 seeds x 2 algorithms.
        assert len(sweep.records) == 8
        for record in sweep.records:
            assert "total_reward" in record.metrics
            assert "avg_latency_ms" in record.metrics
            assert "runtime_s" in record.metrics


class TestOnlineSweep:
    def test_records_complete(self):
        sweep = run_online_sweep(
            policy_factories=[GreedyOnline],
            x_values=[10],
            make_config=tiny_config,
            num_requests_of=lambda x: int(x),
            horizon_slots=20,
            num_seeds=2,
            x_label="num_requests",
        )
        assert len(sweep.records) == 2
        assert sweep.algorithms() == ["Greedy"]


class TestReporting:
    def make_sweep(self):
        sweep = SweepResult("n")
        for x in (1, 2):
            sweep.add(RunRecord("Appro", x, 0,
                                {"total_reward": 10.0 * x}))
            sweep.add(RunRecord("Greedy", x, 0,
                                {"total_reward": 5.0 * x}))
        return sweep

    def test_render_table_layout(self):
        text = render_table(self.make_sweep(), "total_reward",
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Appro" in text and "Greedy" in text
        assert "10.0" in text and "20.0" in text

    def test_preferred_order(self):
        text = render_table(self.make_sweep(), "total_reward")
        assert text.index("Appro") < text.index("Greedy")

    def test_missing_cell_rendered_as_dash(self):
        sweep = self.make_sweep()
        sweep.add(RunRecord("Heu", 1, 0, {"total_reward": 7.0}))
        text = render_table(sweep, "total_reward")
        heu_line = next(l for l in text.splitlines() if "Heu" in l)
        assert "-" in heu_line

    def test_render_figure_panels(self):
        sweep = self.make_sweep()
        text = render_figure(sweep, ("total_reward",), "Figure X")
        assert "Figure X (a): total_reward" in text
