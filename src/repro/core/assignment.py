"""Decision and result containers shared by all algorithms.

Every algorithm - exact, approximate, heuristic, online, or baseline -
produces a :class:`ScheduleResult`: one :class:`OffloadDecision` per
request recording whether it was admitted, where it ran, what rate it
realized, the reward earned, and the experienced latency.  The metrics
layer (:mod:`repro.sim.metrics`) aggregates these into the series the
paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from ..exceptions import SchedulingError


@dataclass(frozen=True)
class SlotAssignment:
    """A (request, station, starting slot) triple from rounding.

    Attributes:
        request_id: the request.
        station_id: base station it was randomly assigned to.
        slot: starting resource-slot index (0-based).
    """

    request_id: int
    station_id: int
    slot: int


@dataclass
class OffloadDecision:
    """Terminal outcome for one request.

    Attributes:
        request_id: the request.
        admitted: whether it was scheduled onto the network at all.
        primary_station: station hosting (most of) the pipeline, or
            None when rejected.
        migrated_tasks: task index -> station, for tasks Heu moved off
            the primary station.
        realized_rate_mbps: revealed data rate (None if never realized,
            e.g. rejected before scheduling).
        reward: dollars earned (0 for rejected / failed requests).
        latency_ms: experienced latency ``D_j`` (None when rejected).
        waiting_ms: the ``b_j - a_j`` component of the latency.
        deadline_met: whether Eq. (1) held (vacuously False when
            rejected).
    """

    request_id: int
    admitted: bool = False
    primary_station: Optional[int] = None
    migrated_tasks: Dict[int, int] = field(default_factory=dict)
    realized_rate_mbps: Optional[float] = None
    reward: float = 0.0
    latency_ms: Optional[float] = None
    waiting_ms: float = 0.0
    deadline_met: bool = False

    def stations(self) -> List[int]:
        """All stations serving this request (primary first)."""
        if self.primary_station is None:
            return []
        extra = [sid for sid in self.migrated_tasks.values()
                 if sid != self.primary_station]
        seen = {self.primary_station}
        ordered = [self.primary_station]
        for sid in extra:
            if sid not in seen:
                seen.add(sid)
                ordered.append(sid)
        return ordered


class ScheduleResult:
    """The set of per-request decisions produced by one algorithm run.

    Args:
        algorithm: display name of the producing algorithm.
    """

    def __init__(self, algorithm: str) -> None:
        self.algorithm = algorithm
        self._decisions: Dict[int, OffloadDecision] = {}
        self.runtime_s: float = 0.0

    def add(self, decision: OffloadDecision) -> None:
        """Record one decision.

        Raises:
            SchedulingError: if the request already has a decision.
        """
        if decision.request_id in self._decisions:
            raise SchedulingError(
                f"duplicate decision for request {decision.request_id}")
        self._decisions[decision.request_id] = decision

    def decision(self, request_id: int) -> OffloadDecision:
        """The decision for one request."""
        try:
            return self._decisions[request_id]
        except KeyError:
            raise SchedulingError(
                f"no decision recorded for request {request_id}") from None

    @property
    def decisions(self) -> Mapping[int, OffloadDecision]:
        """All decisions keyed by request id."""
        return dict(self._decisions)

    def __len__(self) -> int:
        return len(self._decisions)

    # ------------------------------------------------------------------
    # Aggregates (the quantities the paper's figures plot)
    # ------------------------------------------------------------------
    @property
    def total_reward(self) -> float:
        """Total reward across all requests."""
        return float(sum(d.reward for d in self._decisions.values()))

    @property
    def num_admitted(self) -> int:
        """Number of admitted requests."""
        return sum(1 for d in self._decisions.values() if d.admitted)

    @property
    def num_rewarded(self) -> int:
        """Admitted requests that actually earned a reward."""
        return sum(1 for d in self._decisions.values() if d.reward > 0)

    @property
    def admission_rate(self) -> float:
        """Fraction of requests admitted (0 when empty)."""
        if not self._decisions:
            return 0.0
        return self.num_admitted / len(self._decisions)

    def average_latency_ms(self) -> float:
        """Mean experienced latency over admitted requests (0 if none).

        Matches the figures' "average latency of a request": rejected
        requests have no experienced latency and are excluded.
        """
        latencies = [d.latency_ms for d in self._decisions.values()
                     if d.admitted and d.latency_ms is not None]
        if not latencies:
            return 0.0
        return float(sum(latencies) / len(latencies))

    def latency_distribution_ms(self) -> List[float]:
        """All experienced latencies (admitted requests), sorted."""
        return sorted(d.latency_ms for d in self._decisions.values()
                      if d.admitted and d.latency_ms is not None)

    def waiting_distribution_ms(self) -> List[float]:
        """All scheduling waits ``b_j - a_j``, sorted (all requests).

        Rejected/dropped requests contribute the waiting they
        accumulated before the system gave up on them - exactly the
        starvation the paper's Section V sets out to avoid.
        """
        return sorted(d.waiting_ms for d in self._decisions.values())

    def average_waiting_ms(self) -> float:
        """Mean scheduling wait over all requests (0 when empty)."""
        waits = self.waiting_distribution_ms()
        if not waits:
            return 0.0
        return float(sum(waits) / len(waits))

    def max_waiting_ms(self) -> float:
        """Worst scheduling wait - the starvation indicator."""
        waits = self.waiting_distribution_ms()
        return waits[-1] if waits else 0.0

    def summary(self) -> Dict[str, float]:
        """A compact numeric summary for tables."""
        return {
            "total_reward": self.total_reward,
            "avg_latency_ms": self.average_latency_ms(),
            "num_admitted": float(self.num_admitted),
            "num_rewarded": float(self.num_rewarded),
            "admission_rate": self.admission_rate,
            "runtime_s": self.runtime_s,
        }

    def __repr__(self) -> str:
        return (f"ScheduleResult({self.algorithm!r}, n={len(self)}, "
                f"reward={self.total_reward:.1f}, "
                f"avg_latency={self.average_latency_ms():.1f} ms)")
