"""The problem instance every algorithm consumes.

A :class:`ProblemInstance` ties together the MEC network, its path
table, the latency model, and the slot geometry, so algorithms receive
one coherent object instead of five loosely related ones.  The workload
(list of :class:`~repro.requests.request.ARRequest`) stays separate
because the same instance is reused across workload sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..config import SimulationConfig
from ..exceptions import ConfigurationError
from ..network.capacity import CapacityLedger, ResourceSlots
from ..network.paths import PathTable
from ..network.topology import MECNetwork, generate_topology
from ..requests.generator import RequestGenerator
from ..requests.request import ARRequest
from ..rng import RngForks
from .latency import LatencyModel


@dataclass
class ProblemInstance:
    """An MEC network plus the models the algorithms query.

    Attributes:
        network: the MEC network ``G = (BS, E)``.
        paths: shortest-path table over the backhaul.
        latency: the Eq. (2) latency model.
        config: the full simulation configuration this instance was
            built from.
    """

    network: MECNetwork
    paths: PathTable
    latency: LatencyModel
    config: SimulationConfig

    @classmethod
    def build(cls, config: Optional[SimulationConfig] = None,
              seed: Optional[int] = None) -> "ProblemInstance":
        """Construct a seeded instance from a configuration.

        Args:
            config: simulation parameters; paper defaults when None.
            seed: overrides ``config.seed`` when given.
        """
        if config is None:
            config = SimulationConfig()
        config.validate()
        root_seed = config.seed if seed is None else seed
        forks = RngForks(root_seed)
        network = generate_topology(config.network, forks.child("topology"))
        paths = PathTable(network)
        latency = LatencyModel(
            network, paths,
            proc_delay_range_ms=config.requests.proc_delay_range_ms,
            rng=forks.child("latency"))
        return cls(network=network, paths=paths, latency=latency,
                   config=config)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def slot_size_mhz(self) -> float:
        """Resource slot capacity ``C_l``."""
        return self.network.slot_size_mhz

    @property
    def c_unit(self) -> float:
        """``C_unit`` (MHz per MB/s)."""
        return self.config.requests.c_unit_mhz_per_mbps

    def slots_of(self, station_id: int) -> ResourceSlots:
        """Slot geometry of one station."""
        return ResourceSlots(
            capacity_mhz=self.network.station(station_id).capacity_mhz,
            slot_size_mhz=self.slot_size_mhz)

    def max_num_slots(self) -> int:
        """Largest slot count across stations (the ``L`` loop bound)."""
        return max(self.network.num_slots(sid)
                   for sid in self.network.station_ids)

    def new_ledger(self) -> CapacityLedger:
        """A fresh, empty capacity ledger for this network."""
        return CapacityLedger(self.network)

    def new_workload(self, num_requests: Optional[int] = None,
                     seed: Optional[int] = None,
                     horizon_slots: Optional[int] = None
                     ) -> List[ARRequest]:
        """Draw a workload consistent with this instance's config.

        Args:
            num_requests: overrides ``config.requests.num_requests``.
            seed: workload seed; derived from the instance seed when
                None.
            horizon_slots: when given, arrivals spread uniformly over
                the horizon (online workload); otherwise a batch at
                slot 0 (offline workload).
        """
        root = self.config.seed if seed is None else seed
        forks = RngForks(root)
        generator = RequestGenerator(self.config.requests, self.network,
                                     rng=forks.child("workload"))
        if horizon_slots is None:
            return generator.generate_batch(num_requests)
        return generator.generate_arrivals(num_requests, horizon_slots)

    def validate_workload(self, requests: List[ARRequest]) -> None:
        """Sanity-check a workload against this instance.

        Raises:
            ConfigurationError: when a request references an unknown
                serving station.
        """
        known = set(self.network.station_ids)
        for request in requests:
            if request.serving_station not in known:
                raise ConfigurationError(
                    f"request {request.request_id} attaches to unknown "
                    f"station {request.serving_station}")
