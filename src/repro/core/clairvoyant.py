"""Clairvoyant offline bound for the dynamic (online) problem.

The regret of Theorem 3 is measured against the best fixed threshold;
a stronger comparator is the **clairvoyant scheduler** that knows every
arrival and every realized data rate in advance.  This module computes
a clairvoyant *bound* (not a policy): with full knowledge, the best any
schedule can do is

* start each request within its waiting budget (the deadline minus its
  best-case placement delay - later starts forfeit the reward), and
* never exceed, at any slot, the network's computing capacity with the
  realized demands of the concurrently running streams.

Relaxing placement to a single network-wide capacity pool and admitting
requests greedily by reward density (reward per MHz-slot) yields an
upper-bound estimate that is cheap to compute and empirically tight
enough to contextualize the online algorithms' rewards.  Every
admission the greedy makes is feasible for the pooled relaxation, so
``clairvoyant_bound >= greedy admission total`` and the pooled optimum
upper-bounds every real schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from .instance import ProblemInstance


@dataclass(frozen=True)
class ClairvoyantResult:
    """Outcome of the clairvoyant bound computation.

    Attributes:
        upper_bound: pooled-capacity greedy bound on total reward.
        num_servable: requests the bound managed to schedule.
        peak_utilization: max fraction of pooled capacity used.
    """

    upper_bound: float
    num_servable: int
    peak_utilization: float


def clairvoyant_bound(instance: ProblemInstance,
                      requests: Sequence[ARRequest],
                      horizon_slots: int,
                      slot_length_ms: float = 50.0,
                      rng: RngLike = None) -> ClairvoyantResult:
    """Upper-bound estimate of the best offline schedule's reward.

    Realizes every request (idempotent if already realized), sorts by
    reward per unit of MHz-slot consumption, and packs them into the
    pooled capacity timeline within each request's feasible start
    window.

    Args:
        instance: the problem instance.
        requests: the arrival sequence (arrival slots set).
        horizon_slots: monitoring period ``T``.
        slot_length_ms: slot duration.
        rng: randomness for realizing still-unrealized requests.
    """
    if horizon_slots < 1:
        raise ConfigurationError(
            f"horizon must be >= 1 slot, got {horizon_slots}")
    rng = ensure_rng(rng)
    pool = instance.network.total_capacity_mhz()
    usage = np.zeros(horizon_slots)

    candidates = []
    for request in requests:
        if request.arrival_slot >= horizon_slots:
            continue
        request.realize(rng)
        demand = request.realized_demand_mhz
        duration = request.stream_duration_slots
        # Latest start still meeting the deadline via the best station.
        best_delay = min(
            instance.latency.placement_delay_ms(request, sid)
            for sid in instance.network.station_ids)
        budget_ms = request.deadline_ms - best_delay
        if budget_ms < 0:
            continue
        latest_start = request.arrival_slot + int(
            budget_ms // slot_length_ms)
        latest_start = min(latest_start, horizon_slots - 1)
        density = request.realized_reward / max(demand * duration, 1e-9)
        candidates.append((density, request, demand, duration,
                           latest_start))

    candidates.sort(key=lambda c: (-c[0], c[1].request_id))
    total = 0.0
    served = 0
    for _density, request, demand, duration, latest_start in candidates:
        placed = False
        for start in range(request.arrival_slot, latest_start + 1):
            end = min(start + duration, horizon_slots)
            window = usage[start:end]
            if np.all(window + demand <= pool + 1e-9):
                usage[start:end] += demand
                total += request.realized_reward
                served += 1
                placed = True
                break
        _ = placed
    peak = float(usage.max() / pool) if pool > 0 else 0.0
    return ClairvoyantResult(upper_bound=total, num_servable=served,
                             peak_utilization=peak)


def competitive_ratio(online_reward: float,
                      bound: ClairvoyantResult) -> float:
    """``online reward / clairvoyant bound`` (1.0 when bound is 0)."""
    if online_reward < 0:
        raise ConfigurationError(
            f"online reward must be >= 0, got {online_reward}")
    if bound.upper_bound <= 0:
        return 1.0
    return online_reward / bound.upper_bound
