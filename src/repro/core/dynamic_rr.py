"""Algorithm **DynamicRR** (Algorithm 3): online learning of ``C^th``.

Per time slot:

1. The Lipschitz bandit (successive elimination over the discretized
   threshold grid ``Z'``) proposes the minimum per-request share
   ``C^th_t`` (lines 1-9).
2. ``R_t`` is built by sorting pending requests by expected data rate
   and filling while the average round-robin share stays above
   ``C^th_t`` (lines 10-11).
3. **LP-PT** (Eqs. 22-23) is solved over ``R_t``, rounded with the
   ``y/4`` rule, and admitted slot-by-slot - the Heu machinery with LP
   replaced by LP-PT (line 12).  Requests that fail remain pending and
   retry in later slots (preemptive waiting).
4. The slot's settled reward is fed back to the bandit as that arm's
   sample.

Reward attribution is exact: the engine settles a request's reward in
the very slot it starts (its responsiveness ``D_j`` is known after its
first served share), which is the slot whose arm admitted it.

Bandit reward normalization: arm samples are the slot reward divided by
a fixed scale (an estimate of the maximum achievable per-slot reward),
clipped to [0, 1] so the confidence radius calibration applies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..bandits.lipschitz import LipschitzBandit
from ..bandits.regret import RegretTracker
from ..config import OnlineConfig
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..sim.events import Event, EventKind
from ..solver.interface import WarmStartState, solve_lp
from ..telemetry import get_tracer
from ..telemetry.audit import get_journal
from ..telemetry.metrics import get_metrics
from .lp_relaxation import LpPtWorkspace, build_lp_pt
from .rounding import DEFAULT_ROUNDING_SCALE, admit_slot_by_slot, \
    randomized_round


class DynamicRR:
    """The online learning policy for the dynamic problem.

    Implements the :class:`~repro.sim.online_engine.OnlinePolicy`
    surface; run it with :class:`~repro.sim.online_engine.OnlineEngine`.

    Args:
        online_config: bandit/threshold parameters (paper defaults when
            None).
        lp_backend: LP solver backend for LP-PT.
        rounding_scale: the ``y/4`` divisor.
        warm_start: carry LP-PT build/solve state across rounds (the
            incremental :class:`~repro.core.lp_relaxation.LpPtWorkspace`
            plus the :class:`~repro.solver.interface.WarmStartState`
            fingerprint cache).  Produces exactly the same placements,
            journals, and records as the cold path - disable only to
            measure the cold baseline.
        rng: randomness for rounding and realization order.
    """

    name = "DynamicRR"

    def __init__(self, online_config: Optional[OnlineConfig] = None,
                 lp_backend: str = "scipy",
                 rounding_scale: float = DEFAULT_ROUNDING_SCALE,
                 max_rounds: int = 24,
                 bandit_policy: str = "se",
                 warm_start: bool = True,
                 rng: RngLike = None) -> None:
        if bandit_policy not in ("se", "ucb1", "egreedy"):
            raise ValueError(
                f"bandit_policy must be 'se', 'ucb1' or 'egreedy', got "
                f"{bandit_policy!r}")
        self.config = online_config or OnlineConfig()
        self.config.validate()
        self.lp_backend = lp_backend
        self.rounding_scale = rounding_scale
        self.max_rounds = max_rounds
        #: Which finite-arm learner drives the threshold: the paper's
        #: successive elimination ("se"), UCB1 ("ucb1"), or
        #: epsilon-greedy ("egreedy") - the latter two for ablations.
        self.bandit_policy = bandit_policy
        self.warm_start = warm_start
        self._workspace: Optional[LpPtWorkspace] = None
        self._solve_state: Optional[WarmStartState] = None
        self._rng = ensure_rng(rng)
        self._engine = None
        self._bandit: Optional[LipschitzBandit] = None
        self._reward_scale = 1.0
        self._selected_this_slot = False
        self._last_arm_value: Optional[float] = None
        self._cumulative_reward = 0.0
        #: Regret accounting of the latest run (for the Theorem 3 bench).
        self.tracker = RegretTracker()

    # ------------------------------------------------------------------
    # OnlinePolicy surface
    # ------------------------------------------------------------------
    def begin(self, engine) -> None:
        """Set up the bandit against the engine's horizon."""
        self._engine = engine
        lo, hi = self.config.threshold_range_mhz
        policy = None
        if self.bandit_policy == "ucb1":
            from ..bandits.ucb import UCB1
            policy = UCB1(num_arms=self.config.num_arms,
                          confidence_scale=self.config.confidence_scale)
        elif self.bandit_policy == "egreedy":
            from ..bandits.epsilon_greedy import EpsilonGreedy
            policy = EpsilonGreedy(num_arms=self.config.num_arms,
                                   rng=self._rng)
        self._bandit = LipschitzBandit(
            low=lo, high=hi, num_arms=self.config.num_arms,
            horizon=engine.clock.horizon_slots,
            policy=policy,
            explore_fraction=0.2,
            confidence_scale=self.config.confidence_scale)
        self.tracker = RegretTracker()
        self._cumulative_reward = 0.0
        self._reward_scale = self._estimate_reward_scale(engine)
        # Fresh per run so state never leaks between replications.
        self._workspace = LpPtWorkspace() if self.warm_start else None
        self._solve_state = WarmStartState() if self.warm_start else None

    def schedule(self, slot: int,
                 pending: Sequence[ARRequest]) -> List:
        """Pick ``R_t``, solve LP-PT, round, and admit."""
        from ..sim.online_engine import Placement  # local: avoid cycle

        engine = self._engine
        assert engine is not None and self._bandit is not None
        self._selected_this_slot = False
        if not pending:
            return []

        tracer = get_tracer()
        with tracer.span("bandit_round", algorithm=self.name):
            threshold = self._bandit.select_value()
            self._selected_this_slot = True
            self._last_arm_value = threshold
            tracer.observe("threshold_mhz", threshold)
            metrics = get_metrics()
            if metrics.enabled:
                metrics.inc("bandit_rounds_total")
                metrics.set_gauge("bandit_threshold_mhz", threshold)
            journal = get_journal()
            if journal.enabled:
                journal.record(Event(
                    slot=slot, kind=EventKind.ARM_SELECTED,
                    arm=self._bandit.grid.nearest_arm(threshold),
                    value=threshold))

            from .threshold import select_slot_requests
            r_t = select_slot_requests(pending, engine.total_free_mhz(),
                                       threshold)
        if not r_t:
            return []

        with tracer.span("build_lp", algorithm=self.name) as build_span:
            waiting = {r.request_id: engine.waiting_ms(r, slot)
                       for r in r_t}
            lp, index = build_lp_pt(engine.instance, r_t, waiting,
                                    workspace=self._workspace)
            if self._workspace is not None:
                build_span.annotate(warm=self._workspace.last_mode)
            else:
                build_span.annotate(warm="cold")
        if lp.num_variables == 0:
            return []
        solution = solve_lp(lp, backend=self.lp_backend,
                            warm_start=self._solve_state)
        ledger = self._seeded_ledger(engine, threshold)
        placements: List = []
        remaining = list(r_t)
        stalled_rounds = 0
        options = index.options_table(solution.values)
        for _ in range(self.max_rounds):
            if not remaining or stalled_rounds >= 4:
                break
            with tracer.span("rounding", algorithm=self.name):
                assignments = randomized_round(index, solution.values,
                                               remaining, rng=self._rng,
                                               scale=self.rounding_scale,
                                               options_table=options)
                outcomes = admit_slot_by_slot(engine.instance, remaining,
                                              assignments, ledger,
                                              rng=self._rng,
                                              reserve_cap_mhz=threshold)
            tracer.count("rounding_rounds")
            admitted_ids = set()
            for outcome in outcomes:
                if outcome.admitted:
                    admitted_ids.add(outcome.request.request_id)
                    placements.append(Placement(
                        request_id=outcome.request.request_id,
                        station_id=outcome.assignment.station_id))
            remaining = [r for r in remaining
                         if r.request_id not in admitted_ids]
            stalled_rounds = 0 if admitted_ids else stalled_rounds + 1
        return placements

    def observe(self, slot: int, slot_reward: float) -> None:
        """Feed the slot's settled reward back to the bandit.

        Also records the learning trajectory through the tracer (all
        run-deterministic, so traces stay canonical): the cumulative
        settled reward after this round and how many arms survive
        elimination - together with the per-round ``threshold_mhz``
        observed in :meth:`schedule`, this makes the Theorem 3 learning
        curve directly inspectable from any traced sweep.
        """
        if not self._selected_this_slot or self._bandit is None:
            return
        normalized = min(1.0, max(0.0, slot_reward / self._reward_scale))
        journal = get_journal()
        metrics = get_metrics()
        active_arms = getattr(self._bandit.policy, "active_arms", None)
        before = (set(active_arms())
                  if (journal.enabled or metrics.enabled)
                  and active_arms is not None else None)
        self._bandit.record(normalized)
        if before is not None:
            after = set(active_arms())
            eliminated = len(before) - len(after)
            if eliminated and metrics.enabled:
                metrics.inc("bandit_arms_eliminated_total", eliminated)
            if journal.enabled:
                self._journal_eliminations(slot, before, after, journal)
        arm = self._bandit.grid.nearest_arm(self._last_arm_value)
        self.tracker.record(arm, normalized)
        self._cumulative_reward += slot_reward
        if metrics.enabled:
            metrics.set_gauge("bandit_cumulative_reward",
                              self._cumulative_reward)
            if active_arms is not None:
                metrics.set_gauge("bandit_surviving_arms",
                                  float(len(active_arms())))
        tracer = get_tracer()
        if tracer.enabled:
            tracer.observe("bandit_cumulative_reward",
                           self._cumulative_reward)
            # Every shipped policy exposes active_arms(); a custom one
            # without it simply skips the surviving-arm series.
            active_arms = getattr(self._bandit.policy, "active_arms",
                                  None)
            if active_arms is not None:
                tracer.observe("surviving_arms",
                               float(len(active_arms())))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _journal_eliminations(self, slot: int, before: set, after: set,
                              journal) -> None:
        """Journal arms this round's record() eliminated.

        The justification payload is the pair the elimination rule
        compared - the arm's UCB and the best LCB over the arms active
        when the decision was made (LCB/UCB values do not change at
        elimination time, only the active flag does).
        """
        eliminated = sorted(before - after)
        if not eliminated:
            return
        policy = self._bandit.policy
        has_bounds = (hasattr(policy, "ucb") and hasattr(policy, "lcb"))
        best_lcb = (max(policy.lcb(a) for a in before)
                    if has_bounds else None)
        for arm in eliminated:
            detail = ((policy.ucb(arm), best_lcb)
                      if has_bounds else None)
            journal.record(Event(
                slot=slot, kind=EventKind.ARM_ELIMINATED, arm=arm,
                value=self._bandit.grid.value(arm), detail=detail))

    def _seeded_ledger(self, engine, threshold_mhz: float):
        """A ledger pre-loaded with the *guaranteed shares* of running
        requests.

        In the round-robin setting a running request is guaranteed
        ``min(demand, C^th)`` - not its full demand - so the prefix
        test of the admission step charges each active request that
        amount.  Capacity beyond the guarantees is elastically shared
        (the engine's RR model stretches processing when shares shrink);
        ``C^th`` is exactly the knob that trades admission count
        against congestion slowdown, which is what the bandit tunes.
        """
        ledger = engine.instance.new_ledger()
        sentinel = 10 ** 9
        for sid in engine.instance.network.station_ids:
            capacity = engine.instance.network.station(sid).capacity_mhz
            if getattr(engine, "is_down", None) and engine.is_down(sid):
                # Injected outage: block the station entirely.
                ledger.reserve(sentinel, sid, capacity)
                continue
            count = engine.active_count(sid)
            reserved = min(count * threshold_mhz, capacity)
            if reserved > 0:
                ledger.reserve(sentinel, sid, reserved)
        return ledger

    def _estimate_reward_scale(self, engine) -> float:
        """A fixed per-slot reward scale for bandit normalization.

        Upper-bounds the sustainable completion rate: the network can
        host at most ``capacity / min_demand`` concurrent requests, each
        completing once per ``stream_duration`` slots.
        """
        cfg_req = engine.instance.config.requests
        min_rate = cfg_req.data_rate_range_mbps[0]
        min_demand = max(min_rate * engine.instance.c_unit, 1e-9)
        concurrent = engine.instance.network.total_capacity_mhz() / min_demand
        per_slot = max(concurrent / cfg_req.stream_duration_slots, 1e-9)
        max_reward = (cfg_req.reward_unit_range[1]
                      * cfg_req.data_rate_range_mbps[1])
        return max(per_slot * max_reward, 1e-9)

    # ------------------------------------------------------------------
    # Checkpoint/restore (streaming service)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot everything :meth:`begin` initializes plus learning.

        The bandit, the LP-PT workspace, and the warm-start cache are
        deep-copied *jointly* in one call: :class:`WarmStartState`
        caches by object identity against the workspace's model, so
        copying them separately would silently turn every post-restore
        solve into a cold start (same placements, different journal-free
        perf) - one ``deepcopy`` of the tuple preserves the shared
        references.
        """
        import copy

        bandit, workspace, solve_state, tracker = copy.deepcopy(
            (self._bandit, self._workspace, self._solve_state,
             self.tracker))
        return {
            "bandit": bandit,
            "workspace": workspace,
            "solve_state": solve_state,
            "tracker": tracker,
            "rng_state": self._rng.bit_generator.state,
            "cumulative_reward": self._cumulative_reward,
            "reward_scale": self._reward_scale,
            "selected_this_slot": self._selected_this_slot,
            "last_arm_value": self._last_arm_value,
        }

    def restore_state(self, state: dict) -> None:
        """Install a snapshot produced by :meth:`export_state`.

        Call after :meth:`begin` (which binds the engine); this
        overwrites the fresh learning state with the checkpointed one.
        """
        self._bandit = state["bandit"]
        self._workspace = state["workspace"]
        self._solve_state = state["solve_state"]
        self.tracker = state["tracker"]
        self._rng.bit_generator.state = state["rng_state"]
        self._cumulative_reward = state["cumulative_reward"]
        self._reward_scale = state["reward_scale"]
        self._selected_this_slot = state["selected_this_slot"]
        self._last_arm_value = state["last_arm_value"]
        # EpsilonGreedy shares the policy RNG with the rounding RNG at
        # construction; re-bind so the restored run keeps sharing it.
        if self._bandit is not None and self._bandit.policy is not None \
                and hasattr(self._bandit.policy, "_rng"):
            self._bandit.policy._rng = self._rng

    # Introspection -----------------------------------------------------
    @property
    def bandit(self) -> Optional[LipschitzBandit]:
        """The threshold bandit of the current/most recent run."""
        return self._bandit

    def current_threshold_mhz(self) -> Optional[float]:
        """The bandit's current exploitation choice."""
        if self._bandit is None:
            return None
        return self._bandit.best_value()
