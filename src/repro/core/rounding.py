"""Randomized rounding and slot-by-slot admission (Algorithm 1, lines 2-7).

Rounding: each request picks at most one (station, starting slot) pair;
option ``(i, l)`` is chosen with probability ``y_{jil} / 4`` and the
request is *completely ignored* with the remaining mass (the scale 4 is
what gives Lemma 2 its 1/2 failure bound and Theorem 1 its 1/8 ratio -
the ablation benchmark sweeps it).

Admission: slots are visited in index order; a request assigned to
starting slot ``l`` of station ``bs_i`` is admitted iff the requests
already admitted there occupy at most ``l * C_l`` (Algorithm 1 line 6).
Only after admission does the request *realize* its data rate; the
realized demand is reserved (truncated at the physical capacity), and
the reward is earned only when the untruncated demand fits - the event
whose expectation is ``ER_{jil}`` (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..exceptions import ConfigurationError
from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..sim.events import Event, EventKind
from ..telemetry.audit import get_journal
from ..telemetry.metrics import get_metrics
from .assignment import SlotAssignment
from .instance import ProblemInstance
from .lp_relaxation import LpIndex

#: The paper's rounding scale: assignment probability is y / ROUNDING_SCALE.
DEFAULT_ROUNDING_SCALE = 4.0

#: Called when a request fails the prefix test; returns True when the
#: handler made room (Heu's migration) so admission can proceed.
RejectHandler = Callable[[ARRequest, int, int, CapacityLedger], bool]


@dataclass
class AdmissionOutcome:
    """What happened to one rounded request during admission.

    Attributes:
        request: the request.
        assignment: the rounded (station, slot) it was sent to.
        admitted: whether it passed the prefix test (possibly after a
            migration by the reject handler).
        reward: reward earned (realized reward when the realized demand
            fit the remaining capacity, else 0).
        reserved_mhz: capacity actually reserved at the station.
    """

    request: ARRequest
    assignment: SlotAssignment
    admitted: bool = False
    reward: float = 0.0
    reserved_mhz: float = 0.0


def randomized_round(index: LpIndex, values: Mapping[str, float],
                     requests: Sequence[ARRequest],
                     rng: RngLike = None,
                     scale: float = DEFAULT_ROUNDING_SCALE,
                     options_table: Optional[Mapping[
                         int, Sequence[tuple]]] = None
                     ) -> List[SlotAssignment]:
    """Round a fractional LP solution into tentative slot assignments.

    Args:
        index: variable index of the solved LP.
        values: the fractional solution.
        requests: the workload the LP was built over.
        rng: randomness.
        scale: divide each ``y_{jil}`` by this before sampling (the
            paper uses 4).
        options_table: precomputed
            :meth:`~repro.core.lp_relaxation.LpIndex.options_table` of
            ``values`` - callers that round the same solution over many
            rounds pass it to skip the per-round re-extraction.  The
            sampled stream is identical either way.

    Returns:
        At most one :class:`SlotAssignment` per request; requests that
        drew the "ignore" outcome are absent.
    """
    if scale < 1.0:
        raise ConfigurationError(
            f"rounding scale must be >= 1 (probabilities must not exceed "
            f"the LP mass), got {scale}")
    rng = ensure_rng(rng)
    assignments: List[SlotAssignment] = []
    for request in requests:
        if options_table is not None:
            options = options_table.get(request.request_id, ())
        else:
            options = index.assignment_options(values,
                                               request.request_id)
        if not options:
            continue
        total_mass = sum(mass for _, _, mass in options) / scale
        if total_mass > 1.0 + 1e-9:
            raise ConfigurationError(
                f"request {request.request_id} has rounded mass "
                f"{total_mass:.4f} > 1; constraint (9) violated upstream")
        draw = rng.random()
        cumulative = 0.0
        for station_id, slot, mass in options:
            cumulative += mass / scale
            if draw < cumulative:
                assignments.append(SlotAssignment(
                    request_id=request.request_id,
                    station_id=station_id, slot=slot))
                break
    return assignments


def admit_slot_by_slot(instance: ProblemInstance,
                       requests: Sequence[ARRequest],
                       assignments: Sequence[SlotAssignment],
                       ledger: CapacityLedger,
                       rng: RngLike = None,
                       on_reject: Optional[RejectHandler] = None,
                       reserve_cap_mhz: Optional[float] = None
                       ) -> List[AdmissionOutcome]:
    """Algorithm 1 lines 3-7 (with Heu's line-11-14 hook).

    Slots are processed in increasing index order; within a slot,
    candidate requests are considered in increasing *expected* data
    rate (their realized rates are still unknown at test time - the
    paper's "request with the l-th smallest data rate" can only refer
    to rates the scheduler can see).  After passing the prefix test a
    request realizes its rate, reserves the (capacity-truncated)
    demand, and earns its realized reward iff the demand fully fit.

    Args:
        instance: the problem instance.
        requests: the workload (for id -> request resolution).
        assignments: tentative rounded assignments.
        ledger: capacity ledger to admit into (mutated).
        rng: randomness for rate realization.
        on_reject: optional hook (Heu migration); returning True means
            room was made and the prefix test should be re-evaluated.
        reserve_cap_mhz: when given, each admitted request reserves at
            most this much (the *guaranteed share* semantics of the
            round-robin online setting, where ``C^th`` - not the full
            realized demand - is the committed allocation); None keeps
            the non-preemptive semantics of reserving the realized
            demand.

    Returns:
        One outcome per tentative assignment, in admission order.
    """
    rng = ensure_rng(rng)
    journal = get_journal()
    request_by_id = {r.request_id: r for r in requests}
    by_station_slot: Dict[tuple, List[SlotAssignment]] = {}
    for assignment in assignments:
        key = (assignment.station_id, assignment.slot)
        by_station_slot.setdefault(key, []).append(assignment)

    outcomes: List[AdmissionOutcome] = []
    max_slots = instance.max_num_slots()
    for slot in range(max_slots):
        for station_id in instance.network.station_ids:
            candidates = by_station_slot.get((station_id, slot), [])
            candidates.sort(key=lambda a: (
                request_by_id[a.request_id].expected_rate_mbps,
                a.request_id))
            for assignment in candidates:
                request = request_by_id[assignment.request_id]
                outcome = AdmissionOutcome(request=request,
                                           assignment=assignment)
                outcomes.append(outcome)
                open_now = ledger.prefix_open(station_id, slot)
                # Algorithm 2 lines 11-14: migrate one task per attempt
                # until the slot opens or no donor can help ("if there
                # is no such preassigned request ..., reject").  The
                # attempt cap guards against a handler that reports
                # progress without making any.
                attempts = 0
                while (not open_now and on_reject is not None
                       and attempts < 10):
                    if not on_reject(request, station_id, slot, ledger):
                        break
                    attempts += 1
                    open_now = ledger.prefix_open(station_id, slot)
                if not open_now:
                    get_metrics().inc("rounding_rejects_total")
                    if journal.enabled:
                        journal.record(Event(
                            slot=slot, kind=EventKind.REJECT_ROUNDING,
                            request_id=request.request_id,
                            station_id=station_id))
                    continue
                rate, reward = request.realize(rng)
                demand = request.demand_of_rate_mhz(rate)
                free = ledger.free_mhz(station_id)
                reserved = min(demand, free)
                if reserve_cap_mhz is not None:
                    reserved = min(reserved, reserve_cap_mhz)
                if reserved > 0:
                    ledger.reserve(request.request_id, station_id, reserved)
                outcome.admitted = True
                outcome.reserved_mhz = reserved
                get_metrics().inc("rounding_admits_total")
                if demand <= free + 1e-9:
                    outcome.reward = reward
                if journal.enabled:
                    # Guaranteed-share admissions (the online RR
                    # setting) are elastic; batch admissions commit the
                    # reservation - the monitor accumulates only the
                    # latter against capacity.
                    committed = reserve_cap_mhz is None
                    journal.record(Event(
                        slot=slot, kind=EventKind.ADMIT,
                        request_id=request.request_id,
                        station_id=station_id, reward=outcome.reward,
                        reserved_mhz=reserved if committed else None,
                        share_mhz=None if committed else reserved))
    return outcomes
