"""Fixed-threshold round-robin: the comparator of Theorem 3.

Theorem 3 bounds DynamicRR's regret against the best *fixed* threshold
arm.  :class:`FixedThresholdRR` is exactly DynamicRR with the bandit
replaced by a constant ``C^th`` - same ``R_t`` selection, same LP-PT,
same rounding, same admission - so running it over a grid of thresholds
measures ``ER^*(Z')`` on the real system, and

    regret(T) = best fixed total reward - DynamicRR total reward

is the empirical quantity Theorem 3 bounds.  See
``benchmarks/test_ablation_regret.py`` (synthetic curve) and
``benchmarks/test_ablation_system_regret.py`` (this, end to end).
"""

from __future__ import annotations

from typing import Optional

from ..config import OnlineConfig
from ..exceptions import ConfigurationError
from .dynamic_rr import DynamicRR


class FixedThresholdRR(DynamicRR):
    """DynamicRR with the learning switched off.

    Args:
        threshold_mhz: the constant ``C^th`` to run with.
        online_config: threshold-range metadata (the constant must lie
            inside it); other bandit fields are ignored.
        **kwargs: forwarded to :class:`DynamicRR` (LP backend, rounding
            scale, rng, ...).
    """

    def __init__(self, threshold_mhz: float,
                 online_config: Optional[OnlineConfig] = None,
                 **kwargs) -> None:
        super().__init__(online_config=online_config, **kwargs)
        lo, hi = self.config.threshold_range_mhz
        if not lo <= threshold_mhz <= hi:
            raise ConfigurationError(
                f"threshold {threshold_mhz} outside configured range "
                f"[{lo}, {hi}]")
        self.threshold_mhz = float(threshold_mhz)
        self.name = f"FixedRR({threshold_mhz:.0f})"

    def begin(self, engine) -> None:
        """Set up like DynamicRR, then pin the bandit to one arm."""
        super().begin(engine)
        # Degenerate the grid: a single-arm Lipschitz bandit returning
        # the constant threshold keeps the select/record protocol (and
        # the tracker) intact with zero learning.
        from ..bandits.lipschitz import LipschitzBandit
        self._bandit = LipschitzBandit(
            low=self.threshold_mhz, high=self.threshold_mhz,
            num_arms=1, horizon=engine.clock.horizon_slots,
            explore_fraction=0.0,
            confidence_scale=self.config.confidence_scale)


def best_fixed_threshold(instance, workload_factory, thresholds,
                         horizon_slots: int,
                         rng_seed: int = 0):
    """Sweep fixed thresholds; return ``(best_threshold, best_reward,
    rewards_by_threshold)``.

    Args:
        instance: the problem instance.
        workload_factory: zero-argument callable returning a *fresh*
            workload (realization state must not leak between runs).
        thresholds: candidate ``C^th`` values (must lie inside the
            configured threshold range).
        horizon_slots: monitoring period.
        rng_seed: engine/policy seed (shared across candidates for a
            paired comparison).
    """
    from ..sim.online_engine import OnlineEngine

    if not thresholds:
        raise ConfigurationError("need at least one threshold")
    rewards = {}
    for threshold in thresholds:
        policy = FixedThresholdRR(threshold_mhz=float(threshold),
                                  rng=rng_seed)
        engine = OnlineEngine(instance, workload_factory(),
                              horizon_slots=horizon_slots, rng=rng_seed)
        rewards[float(threshold)] = engine.run(policy).total_reward
    best = max(rewards, key=lambda t: rewards[t])
    return best, rewards[best], rewards
