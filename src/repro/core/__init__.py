"""The paper's primary contribution: offloading algorithms.

* :class:`~repro.core.instance.ProblemInstance` - bundles the MEC
  network, path table, latency model, and workload into the object all
  algorithms consume.
* :mod:`~repro.core.ilp_rm` - the exact **ILP-RM** (Eqs. 3-6).
* :mod:`~repro.core.lp_relaxation` - the slot-indexed **LP** relaxation
  (Eqs. 8-12) and the per-slot **LP-PT** (Eqs. 22-23).
* :mod:`~repro.core.rounding` - randomized ``y/4`` rounding and the
  slot-by-slot admission of Algorithm 1.
* :mod:`~repro.core.appro` - algorithm **Appro** (Algorithm 1).
* :mod:`~repro.core.heu` - algorithm **Heu** (Algorithm 2).
* :mod:`~repro.core.threshold` - the ``R_t`` selection rule of
  Algorithm 3 (sort by expected rate, fill until the share drops below
  ``C^th``).
* :mod:`~repro.core.dynamic_rr` - algorithm **DynamicRR** (Algorithm 3).
"""

from .instance import ProblemInstance
from .latency import LatencyModel
from .assignment import OffloadDecision, ScheduleResult, SlotAssignment
from .ilp_rm import build_ilp_rm, solve_ilp_rm
from .lp_relaxation import LpIndex, build_lp_relaxation, build_lp_pt
from .appro import Appro
from .heu import Heu
from .dynamic_rr import DynamicRR
from .fixed_threshold import FixedThresholdRR, best_fixed_threshold
from .clairvoyant import ClairvoyantResult, clairvoyant_bound, \
    competitive_ratio
from .sensitivity import (StationValue, bottleneck_stations,
                          capacity_value_per_station,
                          expansion_gain_estimate)

__all__ = [
    "ProblemInstance",
    "LatencyModel",
    "SlotAssignment",
    "OffloadDecision",
    "ScheduleResult",
    "build_ilp_rm",
    "solve_ilp_rm",
    "LpIndex",
    "build_lp_relaxation",
    "build_lp_pt",
    "Appro",
    "Heu",
    "DynamicRR",
    "FixedThresholdRR",
    "best_fixed_threshold",
    "ClairvoyantResult",
    "clairvoyant_bound",
    "competitive_ratio",
    "StationValue",
    "capacity_value_per_station",
    "bottleneck_stations",
    "expansion_gain_estimate",
]
