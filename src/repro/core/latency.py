"""The latency model of Eq. (2).

The experienced latency of request ``r_j`` assigned to station
``bs_i`` is::

    D_j = (b_j - a_j)                                # scheduling wait
        + sum_{e in p_ji} 2 * d^trans_je             # round trip
        + sum_k d^pro_{jki}                          # pipeline processing

Per-task processing delays ``d^pro_{jki}`` "vary between base stations"
(Section III-D): we draw a base per-``rho_unit`` task delay for every
station and scale it by each task's compute weight, so rendering
dominates and fast stations are consistently fast.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..network.paths import PathTable
from ..network.topology import MECNetwork
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng


class LatencyModel:
    """Evaluates Eq. (2) for any (request, station) pair.

    Args:
        network: the MEC network.
        path_table: shortest paths by transmission delay.
        proc_delay_range_ms: uniform range for each station's base
            per-task processing delay of one ``rho_unit``.
        rng: randomness for the per-station base delays.
    """

    def __init__(self, network: MECNetwork, path_table: PathTable,
                 proc_delay_range_ms: Tuple[float, float] = (5.0, 15.0),
                 rng: RngLike = None) -> None:
        lo, hi = proc_delay_range_ms
        if not 0 <= lo <= hi:
            raise ConfigurationError(
                f"invalid processing delay range {proc_delay_range_ms}")
        if path_table.network is not network:
            raise ConfigurationError(
                "path table was built from a different network")
        rng = ensure_rng(rng)
        self._network = network
        self._paths = path_table
        self._base_delay_ms: Dict[int, float] = {
            sid: float(rng.uniform(lo, hi))
            for sid in network.station_ids
        }
        # Vectorized mirrors of the per-station scalars, in
        # ``network.station_ids`` order.  ``a + b * w`` elementwise is
        # the same multiply-then-add as the scalar path, so the array
        # route below is bit-identical to calling
        # :meth:`placement_delay_ms` per station.
        self._station_order: List[int] = list(network.station_ids)
        self._base_arr = np.array(
            [self._base_delay_ms[sid] for sid in self._station_order])
        self._rt_rows: Dict[int, np.ndarray] = {}

    def restore_base_delays(self, base_delay_ms: Dict[int, float]) -> None:
        """Replace the drawn per-station base delays (deserialization).

        Refreshes the vectorized mirrors too - mutating
        ``_base_delay_ms`` directly would leave them stale.

        Raises:
            ConfigurationError: the mapping does not cover exactly the
                network's stations.
        """
        if set(base_delay_ms) != set(self._station_order):
            raise ConfigurationError(
                "base delay mapping does not match the network's "
                "stations")
        self._base_delay_ms = {sid: float(base_delay_ms[sid])
                               for sid in self._station_order}
        self._base_arr = np.array(
            [self._base_delay_ms[sid] for sid in self._station_order])
        self._rt_rows.clear()

    @property
    def network(self) -> MECNetwork:
        """The underlying network."""
        return self._network

    @property
    def paths(self) -> PathTable:
        """The underlying path table."""
        return self._paths

    def station_base_delay_ms(self, station_id: int) -> float:
        """Base per-task processing delay of one station."""
        try:
            return self._base_delay_ms[station_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown station id {station_id}") from None

    def task_proc_delay_ms(self, request: ARRequest, task_index: int,
                           station_id: int) -> float:
        """``d^pro_{jki}`` for one task of a request at one station."""
        task = request.pipeline[task_index]
        return self.station_base_delay_ms(station_id) * task.compute_weight

    def proc_delay_ms(self, request: ARRequest, station_id: int) -> float:
        """``sum_k d^pro_{jki}`` - whole pipeline at one station."""
        return (self.station_base_delay_ms(station_id)
                * request.pipeline.total_compute_weight)

    def transfer_delay_ms(self, request: ARRequest,
                          station_id: int) -> float:
        """Round-trip transmission delay ``sum_e 2 * d^trans_je``."""
        return self._paths.round_trip_delay_ms(request.serving_station,
                                               station_id)

    def placement_delay_ms(self, request: ARRequest,
                           station_id: int) -> float:
        """Transmission + processing part of Eq. (2) (no waiting)."""
        return (self.transfer_delay_ms(request, station_id)
                + self.proc_delay_ms(request, station_id))

    def total_delay_ms(self, request: ARRequest, station_id: int,
                       waiting_ms: float = 0.0) -> float:
        """Full Eq. (2): waiting + transmission + processing."""
        if waiting_ms < 0:
            raise ConfigurationError(
                f"waiting must be >= 0, got {waiting_ms}")
        return waiting_ms + self.placement_delay_ms(request, station_id)

    def split_delay_ms(self, request: ARRequest, primary: int,
                       migrated_tasks: Dict[int, int],
                       waiting_ms: float = 0.0) -> float:
        """Latency when some tasks run on other stations (Heu).

        Each migrated task adds a round trip between the primary and
        its host (intermediate matrices travel there and back) and is
        processed at the host's speed.

        Args:
            request: the request.
            primary: primary station id.
            migrated_tasks: task index -> hosting station id.
            waiting_ms: scheduling wait.
        """
        total = waiting_ms + self.transfer_delay_ms(request, primary)
        for k in range(len(request.pipeline)):
            host = migrated_tasks.get(k, primary)
            total += self.task_proc_delay_ms(request, k, host)
            if host != primary:
                total += self._paths.round_trip_delay_ms(primary, host)
        return total

    def is_feasible(self, request: ARRequest, station_id: int,
                    waiting_ms: float = 0.0) -> bool:
        """Whether Eq. (1) ``D_j <= D_hat_j`` holds for a placement."""
        return (self.total_delay_ms(request, station_id, waiting_ms)
                <= request.deadline_ms + 1e-9)

    def placement_delays(self, request: ARRequest) -> np.ndarray:
        """Placement delays to every station, in ``station_ids`` order.

        Bit-identical to calling :meth:`placement_delay_ms` per
        station (elementwise multiply-then-add on the same floats).
        """
        serving = request.serving_station
        rt = self._rt_rows.get(serving)
        if rt is None:
            rt = np.array([
                self._paths.round_trip_delay_ms(serving, sid)
                for sid in self._station_order])
            self._rt_rows[serving] = rt
        return rt + self._base_arr * request.pipeline.total_compute_weight

    def feasible_stations(self, request: ARRequest,
                          waiting_ms: float = 0.0) -> List[int]:
        """Stations meeting the deadline, sorted by placement delay.

        This is the pruning that enforces constraint (11) inside the LP
        (a binary solution satisfies Eq. (11) iff every selected station
        is in this list).
        """
        if waiting_ms < 0:
            raise ConfigurationError(
                f"waiting must be >= 0, got {waiting_ms}")
        delays = self.placement_delays(request)
        mask = waiting_ms + delays <= request.deadline_ms + 1e-9
        ids = self._station_order
        order = sorted(np.flatnonzero(mask).tolist(),
                       key=lambda k: (delays[k], ids[k]))
        return [ids[k] for k in order]
