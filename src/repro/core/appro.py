"""Algorithm **Appro** (Algorithm 1): LP rounding with slot-by-slot admission.

Pipeline: build the slot-indexed LP (Eqs. 8-12), solve it, round with
probability ``y_{jil}/4``, then admit slot by slot under the prefix
test.  Theorem 1: the expected reward is at least ``Opt / 8``.

Rounding rounds: a single ``y/4`` pass leaves at least 3/4 of the LP
mass unassigned in expectation.  Theorem 1 analyzes that single pass;
for the evaluation we repeat the pass over the not-yet-admitted
requests (against the same LP solution and the same admission ledger)
until a round makes no progress.  Every repetition can only add reward,
so the 1/8 guarantee is preserved; set ``max_rounds=1`` for the
literally analyzed algorithm (the ablation benchmark compares both).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..solver.interface import solve_lp
from ..telemetry import get_tracer
from .assignment import OffloadDecision, ScheduleResult
from .instance import ProblemInstance
from .lp_relaxation import build_lp_relaxation
from .rounding import (DEFAULT_ROUNDING_SCALE, AdmissionOutcome,
                       admit_slot_by_slot, randomized_round)


class Appro:
    """The paper's approximation algorithm for consolidated requests.

    Args:
        lp_backend: LP solver backend (``"scipy"`` or ``"simplex"``).
        rounding_scale: divisor of the rounding probability (paper: 4;
            the ablation bench sweeps it).
        max_rounds: rounding passes over not-yet-admitted requests;
            1 = the literally analyzed single pass.
    """

    name = "Appro"

    def __init__(self, lp_backend: str = "scipy",
                 rounding_scale: float = DEFAULT_ROUNDING_SCALE,
                 max_rounds: int = 24) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.lp_backend = lp_backend
        self.rounding_scale = rounding_scale
        self.max_rounds = max_rounds
        #: Objective value of the most recent LP solve (``LPOpt``);
        #: useful for empirical approximation-ratio studies.
        self.last_lp_objective: Optional[float] = None

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """Place a batch of non-preemptive requests.

        Args:
            instance: the problem instance.
            requests: the workload (rates must be unrealized; they are
                revealed during admission, per the paper's protocol).
            rng: randomness for rounding and realization.

        Returns:
            A :class:`ScheduleResult` with one decision per request.
        """
        rng = ensure_rng(rng)
        start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        result = ScheduleResult(algorithm=self.name)
        if not requests:
            result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
            return result

        tracer = get_tracer()
        with tracer.span("build_lp", algorithm=self.name) as build_span:
            lp, index = build_lp_relaxation(instance, requests)
            build_span.annotate(warm="cold")
        if lp.num_variables == 0:
            for request in requests:
                result.add(OffloadDecision(request_id=request.request_id))
            result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
            return result
        solution = solve_lp(lp, backend=self.lp_backend)
        self.last_lp_objective = solution.objective

        ledger = instance.new_ledger()
        outcomes: List[AdmissionOutcome] = []
        remaining = list(requests)
        stalled_rounds = 0
        options = index.options_table(solution.values)
        for _ in range(self.max_rounds):
            if not remaining or stalled_rounds >= 4:
                break
            with tracer.span("rounding", algorithm=self.name):
                assignments = randomized_round(
                    index, solution.values, remaining,
                    rng=rng, scale=self.rounding_scale,
                    options_table=options)
                round_outcomes = admit_slot_by_slot(
                    instance, remaining, assignments, ledger, rng=rng)
            admitted_ids = {o.request.request_id for o in round_outcomes
                            if o.admitted}
            tracer.count("rounding_rounds")
            tracer.count("requests_admitted", len(admitted_ids))
            outcomes.extend(o for o in round_outcomes if o.admitted)
            remaining = [r for r in remaining
                         if r.request_id not in admitted_ids]
            stalled_rounds = 0 if admitted_ids else stalled_rounds + 1
        self._record_outcomes(instance, requests, outcomes, result)
        result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
        return result

    def _record_outcomes(self, instance: ProblemInstance,
                         requests: Sequence[ARRequest],
                         outcomes: List[AdmissionOutcome],
                         result: ScheduleResult) -> None:
        """Translate admission outcomes into per-request decisions."""
        outcome_by_id = {o.request.request_id: o for o in outcomes}
        for request in requests:
            outcome = outcome_by_id.get(request.request_id)
            if outcome is None or not outcome.admitted:
                result.add(OffloadDecision(request_id=request.request_id))
                continue
            station_id = outcome.assignment.station_id
            latency = instance.latency.total_delay_ms(request, station_id)
            result.add(OffloadDecision(
                request_id=request.request_id,
                admitted=True,
                primary_station=station_id,
                realized_rate_mbps=request.realized_rate_mbps,
                reward=outcome.reward,
                latency_ms=latency,
                waiting_ms=0.0,
                deadline_met=latency <= request.deadline_ms + 1e-9,
            ))
