"""Algorithm **Heu** (Algorithm 2): Appro plus task migration.

Heu removes the single-base-station assumption: when the prefix test of
Algorithm 1 line 6 rejects a request, Heu tries to make room by
migrating **one task** of the already-pre-assigned request with the
*maximum realized data rate* to the *closest* (by transmission delay)
base station that can host it without violating the donor's latency
requirement (Algorithm 2 lines 11-14).  If the migration brings the
station's accumulated occupancy back under ``l * C_l``, the rejected
request is admitted after all.

Theorem 2: the solution remains feasible - every migration re-checks
both the capacity of the target and the donor's deadline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..network.capacity import CapacityLedger
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..sim.events import Event, EventKind
from ..solver.interface import solve_lp
from ..telemetry import get_tracer
from ..telemetry.audit import get_journal
from ..telemetry.metrics import get_metrics
from .assignment import OffloadDecision, ScheduleResult
from .instance import ProblemInstance
from .lp_relaxation import build_lp_relaxation
from .rounding import (DEFAULT_ROUNDING_SCALE, AdmissionOutcome,
                       admit_slot_by_slot, randomized_round)


class Heu:
    """The paper's efficient heuristic for distributed task placement.

    Args:
        lp_backend: LP solver backend.
        rounding_scale: rounding probability divisor (paper: 4).
        max_migration_targets: how many nearest stations to try as the
            migration destination before giving up.
        max_rounds: rounding passes over not-yet-admitted requests
            (see :class:`~repro.core.appro.Appro` - repetitions only
            add reward; 1 = single analyzed pass).
    """

    name = "Heu"

    def __init__(self, lp_backend: str = "scipy",
                 rounding_scale: float = DEFAULT_ROUNDING_SCALE,
                 max_migration_targets: int = 5,
                 max_rounds: int = 24) -> None:
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.lp_backend = lp_backend
        self.rounding_scale = rounding_scale
        self.max_migration_targets = max_migration_targets
        self.max_rounds = max_rounds
        self.last_lp_objective: Optional[float] = None
        #: Number of successful task migrations in the last run.
        self.last_num_migrations: int = 0

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng: RngLike = None) -> ScheduleResult:
        """Place a batch of non-preemptive requests with migrations.

        Args:
            instance: the problem instance.
            requests: the workload (unrealized rates).
            rng: randomness for rounding and realization.
        """
        rng = ensure_rng(rng)
        start = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        result = ScheduleResult(algorithm=self.name)
        self.last_num_migrations = 0
        if not requests:
            result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
            return result

        tracer = get_tracer()
        with tracer.span("build_lp", algorithm=self.name) as build_span:
            lp, index = build_lp_relaxation(instance, requests)
            build_span.annotate(warm="cold")
        if lp.num_variables == 0:
            for request in requests:
                result.add(OffloadDecision(request_id=request.request_id))
            result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
            return result
        solution = solve_lp(lp, backend=self.lp_backend)
        self.last_lp_objective = solution.objective

        ledger = instance.new_ledger()

        # Mutable bookkeeping shared with the reject handler.
        admitted_at: Dict[int, List[ARRequest]] = {}
        primary_of: Dict[int, int] = {}
        migrations: Dict[int, Dict[int, int]] = {}

        def on_reject(request: ARRequest, station_id: int, slot: int,
                      ledger_: CapacityLedger) -> bool:
            return self._try_migration(
                instance, ledger_, station_id, slot,
                admitted_at, primary_of, migrations)

        outcomes: List[AdmissionOutcome] = []
        remaining = list(requests)
        stalled_rounds = 0
        options = index.options_table(solution.values)
        for _ in range(self.max_rounds):
            if not remaining or stalled_rounds >= 4:
                break
            with tracer.span("rounding", algorithm=self.name):
                assignments = randomized_round(
                    index, solution.values, remaining,
                    rng=rng, scale=self.rounding_scale,
                    options_table=options)
                round_outcomes = admit_slot_by_slot(
                    instance, remaining, assignments, ledger, rng=rng,
                    on_reject=on_reject)
            tracer.count("rounding_rounds")
            admitted_ids = set()
            for outcome in round_outcomes:
                if outcome.admitted:
                    admitted_ids.add(outcome.request.request_id)
                    outcomes.append(outcome)
                    station_id = outcome.assignment.station_id
                    admitted_at.setdefault(station_id, []).append(
                        outcome.request)
                    primary_of[outcome.request.request_id] = station_id
            remaining = [r for r in remaining
                         if r.request_id not in admitted_ids]
            stalled_rounds = 0 if admitted_ids else stalled_rounds + 1

        self._record_outcomes(instance, requests, outcomes, migrations,
                              result)
        result.runtime_s = time.perf_counter() - start  # repro: noqa DET001 -- advisory runtime metric
        return result

    # ------------------------------------------------------------------
    # Migration (Algorithm 2, lines 11-14)
    # ------------------------------------------------------------------
    def _try_migration(self, instance: ProblemInstance,
                       ledger: CapacityLedger, station_id: int, slot: int,
                       admitted_at: Dict[int, List[ARRequest]],
                       primary_of: Dict[int, int],
                       migrations: Dict[int, Dict[int, int]]) -> bool:
        """Migrate one task of the largest-rate donor able to shed one.

        Donors are tried in decreasing realized data rate (the paper
        picks "the one with the maximum realized rate"; when that donor
        has nothing left to shed, the next-largest is the natural
        continuation).  Returns True after one successful single-task
        migration - the admission loop re-tests the prefix condition
        (line 12) and calls back if the slot is still closed.
        """
        with get_tracer().span("migration", algorithm=self.name):
            return self._migrate_one(instance, ledger, station_id, slot,
                                     admitted_at, primary_of, migrations)

    def _migrate_one(self, instance: ProblemInstance,
                     ledger: CapacityLedger, station_id: int, slot: int,
                     admitted_at: Dict[int, List[ARRequest]],
                     primary_of: Dict[int, int],
                     migrations: Dict[int, Dict[int, int]]) -> bool:
        donors = sorted(admitted_at.get(station_id, []),
                        key=lambda r: (-r.realized_rate_mbps,
                                       r.request_id))
        targets = instance.paths.stations_by_delay(station_id)
        journal = get_journal()
        for donor in donors:
            pipeline = donor.pipeline
            existing = migrations.get(donor.request_id, {})
            local_tasks = [k for k in range(len(pipeline))
                           if k not in existing]
            if len(local_tasks) < 2:
                # Keep at least one task on the primary station.
                continue
            task_idx = max(local_tasks,
                           key=lambda k: pipeline[k].compute_weight)
            held = ledger.holding_mhz(donor.request_id, station_id)
            local_weight = sum(pipeline[k].compute_weight
                               for k in local_tasks)
            share = held * pipeline[task_idx].compute_weight / local_weight
            if share <= 0:
                continue
            # Closer candidates skipped before the chosen target, each
            # with the free MHz observed at decision time - the
            # journaled justification that the migration landed on the
            # *closest feasible* neighbour (Theorem 2).
            skipped: List[tuple] = []
            for target in targets[:self.max_migration_targets]:
                if not ledger.fits(target, share):
                    skipped.append((target, ledger.free_mhz(target),
                                    "capacity"))
                    continue
                trial = dict(existing)
                trial[task_idx] = target
                latency = instance.latency.split_delay_ms(
                    donor, primary_of[donor.request_id], trial)
                if latency > donor.deadline_ms + 1e-9:
                    skipped.append((target, ledger.free_mhz(target),
                                    "latency"))
                    continue
                ledger.migrate(donor.request_id, station_id, target,
                               share)
                migrations[donor.request_id] = trial
                self.last_num_migrations += 1
                get_tracer().count("migrations")
                get_metrics().inc("migrations_total")
                if journal.enabled:
                    journal.record(Event(
                        slot=slot, kind=EventKind.MIGRATE,
                        request_id=donor.request_id,
                        station_id=target,
                        src_station_id=station_id,
                        task_index=task_idx,
                        reserved_mhz=share,
                        detail=tuple(skipped)))
                return True
        return False

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _record_outcomes(self, instance: ProblemInstance,
                         requests: Sequence[ARRequest],
                         outcomes: List[AdmissionOutcome],
                         migrations: Dict[int, Dict[int, int]],
                         result: ScheduleResult) -> None:
        """Translate admission outcomes (with migrations) into decisions."""
        outcome_by_id = {o.request.request_id: o for o in outcomes}
        for request in requests:
            outcome = outcome_by_id.get(request.request_id)
            if outcome is None or not outcome.admitted:
                result.add(OffloadDecision(request_id=request.request_id))
                continue
            station_id = outcome.assignment.station_id
            moved = migrations.get(request.request_id, {})
            if moved:
                latency = instance.latency.split_delay_ms(
                    request, station_id, moved)
            else:
                latency = instance.latency.total_delay_ms(request,
                                                          station_id)
            result.add(OffloadDecision(
                request_id=request.request_id,
                admitted=True,
                primary_station=station_id,
                migrated_tasks=dict(moved),
                realized_rate_mbps=request.realized_rate_mbps,
                reward=outcome.reward,
                latency_ms=latency,
                waiting_ms=0.0,
                deadline_met=latency <= request.deadline_ms + 1e-9,
            ))
