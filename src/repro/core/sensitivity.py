"""Capacity sensitivity analysis on top of the slot-indexed LP.

Where should a provider add computing capacity?  The dual price of a
station's expected-capacity row in the slot-indexed LP is the marginal
expected reward of one more MB/s of servable rate at that station; a
zero price marks a station that is not a bottleneck for the current
workload.  :func:`capacity_value_per_station` ranks stations by that
price, turning the reproduction's LP into the planning tool the paper's
provider-revenue framing motivates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..requests.request import ARRequest
from ..solver.duals import solve_lp_with_duals
from .instance import ProblemInstance
from .lp_relaxation import build_lp_relaxation


@dataclass(frozen=True)
class StationValue:
    """Marginal value of capacity at one station.

    Attributes:
        station_id: the station.
        shadow_price: expected dollars per extra MB/s of servable rate
            (the capacity row's dual).
        utilization_bound: whether the station's capacity row binds at
            the LP optimum.
    """

    station_id: int
    shadow_price: float
    utilization_bound: bool


def capacity_value_per_station(instance: ProblemInstance,
                               requests: Sequence[ARRequest]
                               ) -> List[StationValue]:
    """Rank stations by the marginal value of extra capacity.

    Args:
        instance: the problem instance.
        requests: the workload the provider expects.

    Returns:
        One :class:`StationValue` per station, sorted by decreasing
        shadow price (ties by station id).
    """
    lp, _index = build_lp_relaxation(instance, requests)
    if lp.num_variables == 0:
        return [StationValue(station_id=sid, shadow_price=0.0,
                             utilization_bound=False)
                for sid in instance.network.station_ids]
    dual = solve_lp_with_duals(lp)
    binding = set(dual.binding())
    values = []
    for sid in instance.network.station_ids:
        name = f"capacity_{sid}"
        values.append(StationValue(
            station_id=sid,
            shadow_price=dual.shadow_price(name),
            utilization_bound=name in binding))
    values.sort(key=lambda v: (-v.shadow_price, v.station_id))
    return values


def bottleneck_stations(instance: ProblemInstance,
                        requests: Sequence[ARRequest],
                        top_k: int = 5) -> List[int]:
    """The `top_k` stations where extra capacity pays the most."""
    ranked = capacity_value_per_station(instance, requests)
    return [v.station_id for v in ranked[:top_k]
            if v.shadow_price > 0.0]


def expansion_gain_estimate(instance: ProblemInstance,
                            requests: Sequence[ARRequest],
                            station_id: int,
                            extra_mhz: float) -> float:
    """First-order estimate of reward gained by adding capacity.

    ``shadow price x extra servable rate`` - valid for small additions
    (duals are local derivatives; a big expansion changes the basis).

    Args:
        instance: the problem instance.
        requests: the workload.
        station_id: where the capacity is added.
        extra_mhz: how much (converted to rate via ``C_unit``).
    """
    ranked = {v.station_id: v
              for v in capacity_value_per_station(instance, requests)}
    price = ranked[station_id].shadow_price
    return price * (extra_mhz / instance.c_unit)
