"""The exact **ILP-RM** formulation (Eqs. 3-6).

The paper's exact solution for small instances: binary variables
``x_{ji}`` assign each request's consolidated task set to at most one
base station; expected demands respect station capacities; the delay
requirement prunes infeasible pairs (constraint (5) is linear in
``x_{ji}`` given the waiting time, so pruning is exact for binary
solutions).

The objective maximizes expected reward.  Consistent with the paper's
uncertainty model, a request placed on station ``bs_i`` can never earn
the reward of a realization whose demand exceeds the *whole station*,
so the objective coefficient is ``ER_{ji}`` = the expected reward
truncated at the station capacity - for stations large enough to host
every support rate this reduces to the plain ``sum_rho pi RD`` of the
paper's objective.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..requests.request import ARRequest
from ..solver.interface import Solution, solve_ilp
from ..solver.model import LinearProgram
from .instance import ProblemInstance


def _var_name(request_id: int, station_id: int) -> str:
    return f"x_{request_id}_{station_id}"


def build_ilp_rm(instance: ProblemInstance,
                 requests: Sequence[ARRequest],
                 waiting_ms: Optional[Mapping[int, float]] = None
                 ) -> Tuple[LinearProgram,
                            Dict[str, Tuple[int, int]]]:
    """Build the ILP-RM model.

    Args:
        instance: the problem instance.
        requests: the workload.
        waiting_ms: per-request waiting already incurred (0 offline).

    Returns:
        ``(ilp, index)`` where ``index`` maps variable names to
        (request_id, station_id) pairs.
    """
    waiting = dict(waiting_ms or {})
    ilp = LinearProgram(name="ILP-RM", maximize=True)
    index: Dict[str, Tuple[int, int]] = {}
    by_request: Dict[int, list] = {}
    by_station: Dict[int, list] = {sid: []
                                   for sid in instance.network.station_ids}

    for request in requests:
        wait = waiting.get(request.request_id, 0.0)
        names = []
        for station_id in instance.latency.feasible_stations(request, wait):
            capacity = instance.network.station(station_id).capacity_mhz
            max_rate = capacity / instance.c_unit
            er = request.distribution.expected_reward_within(max_rate)
            name = _var_name(request.request_id, station_id)
            ilp.add_variable(name, low=0.0, high=1.0, objective=er,
                             integer=True)
            index[name] = (request.request_id, station_id)
            names.append(name)
            by_station[station_id].append((name, request))
        by_request[request.request_id] = names

    # Constraint (3): each request assigned to at most one station.
    for request_id, names in by_request.items():
        if names:
            ilp.add_constraint({n: 1.0 for n in names}, "<=", 1.0,
                               name=f"assign_{request_id}")

    # Constraint (4): expected demand within station capacity.
    for station_id, entries in by_station.items():
        if not entries:
            continue
        coeffs = {
            name: request.expected_demand_mhz
            for name, request in entries
        }
        capacity = instance.network.station(station_id).capacity_mhz
        ilp.add_constraint(coeffs, "<=", capacity,
                           name=f"capacity_{station_id}")
    return ilp, index


def solve_ilp_rm(instance: ProblemInstance,
                 requests: Sequence[ARRequest],
                 backend: str = "scipy",
                 waiting_ms: Optional[Mapping[int, float]] = None
                 ) -> Tuple[Solution, Dict[int, int]]:
    """Solve ILP-RM exactly and decode the assignment.

    Args:
        instance: the problem instance.
        requests: the workload (keep it small - this is the exact
            solver the paper reserves for "small problem sizes").
        backend: ``"scipy"`` or ``"bnb"``.
        waiting_ms: per-request waiting already incurred.

    Returns:
        ``(solution, assignment)`` where ``assignment`` maps
        request_id -> station_id for every assigned request.
    """
    ilp, index = build_ilp_rm(instance, requests, waiting_ms)
    solution = solve_ilp(ilp, backend=backend)
    assignment: Dict[int, int] = {}
    for name, value in solution.values.items():
        if value > 0.5 and name in index:
            request_id, station_id = index[name]
            assignment[request_id] = station_id
    return solution, assignment
