"""The per-slot request selection rule of Algorithm 3 (lines 10-11).

Given the bandit-chosen threshold ``C^th``, DynamicRR sorts the arrived
(pending) requests by increasing expected data rate and keeps adding
them to the slot's working set ``R_t`` while the average computing
resource each would receive under round-robin sharing stays at least
``C^th``.  Equivalently, at most ``floor(free_capacity / C^th)``
requests are selected - enough parallelism to use the network, few
enough that nobody's share collapses.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..exceptions import ConfigurationError
from ..requests.request import ARRequest


def max_parallel_requests(free_capacity_mhz: float,
                          threshold_mhz: float) -> int:
    """Largest ``|R_t|`` keeping the average RR share at least ``C^th``.

    Args:
        free_capacity_mhz: computing resource currently unclaimed.
        threshold_mhz: the chosen ``C^th``.

    Returns:
        ``floor(free / C^th)`` (0 when the threshold exceeds the free
        capacity - the slot is skipped and requests keep waiting).
    """
    if free_capacity_mhz < 0:
        raise ConfigurationError(
            f"free capacity must be >= 0, got {free_capacity_mhz}")
    if threshold_mhz <= 0:
        raise ConfigurationError(
            f"threshold must be positive, got {threshold_mhz}")
    return int(math.floor(free_capacity_mhz / threshold_mhz))


def select_slot_requests(pending: Sequence[ARRequest],
                         free_capacity_mhz: float,
                         threshold_mhz: float) -> List[ARRequest]:
    """Build ``R_t``: smallest expected rates first, capped by ``C^th``.

    Args:
        pending: requests waiting to be scheduled.
        free_capacity_mhz: unclaimed computing resource this slot.
        threshold_mhz: the bandit's current ``C^th``.

    Returns:
        The selected subset, in increasing expected data rate (ties
        break by request id for determinism).
    """
    limit = max_parallel_requests(free_capacity_mhz, threshold_mhz)
    if limit <= 0:
        return []
    ordered = sorted(pending, key=lambda r: (r.expected_rate_mbps,
                                             r.request_id))
    return ordered[:limit]
