"""The resource-slot-indexed LP relaxation (Eqs. 8-12) and LP-PT (22-23).

The novelty of the paper's relaxation is indexing assignments by the
*starting resource slot*: variable ``y_{jil}`` says request ``r_j``
starts at slot ``l`` of station ``bs_i``.  Two consequences:

* the objective coefficient ``ER_{jil}`` (Eq. 8) only counts reward
  from realizations whose demand fits into the capacity remaining
  *after* the slot offset ``l * C_l`` - large-rate realizations earn
  nothing from deep slots, which kills the incentive to chase rare
  high-reward rates;
* the prefix constraint (Eq. 10) bounds the *truncated* expected demand
  of everything starting at-or-before a slot by twice the slot offset,
  which is exactly what Lemma 2's Markov argument needs.

The delay requirement (Eq. 11) is linear in ``y`` given the waiting
time, so we enforce it by pruning: ``y_{jil}`` is only created when the
placement delay of (j, i) meets the deadline - equivalent for any
binary solution, and tighter for fractional ones.

``LP-PT`` (Eqs. 22-23) is the per-time-slot variant used by DynamicRR:
identical shape, with the truncation additionally capped by the fair
share ``C(bs_i) / |R_t|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..requests.request import ARRequest
from ..solver.model import LinearProgram
from .instance import ProblemInstance

#: Slack factor on the prefix-demand constraint (the ``2`` in Eq. 10).
PREFIX_SLACK = 2.0


def _var_name(request_id: int, station_id: int, slot: int) -> str:
    return f"y_{request_id}_{station_id}_{slot}"


@dataclass(frozen=True)
class LpIndex:
    """Maps LP variables back to (request, station, slot) triples.

    Attributes:
        triples: variable name -> (request_id, station_id, slot).
        by_request: request_id -> list of its variable names.
    """

    triples: Mapping[str, Tuple[int, int, int]]
    by_request: Mapping[int, Tuple[str, ...]]

    def assignment_options(self, values: Mapping[str, float],
                           request_id: int,
                           tol: float = 1e-9
                           ) -> List[Tuple[int, int, float]]:
        """Positive-mass (station, slot, probability) options of a request.

        Args:
            values: an LP solution.
            request_id: the request.
            tol: drop options below this mass.
        """
        options: List[Tuple[int, int, float]] = []
        for name in self.by_request.get(request_id, ()):
            mass = float(values.get(name, 0.0))
            if mass > tol:
                _, station_id, slot = self.triples[name]
                options.append((station_id, slot, mass))
        return options


def expected_reward_coefficient(instance: ProblemInstance,
                                request: ARRequest, station_id: int,
                                slot: int) -> float:
    """``ER_{jil}`` of Eq. (8).

    The reward counts only realizations whose demand fits into the
    capacity remaining after the slot offset:
    ``sum_{rho : rho * C_unit <= C(bs_i) - l * C_l} pi_rho * RD_rho``.
    """
    remaining_mhz = instance.slots_of(station_id).remaining_after_mhz(slot)
    max_rate = remaining_mhz / instance.c_unit
    return request.distribution.expected_reward_within(max_rate)


def _add_variables(lp: LinearProgram, instance: ProblemInstance,
                   requests: Sequence[ARRequest],
                   waiting_ms: Mapping[int, float]
                   ) -> Tuple[Dict[str, Tuple[int, int, int]],
                              Dict[int, List[str]]]:
    """Create the pruned y_{jil} columns; returns the index maps."""
    triples: Dict[str, Tuple[int, int, int]] = {}
    by_request: Dict[int, List[str]] = {}
    for request in requests:
        wait = waiting_ms.get(request.request_id, 0.0)
        names: List[str] = []
        for station_id in instance.latency.feasible_stations(request, wait):
            num_slots = instance.network.num_slots(station_id)
            for slot in range(num_slots):
                er = expected_reward_coefficient(
                    instance, request, station_id, slot)
                name = _var_name(request.request_id, station_id, slot)
                lp.add_variable(name, low=0.0, high=1.0, objective=er)
                triples[name] = (request.request_id, station_id, slot)
                names.append(name)
        by_request[request.request_id] = names
    return triples, by_request


def _add_choice_constraints(lp: LinearProgram,
                            by_request: Mapping[int, List[str]]) -> None:
    """Constraint (9): each request starts in at most one slot."""
    for request_id, names in by_request.items():
        if names:
            lp.add_constraint({name: 1.0 for name in names}, "<=", 1.0,
                              name=f"choice_{request_id}")


def _add_prefix_constraints(lp: LinearProgram, instance: ProblemInstance,
                            requests: Sequence[ARRequest],
                            by_request: Mapping[int, List[str]],
                            triples: Mapping[str, Tuple[int, int, int]],
                            fair_share_count: Optional[int]) -> None:
    """Constraint (10) / (23): truncated prefix demand per (i, m).

    For every station ``i`` and threshold index ``m`` (capacity offset
    ``m * C_l``), the truncated expected rates of requests starting in
    slots ``l' < m`` sum to at most ``2 * m * C_l / C_unit``.

    Args:
        fair_share_count: ``|R_t|`` for LP-PT's extra truncation by the
            fair share ``C(bs_i) / |R_t|`` (converted to rate space via
            ``C_unit``); None for the plain LP.
    """
    request_by_id = {r.request_id: r for r in requests}
    slot_size = instance.slot_size_mhz
    c_unit = instance.c_unit
    for station_id in instance.network.station_ids:
        num_slots = instance.network.num_slots(station_id)
        share_rate = None
        if fair_share_count is not None:
            capacity = instance.network.station(station_id).capacity_mhz
            share_rate = capacity / (max(fair_share_count, 1) * c_unit)
        for m in range(1, num_slots + 1):
            threshold_rate = m * slot_size / c_unit
            coeffs: Dict[str, float] = {}
            for request_id, names in by_request.items():
                request = request_by_id[request_id]
                cap = threshold_rate
                if share_rate is not None:
                    cap = min(cap, share_rate)
                truncated = request.distribution.expected_truncated_rate(cap)
                if truncated <= 0:
                    continue
                for name in names:
                    _, sid, slot = triples[name]
                    if sid == station_id and slot < m:
                        coeffs[name] = truncated
            if coeffs:
                lp.add_constraint(
                    coeffs, "<=", PREFIX_SLACK * threshold_rate,
                    name=f"prefix_{station_id}_{m}")
        _add_station_capacity_row(lp, instance, requests, by_request,
                                  triples, station_id, share_rate)


def _add_station_capacity_row(lp: LinearProgram, instance: ProblemInstance,
                              requests: Sequence[ARRequest],
                              by_request: Mapping[int, List[str]],
                              triples: Mapping[str, Tuple[int, int, int]],
                              station_id: int,
                              share_rate: Optional[float]) -> None:
    """Valid per-station expected-capacity row (no slack factor).

    Any admission policy keeps the realized (capacity-truncated)
    occupancy of a station within ``C(bs_i)`` in every run, hence in
    expectation: ``sum_j x_ji * E[min(rho_j, C_i/C_unit)] <= C_i/C_unit``.
    This is the LP image of ILP-RM's constraint (4); the optimal policy
    satisfies it, so adding it preserves Lemma 1 (``LPOpt >= Opt``)
    while forcing the fractional solution to *choose* which requests to
    carry when the workload exceeds capacity - which is where the
    expected-reward awareness of the objective actually bites.
    """
    request_by_id = {r.request_id: r for r in requests}
    capacity_rate = (instance.network.station(station_id).capacity_mhz
                     / instance.c_unit)
    coeffs: Dict[str, float] = {}
    for request_id, names in by_request.items():
        request = request_by_id[request_id]
        cap = capacity_rate if share_rate is None else min(capacity_rate,
                                                           share_rate)
        truncated = request.distribution.expected_truncated_rate(cap)
        if truncated <= 0:
            continue
        for name in names:
            _, sid, _slot = triples[name]
            if sid == station_id:
                coeffs[name] = truncated
    if coeffs:
        lp.add_constraint(coeffs, "<=", capacity_rate,
                          name=f"capacity_{station_id}")


def build_lp_relaxation(instance: ProblemInstance,
                        requests: Sequence[ARRequest],
                        waiting_ms: Optional[Mapping[int, float]] = None
                        ) -> Tuple[LinearProgram, LpIndex]:
    """Build the slot-indexed **LP** (Eqs. 8-12).

    Args:
        instance: the problem instance.
        requests: the workload to place.
        waiting_ms: per-request waiting time already incurred (the
            ``b_j - a_j`` part of Eq. (2)); defaults to 0 for the
            offline batch problem.

    Returns:
        ``(lp, index)`` - the model and the variable index maps.
    """
    waiting = dict(waiting_ms or {})
    lp = LinearProgram(name="LP", maximize=True)
    triples, by_request = _add_variables(lp, instance, requests, waiting)
    _add_choice_constraints(lp, by_request)
    _add_prefix_constraints(lp, instance, requests, by_request, triples,
                            fair_share_count=None)
    index = LpIndex(
        triples=dict(triples),
        by_request={rid: tuple(names) for rid, names in by_request.items()})
    return lp, index


def build_lp_pt(instance: ProblemInstance,
                requests: Sequence[ARRequest],
                waiting_ms: Optional[Mapping[int, float]] = None
                ) -> Tuple[LinearProgram, LpIndex]:
    """Build **LP-PT** (Eqs. 22-23) for one time slot of DynamicRR.

    Identical to the plain LP except that constraint (23) additionally
    truncates each request's expected rate by the fair round-robin
    share ``C(bs_i) / |R_t|`` (expressed in rate space through
    ``C_unit``).  With ``|R_t| = 0`` the model is empty.

    Args:
        instance: the problem instance.
        requests: the slot's selected set ``R_t``.
        waiting_ms: accumulated waiting of each request in ``R_t``.
    """
    waiting = dict(waiting_ms or {})
    lp = LinearProgram(name="LP-PT", maximize=True)
    triples, by_request = _add_variables(lp, instance, requests, waiting)
    _add_choice_constraints(lp, by_request)
    _add_prefix_constraints(lp, instance, requests, by_request, triples,
                            fair_share_count=max(len(requests), 1))
    index = LpIndex(
        triples=dict(triples),
        by_request={rid: tuple(names) for rid, names in by_request.items()})
    return lp, index
