"""The resource-slot-indexed LP relaxation (Eqs. 8-12) and LP-PT (22-23).

The novelty of the paper's relaxation is indexing assignments by the
*starting resource slot*: variable ``y_{jil}`` says request ``r_j``
starts at slot ``l`` of station ``bs_i``.  Two consequences:

* the objective coefficient ``ER_{jil}`` (Eq. 8) only counts reward
  from realizations whose demand fits into the capacity remaining
  *after* the slot offset ``l * C_l`` - large-rate realizations earn
  nothing from deep slots, which kills the incentive to chase rare
  high-reward rates;
* the prefix constraint (Eq. 10) bounds the *truncated* expected demand
  of everything starting at-or-before a slot by twice the slot offset,
  which is exactly what Lemma 2's Markov argument needs.

The delay requirement (Eq. 11) is linear in ``y`` given the waiting
time, so we enforce it by pruning: ``y_{jil}`` is only created when the
placement delay of (j, i) meets the deadline - equivalent for any
binary solution, and tighter for fractional ones.

``LP-PT`` (Eqs. 22-23) is the per-time-slot variant used by DynamicRR:
identical shape, with the truncation additionally capped by the fair
share ``C(bs_i) / |R_t|``.

Build strategy
--------------

The model is assembled from precomputed arrays, not per-coefficient
Python loops: each request's distribution is lowered once into a
:class:`_DistTables` (a reward-prefix table evaluated with the same
slice-and-dot expression as
:meth:`~repro.requests.distributions.RateRewardDistribution.expected_reward_within`,
plus a memo of truncated expected rates per cap), and each station's
slot geometry into per-slot max-rate arrays.  Every coefficient the
model receives is bit-identical to the one the naive per-triple loops
would produce - only the bookkeeping around them is vectorized.

:class:`LpPtWorkspace` carries those tables *across* DynamicRR rounds
and additionally keeps the previous round's model: an unchanged round
returns the same model object (so a warm-started solve is a pure cache
hit), a round that only changed the fair-share count ``|R_t|`` mutates
the capped rows in place, and any other round rebuilds from the cached
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..requests.distributions import RateRewardDistribution, _PROB_TOL
from ..requests.request import ARRequest
from ..solver.model import LinearProgram
from .instance import ProblemInstance

#: Slack factor on the prefix-demand constraint (the ``2`` in Eq. 10).
PREFIX_SLACK = 2.0


def _var_name(request_id: int, station_id: int, slot: int) -> str:
    return f"y_{request_id}_{station_id}_{slot}"


@dataclass(frozen=True)
class LpIndex:
    """Maps LP variables back to (request, station, slot) triples.

    Attributes:
        triples: variable name -> (request_id, station_id, slot).
        by_request: request_id -> list of its variable names.
    """

    triples: Mapping[str, Tuple[int, int, int]]
    by_request: Mapping[int, Tuple[str, ...]]

    def assignment_options(self, values: Mapping[str, float],
                           request_id: int,
                           tol: float = 1e-9
                           ) -> List[Tuple[int, int, float]]:
        """Positive-mass (station, slot, probability) options of a request.

        Args:
            values: an LP solution.
            request_id: the request.
            tol: drop options below this mass.
        """
        options: List[Tuple[int, int, float]] = []
        for name in self.by_request.get(request_id, ()):
            mass = float(values.get(name, 0.0))
            if mass > tol:
                _, station_id, slot = self.triples[name]
                options.append((station_id, slot, mass))
        return options

    def options_table(self, values: Mapping[str, float],
                      tol: float = 1e-9
                      ) -> Dict[int, List[Tuple[int, int, float]]]:
        """Positive-mass options of *every* request, in one pass.

        Returns the same lists (same order) as calling
        :meth:`assignment_options` per request; rounding loops that
        re-query one solution across many rounds use this to avoid the
        per-round re-extraction.
        """
        table: Dict[int, List[Tuple[int, int, float]]] = {
            rid: [] for rid in self.by_request}
        get = values.get
        for name, (rid, station_id, slot) in self.triples.items():
            mass = float(get(name, 0.0))
            if mass > tol:
                table[rid].append((station_id, slot, mass))
        return table


def expected_reward_coefficient(instance: ProblemInstance,
                                request: ARRequest, station_id: int,
                                slot: int) -> float:
    """``ER_{jil}`` of Eq. (8).

    The reward counts only realizations whose demand fits into the
    capacity remaining after the slot offset:
    ``sum_{rho : rho * C_unit <= C(bs_i) - l * C_l} pi_rho * RD_rho``.
    """
    remaining_mhz = instance.slots_of(station_id).remaining_after_mhz(slot)
    max_rate = remaining_mhz / instance.c_unit
    return request.distribution.expected_reward_within(max_rate)


# ----------------------------------------------------------------------
# Precomputed per-distribution / per-station tables
# ----------------------------------------------------------------------
class _DistTables:
    """Cached expectation tables of one request's distribution.

    ``reward_prefix[k]`` is the expected reward counting only the ``k``
    smallest support rates, evaluated with the same contiguous
    slice-and-dot expression as ``expected_reward_within`` so the
    floats are bit-identical to the per-triple evaluation.
    ``truncated()`` memoizes ``expected_truncated_rate`` per cap - the
    prefix rows query the same handful of caps for every station and,
    through :class:`LpPtWorkspace`, for every DynamicRR round.
    """

    __slots__ = ("distribution", "rates", "reward_prefix", "_trunc")

    def __init__(self, distribution: RateRewardDistribution) -> None:
        self.distribution = distribution
        probs = distribution.probabilities
        rewards = distribution.rewards
        self.rates = distribution.rates_mbps
        n = int(self.rates.size)
        self.reward_prefix = np.array(
            [float(probs[:k] @ rewards[:k]) for k in range(n + 1)])

        self._trunc: Dict[float, float] = {}

    def truncated(self, cap: float) -> float:
        """Memoized ``E[min(rho, cap)]`` (exact same float as uncached).

        Caps at or above the support's largest rate all truncate
        nothing - ``np.minimum(rates, cap)`` returns ``rates``
        elementwise exactly - so they share one memo entry.
        """
        value = self._trunc.get(cap)
        if value is None:
            top = self.rates[-1]
            if cap > top:
                value = self.truncated(float(top))
            else:
                value = self.distribution.expected_truncated_rate(cap)
            self._trunc[cap] = value
        return value

    def reward_within(self, max_rates: np.ndarray) -> np.ndarray:
        """Vectorized ``ER`` over a station's per-slot max rates."""
        counts = np.searchsorted(self.rates, max_rates + _PROB_TOL,
                                 side="right")
        return self.reward_prefix[counts]


class _TableCache:
    """Per-request :class:`_DistTables`, keyed by request id.

    The distribution object is identity-checked so a stale entry (same
    id, different workload) can never leak between builds.
    """

    __slots__ = ("_by_rid",)

    def __init__(self) -> None:
        self._by_rid: Dict[int, _DistTables] = {}

    def get(self, request: ARRequest) -> _DistTables:
        entry = self._by_rid.get(request.request_id)
        if entry is None or entry.distribution is not request.distribution:
            entry = _DistTables(request.distribution)
            self._by_rid[request.request_id] = entry
        return entry


@dataclass(frozen=True)
class _StationGeometry:
    """Slot geometry of one station, lowered to rate space once."""

    num_slots: int
    capacity_rate: float
    capacity_mhz: float
    #: ``m * C_l / C_unit`` for m = 1..L (Eq. 10 thresholds).
    threshold_rates: Tuple[float, ...]
    #: ``(C(bs_i) - l * C_l) / C_unit`` for l = 0..L-1 (Eq. 8 budgets).
    max_rates: np.ndarray


def _station_geometry(instance: ProblemInstance
                      ) -> Dict[int, _StationGeometry]:
    slot_size = instance.slot_size_mhz
    c_unit = instance.c_unit
    out: Dict[int, _StationGeometry] = {}
    for sid in instance.network.station_ids:
        num_slots = instance.network.num_slots(sid)
        capacity = instance.network.station(sid).capacity_mhz
        offsets = np.arange(num_slots) * slot_size
        out[sid] = _StationGeometry(
            num_slots=num_slots,
            capacity_rate=capacity / c_unit,
            capacity_mhz=capacity,
            threshold_rates=tuple(m * slot_size / c_unit
                                  for m in range(1, num_slots + 1)),
            max_rates=(capacity - offsets) / c_unit)
    return out


@dataclass
class _StationBlocks:
    """Column blocks landed at one station, in insertion order.

    Each feasible (request, station) pair contributes one contiguous
    block of ``num_slots`` columns; the prefix row for threshold ``m``
    takes the first ``m`` columns of every block.
    """

    geometry: _StationGeometry
    first_cols: List[int]
    tables: List[_DistTables]

    def prefix_row(self, m: int, cap: float) -> Dict[int, float]:
        coeffs: Dict[int, float] = {}
        update = coeffs.update
        for first, tab in zip(self.first_cols, self.tables):
            truncated = tab.truncated(cap)
            if truncated <= 0:
                continue
            update(dict.fromkeys(range(first, first + m), truncated))
        return coeffs

    def prefix_rows(self, prefix_caps: Sequence[float]
                    ) -> Iterator[Tuple[int, Dict[int, float]]]:
        """All non-empty prefix rows at once: yields ``(m, coeffs)``.

        Row-for-row identical to calling :meth:`prefix_row` per ``m``
        (same keys in the same ascending order, same float values -
        float64 arrays round-trip exactly); the batched assembly runs
        the per-column work in numpy instead of per-entry Python.
        """
        if not self.first_cols:
            return
        firsts = np.asarray(self.first_cols)
        num_caps = len(prefix_caps)
        trunc = np.empty((len(self.tables), num_caps))
        for i, tab in enumerate(self.tables):
            memo = tab.truncated
            trunc[i] = [memo(cap) for cap in prefix_caps]
        for m in range(1, num_caps + 1):
            col = trunc[:, m - 1]
            mask = col > 0
            if not mask.any():
                continue
            cols = (firsts[mask][:, None] + np.arange(m)).ravel()
            data = np.repeat(col[mask], m)
            yield m, dict(zip(cols.tolist(), data.tolist()))

    def capacity_row(self, cap: float) -> Dict[int, float]:
        num_slots = self.geometry.num_slots
        if not self.first_cols:
            return {}
        firsts = np.asarray(self.first_cols)
        trunc = np.array([tab.truncated(cap) for tab in self.tables])
        mask = trunc > 0
        if not mask.any():
            return {}
        cols = (firsts[mask][:, None] + np.arange(num_slots)).ravel()
        data = np.repeat(trunc[mask], num_slots)
        return dict(zip(cols.tolist(), data.tolist()))


def _effective_caps(geometry: _StationGeometry,
                    share_rate: Optional[float]
                    ) -> Tuple[List[float], float]:
    """Per-m prefix caps and the capacity-row cap of one station."""
    if share_rate is None:
        return list(geometry.threshold_rates), geometry.capacity_rate
    return ([min(threshold, share_rate)
             for threshold in geometry.threshold_rates],
            min(geometry.capacity_rate, share_rate))


def _share_rate(geometry: _StationGeometry, instance: ProblemInstance,
                fair_share_count: Optional[int]) -> Optional[float]:
    if fair_share_count is None:
        return None
    return geometry.capacity_mhz / (max(fair_share_count, 1)
                                    * instance.c_unit)


# ----------------------------------------------------------------------
# Model assembly
# ----------------------------------------------------------------------
def _build_model(lp: LinearProgram, instance: ProblemInstance,
                 requests: Sequence[ARRequest],
                 waiting: Mapping[int, float],
                 fair_share_count: Optional[int],
                 tables: _TableCache,
                 feasible: Optional[Mapping[int, Sequence[int]]] = None
                 ) -> Tuple[LpIndex, Dict[int, _StationBlocks]]:
    """Assemble the slot-indexed LP into `lp`; returns index + blocks.

    Byte-compatible with the historical per-triple build: same variable
    and constraint names, same insertion order, same float values.
    """
    geometry = _station_geometry(instance)
    triples: Dict[str, Tuple[int, int, int]] = {}
    by_request: Dict[int, List[str]] = {}
    blocks: Dict[int, _StationBlocks] = {
        sid: _StationBlocks(geometry=geo, first_cols=[], tables=[])
        for sid, geo in geometry.items()}

    # Feasible-station sets repeat heavily across requests; cache each
    # set's concatenated per-slot budget array (one searchsorted per
    # request instead of one per (request, station)).
    concat_cache: Dict[Tuple[int, ...],
                       Tuple[np.ndarray, Tuple[Tuple[int, int], ...]]] = {}

    for request in requests:
        rid = request.request_id
        tab = tables.get(request)
        stations = tuple(feasible[rid] if feasible is not None
                         else instance.latency.feasible_stations(
                             request, waiting.get(rid, 0.0)))
        if not stations:
            by_request[rid] = []
            continue
        entry = concat_cache.get(stations)
        if entry is None:
            geos = [geometry[sid] for sid in stations]
            spans: List[Tuple[int, int]] = []
            offset = 0
            for geo in geos:
                spans.append((offset, geo.num_slots))
                offset += geo.num_slots
            entry = (np.concatenate([geo.max_rates for geo in geos]),
                     tuple(spans))
            concat_cache[stations] = entry
        concat_max, spans = entry
        ers_all = tab.reward_within(concat_max)
        names: List[str] = []
        for sid, (_offset, num_slots) in zip(stations, spans):
            names.extend(_var_name(rid, sid, slot)
                         for slot in range(num_slots))
        first = lp.add_variables_bulk(names, (0.0,) * len(names),
                                      (1.0,) * len(names), ers_all)
        for sid, (offset, num_slots) in zip(stations, spans):
            for slot in range(num_slots):
                triples[names[offset + slot]] = (rid, sid, slot)
            station = blocks[sid]
            station.first_cols.append(first + offset)
            station.tables.append(tab)
        by_request[rid] = names

    # Constraint (9): each request starts in at most one slot.  A
    # request's columns are contiguous (its blocks were appended
    # back-to-back), so the row is a pure index range.
    next_first = 0
    for rid, names in by_request.items():
        if names:
            first = next_first
            lp.add_constraint_indexed(
                dict.fromkeys(range(first, first + len(names)), 1.0),
                "<=", 1.0, name=f"choice_{rid}")
        next_first += len(names)

    # Constraints (10)/(23) + the per-station expected-capacity row.
    # The capacity row is a valid per-station bound with no slack
    # factor: any admission policy keeps the realized
    # (capacity-truncated) occupancy within ``C(bs_i)`` in every run,
    # hence in expectation - the LP image of ILP-RM's constraint (4).
    # The optimal policy satisfies it, so adding it preserves Lemma 1
    # (``LPOpt >= Opt``) while forcing the fractional solution to
    # *choose* which requests to carry when the workload exceeds
    # capacity - which is where the expected-reward awareness of the
    # objective actually bites.
    for sid in instance.network.station_ids:
        station = blocks[sid]
        geo = station.geometry
        share = _share_rate(geo, instance, fair_share_count)
        prefix_caps, capacity_cap = _effective_caps(geo, share)
        for m, coeffs in station.prefix_rows(prefix_caps):
            lp.add_constraint_indexed(
                coeffs, "<=",
                PREFIX_SLACK * geo.threshold_rates[m - 1],
                name=f"prefix_{sid}_{m}")
        coeffs = station.capacity_row(capacity_cap)
        if coeffs:
            lp.add_constraint_indexed(coeffs, "<=", geo.capacity_rate,
                                      name=f"capacity_{sid}")

    index = LpIndex(
        triples=triples,
        by_request={rid: tuple(names) for rid, names in by_request.items()})
    return index, blocks


def build_lp_relaxation(instance: ProblemInstance,
                        requests: Sequence[ARRequest],
                        waiting_ms: Optional[Mapping[int, float]] = None
                        ) -> Tuple[LinearProgram, LpIndex]:
    """Build the slot-indexed **LP** (Eqs. 8-12).

    Args:
        instance: the problem instance.
        requests: the workload to place.
        waiting_ms: per-request waiting time already incurred (the
            ``b_j - a_j`` part of Eq. (2)); defaults to 0 for the
            offline batch problem.

    Returns:
        ``(lp, index)`` - the model and the variable index maps.
    """
    waiting = dict(waiting_ms or {})
    lp = LinearProgram(name="LP", maximize=True)
    index, _blocks = _build_model(lp, instance, requests, waiting,
                                  fair_share_count=None,
                                  tables=_TableCache())
    return lp, index


def build_lp_pt(instance: ProblemInstance,
                requests: Sequence[ARRequest],
                waiting_ms: Optional[Mapping[int, float]] = None,
                workspace: Optional["LpPtWorkspace"] = None,
                fair_share_count: Optional[int] = None
                ) -> Tuple[LinearProgram, LpIndex]:
    """Build **LP-PT** (Eqs. 22-23) for one time slot of DynamicRR.

    Identical to the plain LP except that constraint (23) additionally
    truncates each request's expected rate by the fair round-robin
    share ``C(bs_i) / |R_t|`` (expressed in rate space through
    ``C_unit``).  With ``|R_t| = 0`` the model is empty.

    Args:
        instance: the problem instance.
        requests: the slot's selected set ``R_t``.
        waiting_ms: accumulated waiting of each request in ``R_t``.
        workspace: optional :class:`LpPtWorkspace` enabling the
            incremental cross-round build (table reuse, model reuse,
            in-place fair-share mutation).  The returned model is
            byte-identical to a from-scratch build either way.
        fair_share_count: override for ``|R_t|`` (defaults to
            ``len(requests)``; ablations may pin it).
    """
    waiting = dict(waiting_ms or {})
    count = (max(len(requests), 1) if fair_share_count is None
             else max(int(fair_share_count), 1))
    if workspace is not None:
        return workspace.build(instance, requests, waiting, count)
    lp = LinearProgram(name="LP-PT", maximize=True)
    index, _blocks = _build_model(lp, instance, requests, waiting,
                                  fair_share_count=count,
                                  tables=_TableCache())
    return lp, index


class LpPtWorkspace:
    """Incremental cross-round build state for LP-PT.

    DynamicRR solves a fresh LP-PT every bandit round, but successive
    rounds share almost all of their structure: the instance geometry
    is fixed, pending requests persist across slots, and the only
    round-dependent inputs are the selected set ``R_t``, the waiting
    times (which act through deadline pruning), and the fair-share
    count ``|R_t|``.  The workspace exploits that:

    * **table reuse** - per-request :class:`_DistTables` (including the
      truncated-rate memo) survive across rounds, so a rebuild touches
      no distribution arithmetic for previously seen (request, cap)
      pairs;
    * **model reuse** - when the column structure (request order and
      feasible-station sets) and the fair-share count are unchanged,
      the previous round's model object is returned as-is, letting a
      warm-started solve hit its fingerprint cache without re-solving;
    * **in-place mutation** - when only the fair-share count changed,
      the rows whose effective cap ``min(threshold, share)`` moved are
      rewritten in place via
      :meth:`~repro.solver.model.LinearProgram.update_constraint_indexed`
      instead of regenerating the model.

    All three paths produce a model byte-identical to a from-scratch
    :func:`build_lp_pt`; the counters (:attr:`rebuilds`,
    :attr:`reuses`, :attr:`row_updates`) are exported as telemetry by
    DynamicRR.
    """

    def __init__(self) -> None:
        self._tables = _TableCache()
        #: request_id -> (request, sorted (placement_delay, sid) list);
        #: placement delays are waiting-independent, so the per-round
        #: deadline pruning reduces to one threshold pass.
        self._delays: Dict[int, Tuple[ARRequest,
                                      List[Tuple[float, int]]]] = {}
        self._delay_instance: Optional[ProblemInstance] = None
        self._instance: Optional[ProblemInstance] = None
        self._columns: Optional[Tuple] = None
        self._count: Optional[int] = None
        self._model: Optional[LinearProgram] = None
        self._index: Optional[LpIndex] = None
        self._blocks: Optional[Dict[int, _StationBlocks]] = None
        #: Rounds that rebuilt the model (cached tables only).
        self.rebuilds = 0
        #: Rounds that returned the previous model unchanged.
        self.reuses = 0
        #: Rounds that mutated the fair-share rows in place.
        self.row_updates = 0
        #: What the most recent :meth:`build` call did.
        self.last_mode = "none"

    def build(self, instance: ProblemInstance,
              requests: Sequence[ARRequest],
              waiting: Mapping[int, float],
              fair_share_count: int
              ) -> Tuple[LinearProgram, LpIndex]:
        """Build (or reuse / patch) the round's LP-PT."""
        if instance is not self._delay_instance:
            self._delays.clear()
            self._delay_instance = instance
        feasible = {
            r.request_id: self._feasible_stations(
                instance, r, waiting.get(r.request_id, 0.0))
            for r in requests}
        columns = tuple((r.request_id, tuple(feasible[r.request_id]))
                        for r in requests)
        unchanged = (self._model is not None
                     and instance is self._instance
                     and columns == self._columns)
        if unchanged and fair_share_count == self._count:
            self.reuses += 1
            self.last_mode = "reuse"
            return self._model, self._index
        if unchanged:
            self._patch_share_rows(instance, fair_share_count)
            self._count = fair_share_count
            self.row_updates += 1
            self.last_mode = "row_update"
            return self._model, self._index

        lp = LinearProgram(name="LP-PT", maximize=True)
        index, blocks = _build_model(lp, instance, requests, waiting,
                                     fair_share_count=fair_share_count,
                                     tables=self._tables,
                                     feasible=feasible)
        self._instance = instance
        self._columns = columns
        self._count = fair_share_count
        self._model = lp
        self._index = index
        self._blocks = blocks
        self.rebuilds += 1
        self.last_mode = "rebuild"
        return lp, index

    def _feasible_stations(self, instance: ProblemInstance,
                           request: ARRequest,
                           waiting_ms: float) -> List[int]:
        """Deadline pruning with cached placement delays.

        Same stations, same order (sorted by placement delay then id),
        and the same float comparison as
        :meth:`~repro.core.latency.LatencyModel.feasible_stations` -
        only the waiting-independent delay table is computed once per
        request instead of once per round.
        """
        entry = self._delays.get(request.request_id)
        if entry is None or entry[0] is not request:
            arr = instance.latency.placement_delays(request)
            delays = sorted(zip(arr.tolist(),
                                instance.network.station_ids))
            entry = (request, delays)
            self._delays[request.request_id] = entry
        threshold = request.deadline_ms + 1e-9
        return [sid for delay, sid in entry[1]
                if waiting_ms + delay <= threshold]

    def _patch_share_rows(self, instance: ProblemInstance,
                          fair_share_count: int) -> None:
        """Rewrite rows whose effective cap moved with ``|R_t|``.

        Row *presence* is invariant under a share change: a station
        with columns always has ``truncated(cap) > 0`` for its
        ``cap > 0`` rows, so every affected row already exists and the
        patch never needs to add or drop one.
        """
        assert self._model is not None and self._blocks is not None
        lp = self._model
        for sid, station in self._blocks.items():
            if not station.first_cols:
                continue
            geo = station.geometry
            old_share = _share_rate(geo, instance, self._count)
            new_share = _share_rate(geo, instance, fair_share_count)
            old_prefix, old_capacity = _effective_caps(geo, old_share)
            new_prefix, new_capacity = _effective_caps(geo, new_share)
            for m in range(1, geo.num_slots + 1):
                if new_prefix[m - 1] == old_prefix[m - 1]:
                    continue
                coeffs = station.prefix_row(m, new_prefix[m - 1])
                if coeffs:
                    lp.update_constraint_indexed(f"prefix_{sid}_{m}",
                                                 coeffs)
            # Exact on purpose: an unchanged cap means the row's
            # coefficients are the same floats - only bit-level moves
            # warrant a rewrite (tolerances would skip real changes).
            if new_capacity != old_capacity:  # repro: noqa NUM001 -- bitwise change detection
                coeffs = station.capacity_row(new_capacity)
                if coeffs:
                    lp.update_constraint_indexed(f"capacity_{sid}",
                                                 coeffs)
