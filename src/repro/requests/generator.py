"""Workload generators: batch and slotted-arrival AR request sets.

The offline experiments (Fig. 3, Fig. 5) use a batch of non-preemptive
requests all present at time 0; the online experiments (Fig. 4, Fig. 6)
spread arrivals over a monitoring horizon of ``T`` time slots.  Both
draw per-request parameters from the Section VI-A defaults captured in
:class:`~repro.config.RequestConfig`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..config import RequestConfig
from ..exceptions import ConfigurationError
from ..network.topology import MECNetwork
from ..rng import RngLike, ensure_rng
from .distributions import make_decaying_distribution
from .request import ARRequest
from .tasks import standard_ar_pipeline


class RequestGenerator:
    """Draws AR requests consistent with the paper's parameter settings.

    Args:
        config: workload parameters (validated at construction).
        network: the MEC network - requests attach to a station drawn
            uniformly at random (users are spread over the coverage
            area, each served by its closest base station).
        rng: seed or generator for all draws.
    """

    def __init__(self, config: RequestConfig, network: MECNetwork,
                 rng: RngLike = None) -> None:
        config.validate()
        self._config = config
        self._network = network
        self._rng = ensure_rng(rng)

    @property
    def config(self) -> RequestConfig:
        """The workload parameters."""
        return self._config

    @property
    def rng(self) -> np.random.Generator:
        """The generator's random stream (checkpointable state)."""
        return self._rng

    def generate_one(self, request_id: int, arrival_slot: int = 0,
                     serving_station: Optional[int] = None) -> ARRequest:
        """Draw one request.

        Args:
            request_id: id to assign.
            arrival_slot: arrival time slot ``a_j``.
            serving_station: attachment station; drawn uniformly when
                ``None``.
        """
        cfg = self._config
        rng = self._rng
        if serving_station is None:
            serving_station = int(rng.choice(self._network.station_ids))
        num_tasks = int(rng.integers(cfg.tasks_range[0],
                                     cfg.tasks_range[1] + 1))
        unit_price = float(rng.uniform(*cfg.reward_unit_range))
        distribution = make_decaying_distribution(
            rate_range_mbps=cfg.data_rate_range_mbps,
            num_levels=cfg.num_rate_levels,
            decay=cfg.rate_decay,
            unit_price=unit_price,
            rng=rng,
        )
        return ARRequest(
            request_id=request_id,
            serving_station=serving_station,
            pipeline=standard_ar_pipeline(num_tasks),
            distribution=distribution,
            deadline_ms=cfg.deadline_ms,
            arrival_slot=arrival_slot,
            stream_duration_slots=cfg.stream_duration_slots,
            c_unit_mhz_per_mbps=cfg.c_unit_mhz_per_mbps,
        )

    def generate_batch(self, num_requests: Optional[int] = None
                       ) -> List[ARRequest]:
        """Draw a batch workload, all arriving at slot 0."""
        n = self._config.num_requests if num_requests is None else num_requests
        if n < 0:
            raise ConfigurationError(f"num_requests must be >= 0, got {n}")
        return [self.generate_one(request_id=j) for j in range(n)]

    def generate_arrivals(self, num_requests: Optional[int] = None,
                          horizon_slots: int = 200) -> List[ARRequest]:
        """Draw a slotted workload with uniform arrivals over a horizon.

        Arrival slots are sorted ascending so the list can be consumed
        sequentially by the online engine.
        """
        n = self._config.num_requests if num_requests is None else num_requests
        if n < 0:
            raise ConfigurationError(f"num_requests must be >= 0, got {n}")
        if horizon_slots < 1:
            raise ConfigurationError(
                f"horizon must be >= 1 slot, got {horizon_slots}")
        slots = np.sort(self._rng.integers(0, horizon_slots, size=n))
        return [self.generate_one(request_id=j, arrival_slot=int(slots[j]))
                for j in range(n)]


def slotted_arrivals(requests: Sequence[ARRequest],
                     horizon_slots: int) -> List[List[ARRequest]]:
    """Bucket requests by arrival slot.

    Args:
        requests: any iterable of requests.
        horizon_slots: length of the monitoring period ``T``; requests
            arriving after the horizon are dropped (they cannot be
            scheduled inside the monitored window).

    Returns:
        ``buckets`` with ``buckets[t]`` = requests arriving at slot t.
    """
    if horizon_slots < 1:
        raise ConfigurationError(
            f"horizon must be >= 1 slot, got {horizon_slots}")
    buckets: List[List[ARRequest]] = [[] for _ in range(horizon_slots)]
    for request in requests:
        if 0 <= request.arrival_slot < horizon_slots:
            buckets[request.arrival_slot].append(request)
    return buckets
