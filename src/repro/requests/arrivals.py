"""Arrival processes for the online (dynamic) setting.

The paper's dynamic problem only says requests "arrive into the system
dynamically"; the uniform arrivals of
:meth:`~repro.requests.generator.RequestGenerator.generate_arrivals`
are the neutral default.  This module adds the two processes real AR
deployments exhibit so the online algorithms can be stressed beyond
uniform load:

* **Poisson** - memoryless arrivals at a fixed rate (the standard
  telecom model),
* **diurnal** - a sinusoidal intensity profile (lecture-break / rush
  bursts) sampled by thinning,
* **burst** - a constant trickle plus one dense burst window, the
  worst case for the over-congestion that ``C^th`` guards against.

Each process returns sorted arrival slots; combine with a
:class:`~repro.requests.generator.RequestGenerator` via
:func:`assign_arrival_slots`.

The finite processes above materialize a whole workload up front, which
the batch experiments need.  The long-lived admission service
(:mod:`repro.service`) instead consumes :class:`PoissonArrivalStream` -
a *lazy* per-slot Poisson source that never materializes more than one
slot's batch, runs unbounded (or up to an optional ``limit``), and
checkpoints/restores its exact position so a resumed service draws the
same remaining arrivals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng
from .generator import RequestGenerator
from .request import ARRequest


def _check_horizon(horizon_slots: int) -> None:
    if horizon_slots < 1:
        raise ConfigurationError(
            f"horizon must be >= 1 slot, got {horizon_slots}")


def poisson_arrivals(num_requests: int, horizon_slots: int,
                     rng: RngLike = None) -> List[int]:
    """`num_requests` Poisson-process arrival slots over a horizon.

    Conditional on the count, Poisson arrival times are i.i.d. uniform
    over the window - so this draws uniform slots and sorts them (the
    exact conditional distribution, not an approximation).
    """
    _check_horizon(horizon_slots)
    if num_requests < 0:
        raise ConfigurationError(
            f"num_requests must be >= 0, got {num_requests}")
    rng = ensure_rng(rng)
    slots = rng.integers(0, horizon_slots, size=num_requests)
    return sorted(int(s) for s in slots)


def diurnal_arrivals(num_requests: int, horizon_slots: int,
                     peak_sharpness: float = 1.0,
                     num_peaks: int = 1,
                     rng: RngLike = None) -> List[int]:
    """Arrival slots from a sinusoidal intensity profile.

    Intensity at slot ``t`` is ``1 + peak_sharpness * sin^2(pi * t *
    num_peaks / T)``; slots are drawn from the normalized profile.

    Args:
        num_requests: arrivals to draw.
        horizon_slots: monitoring period ``T``.
        peak_sharpness: 0 = uniform; larger = burstier peaks.
        num_peaks: number of intensity peaks across the horizon.
        rng: randomness.
    """
    _check_horizon(horizon_slots)
    if peak_sharpness < 0:
        raise ConfigurationError(
            f"peak_sharpness must be >= 0, got {peak_sharpness}")
    if num_peaks < 1:
        raise ConfigurationError(
            f"num_peaks must be >= 1, got {num_peaks}")
    rng = ensure_rng(rng)
    t = np.arange(horizon_slots)
    intensity = 1.0 + peak_sharpness * np.sin(
        np.pi * t * num_peaks / horizon_slots) ** 2
    probs = intensity / intensity.sum()
    slots = rng.choice(horizon_slots, size=num_requests, p=probs)
    return sorted(int(s) for s in slots)


def burst_arrivals(num_requests: int, horizon_slots: int,
                   burst_start: int, burst_length: int,
                   burst_fraction: float = 0.6,
                   rng: RngLike = None) -> List[int]:
    """A trickle plus one dense burst window.

    Args:
        num_requests: total arrivals.
        horizon_slots: monitoring period ``T``.
        burst_start: first slot of the burst window.
        burst_length: burst window length in slots.
        burst_fraction: fraction of arrivals landing in the burst.
        rng: randomness.
    """
    _check_horizon(horizon_slots)
    if not 0 <= burst_start < horizon_slots:
        raise ConfigurationError(
            f"burst_start {burst_start} outside horizon")
    if burst_length < 1 or burst_start + burst_length > horizon_slots:
        raise ConfigurationError(
            f"burst window {burst_start}+{burst_length} outside horizon")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ConfigurationError(
            f"burst_fraction must lie in [0, 1], got {burst_fraction}")
    rng = ensure_rng(rng)
    in_burst = int(round(num_requests * burst_fraction))
    burst = rng.integers(burst_start, burst_start + burst_length,
                         size=in_burst)
    trickle = rng.integers(0, horizon_slots,
                           size=num_requests - in_burst)
    return sorted(int(s) for s in list(burst) + list(trickle))


def assign_arrival_slots(requests: Sequence[ARRequest],
                         slots: Sequence[int]) -> List[ARRequest]:
    """Stamp arrival slots onto requests (in request order).

    Args:
        requests: requests to re-stamp.
        slots: one slot per request (same length).

    Returns:
        New :class:`ARRequest` objects sorted by arrival slot.
    """
    if len(requests) != len(slots):
        raise ConfigurationError(
            f"{len(requests)} requests but {len(slots)} arrival slots")
    stamped = []
    for request, slot in zip(requests, slots):
        stamped.append(ARRequest(
            request_id=request.request_id,
            serving_station=request.serving_station,
            pipeline=request.pipeline,
            distribution=request.distribution,
            deadline_ms=request.deadline_ms,
            arrival_slot=int(slot),
            stream_duration_slots=request.stream_duration_slots,
            c_unit_mhz_per_mbps=request.c_unit_mhz_per_mbps,
        ))
    return sorted(stamped, key=lambda r: (r.arrival_slot, r.request_id))


class PoissonArrivalStream:
    """A lazy, unbounded Poisson arrival source for the streaming service.

    Each call to :meth:`next_batch` advances one slot and draws
    ``Poisson(mean_per_slot)`` fresh requests with monotonically
    increasing ids.  Nothing is precomputed: memory stays flat no
    matter how many slots are consumed.  The stream is fully
    deterministic given its seed and is checkpointable - the pair
    :meth:`export_state` / :meth:`restore_state` captures the exact
    position (next id, next slot, both RNG states), so a resumed stream
    emits byte-identical remaining arrivals.

    Args:
        generator: draws per-request parameters (owns its own RNG; its
            state is part of the stream checkpoint).
        mean_per_slot: mean arrivals per slot (Poisson rate).
        rng: randomness for the per-slot *counts* (kept separate from
            the generator's parameter draws so the two streams stay
            statistically independent).
        limit: optional cap on total arrivals; once reached, further
            batches are empty (the count RNG is no longer drawn, which
            is deterministic as long as both runs share the limit).
    """

    def __init__(self, generator: RequestGenerator, mean_per_slot: float,
                 rng: RngLike = None,
                 limit: Optional[int] = None) -> None:
        if mean_per_slot <= 0:
            raise ConfigurationError(
                f"mean_per_slot must be > 0, got {mean_per_slot}")
        if limit is not None and limit < 0:
            raise ConfigurationError(
                f"limit must be >= 0, got {limit}")
        self._generator = generator
        self._mean = float(mean_per_slot)
        self._rng = ensure_rng(rng)
        self._limit = limit
        self._next_id = 0
        self._next_slot = 0

    @property
    def emitted(self) -> int:
        """Total requests emitted so far."""
        return self._next_id

    @property
    def next_slot(self) -> int:
        """The slot the next :meth:`next_batch` call will produce."""
        return self._next_slot

    @property
    def exhausted(self) -> bool:
        """True when a ``limit`` was set and has been reached."""
        return self._limit is not None and self._next_id >= self._limit

    def next_batch(self) -> Tuple[int, List[ARRequest]]:
        """Advance one slot; return ``(slot, fresh requests)``.

        The batch is empty when the Poisson draw is 0 or the stream is
        exhausted.
        """
        slot = self._next_slot
        self._next_slot += 1
        if self.exhausted:
            return slot, []
        count = int(self._rng.poisson(self._mean))
        if self._limit is not None:
            count = min(count, self._limit - self._next_id)
        batch = [self._generator.generate_one(
            request_id=self._next_id + k, arrival_slot=slot)
            for k in range(count)]
        self._next_id += count
        return slot, batch

    def export_state(self) -> Dict[str, Any]:
        """Snapshot the stream position for a service checkpoint."""
        return {
            "next_id": self._next_id,
            "next_slot": self._next_slot,
            "count_rng": self._rng.bit_generator.state,
            "generator_rng": self._generator.rng.bit_generator.state,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Install a snapshot produced by :meth:`export_state`."""
        self._next_id = int(state["next_id"])
        self._next_slot = int(state["next_slot"])
        self._rng.bit_generator.state = state["count_rng"]
        self._generator.rng.bit_generator.state = state["generator_rng"]

    def __repr__(self) -> str:
        return (f"PoissonArrivalStream(mean={self._mean:g}, "
                f"emitted={self._next_id}, next_slot={self._next_slot}, "
                f"limit={self._limit})")
