"""Arrival processes for the online (dynamic) setting.

The paper's dynamic problem only says requests "arrive into the system
dynamically"; the uniform arrivals of
:meth:`~repro.requests.generator.RequestGenerator.generate_arrivals`
are the neutral default.  This module adds the two processes real AR
deployments exhibit so the online algorithms can be stressed beyond
uniform load:

* **Poisson** - memoryless arrivals at a fixed rate (the standard
  telecom model),
* **diurnal** - a sinusoidal intensity profile (lecture-break / rush
  bursts) sampled by thinning,
* **burst** - a constant trickle plus one dense burst window, the
  worst case for the over-congestion that ``C^th`` guards against.

Each process returns sorted arrival slots; combine with a
:class:`~repro.requests.generator.RequestGenerator` via
:func:`assign_arrival_slots`.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng
from .request import ARRequest


def _check_horizon(horizon_slots: int) -> None:
    if horizon_slots < 1:
        raise ConfigurationError(
            f"horizon must be >= 1 slot, got {horizon_slots}")


def poisson_arrivals(num_requests: int, horizon_slots: int,
                     rng: RngLike = None) -> List[int]:
    """`num_requests` Poisson-process arrival slots over a horizon.

    Conditional on the count, Poisson arrival times are i.i.d. uniform
    over the window - so this draws uniform slots and sorts them (the
    exact conditional distribution, not an approximation).
    """
    _check_horizon(horizon_slots)
    if num_requests < 0:
        raise ConfigurationError(
            f"num_requests must be >= 0, got {num_requests}")
    rng = ensure_rng(rng)
    slots = rng.integers(0, horizon_slots, size=num_requests)
    return sorted(int(s) for s in slots)


def diurnal_arrivals(num_requests: int, horizon_slots: int,
                     peak_sharpness: float = 1.0,
                     num_peaks: int = 1,
                     rng: RngLike = None) -> List[int]:
    """Arrival slots from a sinusoidal intensity profile.

    Intensity at slot ``t`` is ``1 + peak_sharpness * sin^2(pi * t *
    num_peaks / T)``; slots are drawn from the normalized profile.

    Args:
        num_requests: arrivals to draw.
        horizon_slots: monitoring period ``T``.
        peak_sharpness: 0 = uniform; larger = burstier peaks.
        num_peaks: number of intensity peaks across the horizon.
        rng: randomness.
    """
    _check_horizon(horizon_slots)
    if peak_sharpness < 0:
        raise ConfigurationError(
            f"peak_sharpness must be >= 0, got {peak_sharpness}")
    if num_peaks < 1:
        raise ConfigurationError(
            f"num_peaks must be >= 1, got {num_peaks}")
    rng = ensure_rng(rng)
    t = np.arange(horizon_slots)
    intensity = 1.0 + peak_sharpness * np.sin(
        np.pi * t * num_peaks / horizon_slots) ** 2
    probs = intensity / intensity.sum()
    slots = rng.choice(horizon_slots, size=num_requests, p=probs)
    return sorted(int(s) for s in slots)


def burst_arrivals(num_requests: int, horizon_slots: int,
                   burst_start: int, burst_length: int,
                   burst_fraction: float = 0.6,
                   rng: RngLike = None) -> List[int]:
    """A trickle plus one dense burst window.

    Args:
        num_requests: total arrivals.
        horizon_slots: monitoring period ``T``.
        burst_start: first slot of the burst window.
        burst_length: burst window length in slots.
        burst_fraction: fraction of arrivals landing in the burst.
        rng: randomness.
    """
    _check_horizon(horizon_slots)
    if not 0 <= burst_start < horizon_slots:
        raise ConfigurationError(
            f"burst_start {burst_start} outside horizon")
    if burst_length < 1 or burst_start + burst_length > horizon_slots:
        raise ConfigurationError(
            f"burst window {burst_start}+{burst_length} outside horizon")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ConfigurationError(
            f"burst_fraction must lie in [0, 1], got {burst_fraction}")
    rng = ensure_rng(rng)
    in_burst = int(round(num_requests * burst_fraction))
    burst = rng.integers(burst_start, burst_start + burst_length,
                         size=in_burst)
    trickle = rng.integers(0, horizon_slots,
                           size=num_requests - in_burst)
    return sorted(int(s) for s in list(burst) + list(trickle))


def assign_arrival_slots(requests: Sequence[ARRequest],
                         slots: Sequence[int]) -> List[ARRequest]:
    """Stamp arrival slots onto requests (in request order).

    Args:
        requests: requests to re-stamp.
        slots: one slot per request (same length).

    Returns:
        New :class:`ARRequest` objects sorted by arrival slot.
    """
    if len(requests) != len(slots):
        raise ConfigurationError(
            f"{len(requests)} requests but {len(slots)} arrival slots")
    stamped = []
    for request, slot in zip(requests, slots):
        stamped.append(ARRequest(
            request_id=request.request_id,
            serving_station=request.serving_station,
            pipeline=request.pipeline,
            distribution=request.distribution,
            deadline_ms=request.deadline_ms,
            arrival_slot=int(slot),
            stream_duration_slots=request.stream_duration_slots,
            c_unit_mhz_per_mbps=request.c_unit_mhz_per_mbps,
        ))
    return sorted(stamped, key=lambda r: (r.arrival_slot, r.request_id))
