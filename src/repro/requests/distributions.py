"""Joint (data-rate, reward) distributions over the discrete set ``DR``.

Section III-B/C: the actual data rate of an AR request is unknown until
it is scheduled; only a distribution over a finite set ``DR`` of
possible rates is known, and for each rate ``rho`` there is a pair
``(pi_{j,rho}, RD_{j,rho})`` - the probability of that rate and the
reward the provider earns if the request realizes it.

Crucially the paper does *not* assume rewards proportional to demand:
each request carries its own reward column, and algorithms only ever
see the distribution (plus realized values *after* scheduling).

This module also provides the truncated expectations
``E[min(rho, c)]`` that appear in the LP constraint (10) and in LP-PT's
constraint (23).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng

_PROB_TOL = 1e-9


class RateRewardDistribution:
    """A discrete joint distribution over (data rate, reward) pairs.

    Args:
        rates_mbps: the support ``DR`` (MB/s), strictly increasing.
        probabilities: ``pi_{j,rho}`` for each rate; must sum to 1.
        rewards: ``RD_{j,rho}`` for each rate (dollars).

    All three sequences must have equal length >= 1.
    """

    def __init__(self, rates_mbps: Sequence[float],
                 probabilities: Sequence[float],
                 rewards: Sequence[float]) -> None:
        rates = np.asarray(rates_mbps, dtype=float)
        probs = np.asarray(probabilities, dtype=float)
        rwds = np.asarray(rewards, dtype=float)
        if rates.ndim != 1 or rates.size == 0:
            raise ConfigurationError("rates must be a non-empty 1-D sequence")
        if rates.shape != probs.shape or rates.shape != rwds.shape:
            raise ConfigurationError(
                "rates, probabilities and rewards must have equal length, "
                f"got {rates.size}, {probs.size}, {rwds.size}")
        if np.any(rates <= 0):
            raise ConfigurationError("all rates must be positive")
        if np.any(np.diff(rates) <= 0):
            raise ConfigurationError("rates must be strictly increasing")
        if np.any(probs < -_PROB_TOL):
            raise ConfigurationError("probabilities must be non-negative")
        total = float(probs.sum())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"probabilities must sum to 1, got {total}")
        if np.any(rwds < 0):
            raise ConfigurationError("rewards must be non-negative")
        self._rates = rates
        self._probs = np.clip(probs, 0.0, None) / total
        self._rewards = rwds

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rates_mbps(self) -> np.ndarray:
        """The support ``DR`` (read-only view)."""
        view = self._rates.view()
        view.flags.writeable = False
        return view

    @property
    def probabilities(self) -> np.ndarray:
        """``pi_{j,rho}`` per rate (read-only view)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def rewards(self) -> np.ndarray:
        """``RD_{j,rho}`` per rate (read-only view)."""
        view = self._rewards.view()
        view.flags.writeable = False
        return view

    @property
    def num_levels(self) -> int:
        """``|DR|``."""
        return int(self._rates.size)

    @property
    def max_rate_mbps(self) -> float:
        """Largest rate in the support."""
        return float(self._rates[-1])

    @property
    def min_rate_mbps(self) -> float:
        """Smallest rate in the support."""
        return float(self._rates[0])

    # ------------------------------------------------------------------
    # Expectations
    # ------------------------------------------------------------------
    def expected_rate(self) -> float:
        """``E[rho_j]`` - the expected data rate."""
        return float(self._probs @ self._rates)

    def expected_reward(self) -> float:
        """``E[RD_j] = sum_rho pi_rho * RD_rho``."""
        return float(self._probs @ self._rewards)

    def expected_truncated_rate(self, cap_mbps: float) -> float:
        """``E[min(rho_j, cap)]`` - the truncation of constraint (10)."""
        if cap_mbps < 0:
            raise ConfigurationError(
                f"cap must be non-negative, got {cap_mbps}")
        return float(self._probs @ np.minimum(self._rates, cap_mbps))

    def expected_reward_within(self, max_rate_mbps: float) -> float:
        """Expected reward counting only rates ``<= max_rate_mbps``.

        This is the paper's ``ER_{jil}`` of Eq. (8) expressed in rate
        space: a starting slot ``l`` at station ``bs_i`` earns
        ``RD_{j,rho}`` only for realizations whose demand fits into the
        remaining capacity ``C(bs_i) - l * C_l``, i.e. whose rate is at
        most ``(C(bs_i) - l * C_l) / C_unit``.
        """
        if max_rate_mbps < 0:
            return 0.0
        mask = self._rates <= max_rate_mbps + _PROB_TOL
        return float(self._probs[mask] @ self._rewards[mask])

    def probability_within(self, max_rate_mbps: float) -> float:
        """``P[rho_j <= max_rate_mbps]``."""
        if max_rate_mbps < 0:
            return 0.0
        mask = self._rates <= max_rate_mbps + _PROB_TOL
        return float(self._probs[mask].sum())

    def reward_of_rate(self, rate_mbps: float) -> float:
        """The reward ``RD_{j,rho}`` attached to an exact support rate.

        Raises:
            ConfigurationError: if `rate_mbps` is not in the support.
        """
        idx = np.flatnonzero(np.isclose(self._rates, rate_mbps))
        if idx.size == 0:
            raise ConfigurationError(
                f"rate {rate_mbps} is not in the support {self._rates}")
        return float(self._rewards[int(idx[0])])

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(self, rng: RngLike = None) -> Tuple[float, float]:
        """Draw one (rate, reward) realization.

        Returns:
            ``(rho, RD_rho)`` - the realized data rate and its reward.
        """
        rng = ensure_rng(rng)
        idx = int(rng.choice(self.num_levels, p=self._probs))
        return float(self._rates[idx]), float(self._rewards[idx])

    def __repr__(self) -> str:
        return (f"RateRewardDistribution(levels={self.num_levels}, "
                f"rates=[{self.min_rate_mbps:.1f}..{self.max_rate_mbps:.1f}]"
                f" MB/s, E[rate]={self.expected_rate():.2f})")


def make_decaying_distribution(
        rate_range_mbps: Tuple[float, float],
        num_levels: int,
        decay: float,
        unit_price: float,
        rng: RngLike = None,
        price_jitter: float = 0.05) -> RateRewardDistribution:
    """Build a request's (rate, reward) distribution the way Section VI does.

    Rates form an evenly spaced grid over `rate_range_mbps`;
    probabilities decay geometrically with the rate level (large rates
    are rare, per the paper's observation citing [10]).

    Rewards follow the paper's **demand-independent** model (Sections I
    and III-C: "the rewards and data rates of requests are
    independent"): every level of a request earns roughly the same
    reward ``unit_price * billed_rate``, where the *billed* rate is one
    independent draw from the rate range (the provider's pricing is set
    per request - by contract, time period, and cost structure - not by
    the realized sampling rate), perturbed per level by a small jitter
    ("rewards of implementing requests with the same data rate vary").
    Requests therefore differ substantially in value per unit of
    computing resource, which is exactly the structure the expected-
    reward-aware algorithms exploit and the baselines ignore.

    Args:
        rate_range_mbps: (min, max) support of the rate grid.
        num_levels: size of the grid ``|DR|``.
        decay: geometric decay factor in (0, 1]; 1 gives a uniform
            distribution over rates.
        unit_price: dollars per MB/s (paper: drawn from [12, 15]).
        rng: randomness for the billed rate and per-level jitter.
        price_jitter: relative magnitude of the per-level reward jitter.

    Returns:
        A validated :class:`RateRewardDistribution`.
    """
    lo, hi = rate_range_mbps
    if not 0 < lo <= hi:
        raise ConfigurationError(f"invalid rate range {rate_range_mbps}")
    if num_levels < 1:
        raise ConfigurationError(
            f"need at least one level, got {num_levels}")
    if not 0 < decay <= 1:
        raise ConfigurationError(f"decay must lie in (0, 1], got {decay}")
    if unit_price < 0:
        raise ConfigurationError(
            f"unit price must be >= 0, got {unit_price}")
    if not 0 <= price_jitter < 1:
        raise ConfigurationError(
            f"price_jitter must lie in [0, 1), got {price_jitter}")
    rng = ensure_rng(rng)

    if num_levels == 1:
        rates = np.array([(lo + hi) / 2.0])
    else:
        rates = np.linspace(lo, hi, num_levels)
    weights = decay ** np.arange(num_levels, dtype=float)
    probs = weights / weights.sum()
    billed_rate = float(rng.uniform(lo, hi))
    jitter = 1.0 + price_jitter * (2.0 * rng.random(num_levels) - 1.0)
    rewards = unit_price * billed_rate * jitter
    return RateRewardDistribution(rates, probs, rewards)
