"""AR request workload substrate.

Models Section III-B/C/D of the paper: AR processing pipelines (a
sequence of tasks), uncertain data rates over a discrete set ``DR``,
joint (data-rate, reward) distributions, latency requirements, and the
request generators / synthetic traces used by the evaluation.
"""

from .tasks import ARTask, TaskPipeline, standard_ar_pipeline
from .distributions import RateRewardDistribution, make_decaying_distribution
from .request import ARRequest
from .generator import RequestGenerator, slotted_arrivals
from .arrivals import (PoissonArrivalStream, assign_arrival_slots,
                       burst_arrivals, diurnal_arrivals, poisson_arrivals)
from .traces import FrameTrace, TraceSynthesizer, rate_distribution_from_traces

__all__ = [
    "ARTask",
    "TaskPipeline",
    "standard_ar_pipeline",
    "RateRewardDistribution",
    "make_decaying_distribution",
    "ARRequest",
    "RequestGenerator",
    "slotted_arrivals",
    "poisson_arrivals",
    "diurnal_arrivals",
    "burst_arrivals",
    "assign_arrival_slots",
    "PoissonArrivalStream",
    "FrameTrace",
    "TraceSynthesizer",
    "rate_distribution_from_traces",
]
