"""AR processing pipelines: sequences of dependent tasks.

Section III-B models each AR request ``r_j`` as a sequence of tasks
``{M_{j,1}, ..., M_{j,K_j}}``; each task consumes the output matrix of
its predecessor.  The evaluation (Section VI-A) uses the four-stage
pipeline of Braud et al. [5]:

=================  ==================
task               output size
=================  ==================
render object      100 KB
track objects      64 KB
update world model 64 KB
recognize objects  64 KB
=================  ==================

Rendering is the most computing-intensive task, which we model with a
per-task compute weight; the per-station processing delay of a task is
its weight times the station's base per-``rho_unit`` delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..units import kb_to_mb


@dataclass(frozen=True)
class ARTask:
    """One stage ``M_{j,k}`` of an AR processing pipeline.

    Attributes:
        name: human-readable stage name.
        output_kb: size of the output matrix handed to the successor.
        compute_weight: relative computing intensity; the processing
            delay ``d^pro_{jki}`` of this task at a station scales with
            this weight (rendering is the heaviest stage).
    """

    name: str
    output_kb: float
    compute_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("task name must be non-empty")
        if self.output_kb <= 0:
            raise ConfigurationError(
                f"output size must be positive, got {self.output_kb}")
        if self.compute_weight <= 0:
            raise ConfigurationError(
                f"compute weight must be positive, got {self.compute_weight}")

    @property
    def output_mb(self) -> float:
        """Output matrix size in MB."""
        return kb_to_mb(self.output_kb)


class TaskPipeline:
    """An ordered sequence of :class:`ARTask` stages.

    Args:
        tasks: the stages, predecessor first.
    """

    def __init__(self, tasks: Sequence[ARTask]) -> None:
        if not tasks:
            raise ConfigurationError("a pipeline needs at least one task")
        self._tasks: Tuple[ARTask, ...] = tuple(tasks)

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[ARTask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> ARTask:
        return self._tasks[index]

    @property
    def tasks(self) -> Tuple[ARTask, ...]:
        """The stages in order."""
        return self._tasks

    @property
    def total_compute_weight(self) -> float:
        """Sum of the stages' compute weights.

        The total per-``rho_unit`` processing delay of the pipeline at a
        station is this weight times the station's base task delay, i.e.
        ``sum_k d^pro_{jki}`` in Eq. (2).
        """
        return float(sum(task.compute_weight for task in self._tasks))

    @property
    def total_output_mb(self) -> float:
        """Sum of all stage output sizes (MB)."""
        return float(sum(task.output_mb for task in self._tasks))

    def split(self, head_len: int) -> Tuple["TaskPipeline", "TaskPipeline"]:
        """Split into a head and tail pipeline after `head_len` stages.

        Used by the Heu algorithm when part of an overflowing request's
        pipeline migrates to a neighbouring station.

        Raises:
            ConfigurationError: unless ``0 < head_len < len(self)``.
        """
        if not 0 < head_len < len(self):
            raise ConfigurationError(
                f"head_len must be in (0, {len(self)}), got {head_len}")
        return (TaskPipeline(self._tasks[:head_len]),
                TaskPipeline(self._tasks[head_len:]))

    def heaviest_index(self) -> int:
        """Index of the stage with the largest compute weight.

        Ties break toward the earliest stage, matching the paper's
        observation that rendering - which comes first in [5]'s pipeline
        listing - is the most computing-intensive task.
        """
        best = 0
        for k, task in enumerate(self._tasks):
            if task.compute_weight > self._tasks[best].compute_weight:
                best = k
        return best


#: The four canonical stages of Braud et al. [5], with rendering carrying
#: the dominant compute weight.
STANDARD_STAGES: Tuple[ARTask, ...] = (
    ARTask(name="render_object", output_kb=100.0, compute_weight=2.0),
    ARTask(name="track_objects", output_kb=64.0, compute_weight=1.0),
    ARTask(name="update_world_model", output_kb=64.0, compute_weight=1.0),
    ARTask(name="recognize_objects", output_kb=64.0, compute_weight=1.0),
)


def standard_ar_pipeline(num_tasks: int = 4) -> TaskPipeline:
    """Build a pipeline from the canonical stages of [5].

    Args:
        num_tasks: number of stages, 1..8.  Up to 4 takes a prefix of
            the canonical four; 5-8 appends lighter refinement stages
            (the paper draws 3-5 tasks per request).

    Returns:
        A :class:`TaskPipeline` with `num_tasks` stages.
    """
    if not 1 <= num_tasks <= 8:
        raise ConfigurationError(
            f"num_tasks must be in [1, 8], got {num_tasks}")
    stages: List[ARTask] = list(STANDARD_STAGES[:num_tasks])
    extra = num_tasks - len(STANDARD_STAGES)
    for k in range(max(0, extra)):
        stages.append(ARTask(
            name=f"refine_stage_{k + 1}",
            output_kb=64.0,
            compute_weight=0.5,
        ))
    return TaskPipeline(stages)
