"""The AR request object shared by every algorithm in the library.

An :class:`ARRequest` carries everything Section III attaches to
``r_j``: the arrival slot ``a_j``, the task pipeline
``{M_{j,1}..M_{j,K_j}}``, the joint (rate, reward) distribution, the
latency requirement ``D_hat_j``, and the serving base station through
which the user reaches the MEC network.

The defining property of the problem is that the data rate is **not
known until the request is scheduled**: algorithms decide placements
from the distribution alone, and only then call :meth:`ARRequest.realize`
to reveal ``(rho_j, RD_{j,rho})``.  The class enforces that protocol -
reading :attr:`realized_rate_mbps` before realization raises.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..exceptions import ConfigurationError, SchedulingError
from ..rng import RngLike, ensure_rng
from ..units import demand_mhz
from .distributions import RateRewardDistribution
from .tasks import TaskPipeline


class ARRequest:
    """One AR offloading request ``r_j``.

    Args:
        request_id: unique id within a workload.
        serving_station: id of the base station the user attaches to
            (requests enter the network there; Eq. (2) charges the
            round-trip path delay from here to the execution station).
        pipeline: the request's task pipeline.
        distribution: joint (rate, reward) distribution over ``DR``.
        deadline_ms: latency requirement ``D_hat_j``.
        arrival_slot: arrival time slot ``a_j`` (0 for batch workloads).
        stream_duration_slots: number of slots the request's stream
            lasts once scheduled (used by the preemptive online engine).
        c_unit_mhz_per_mbps: ``C_unit`` - MHz per MB/s, used by the
            demand helpers.
    """

    def __init__(self, request_id: int, serving_station: int,
                 pipeline: TaskPipeline,
                 distribution: RateRewardDistribution,
                 deadline_ms: float,
                 arrival_slot: int = 0,
                 stream_duration_slots: int = 1,
                 c_unit_mhz_per_mbps: float = 20.0) -> None:
        if request_id < 0:
            raise ConfigurationError(
                f"request_id must be >= 0, got {request_id}")
        if serving_station < 0:
            raise ConfigurationError(
                f"serving_station must be >= 0, got {serving_station}")
        if deadline_ms <= 0:
            raise ConfigurationError(
                f"deadline must be positive, got {deadline_ms}")
        if arrival_slot < 0:
            raise ConfigurationError(
                f"arrival_slot must be >= 0, got {arrival_slot}")
        if stream_duration_slots < 1:
            raise ConfigurationError(
                "stream_duration_slots must be >= 1, got "
                f"{stream_duration_slots}")
        if c_unit_mhz_per_mbps <= 0:
            raise ConfigurationError(
                f"C_unit must be positive, got {c_unit_mhz_per_mbps}")
        self.request_id = request_id
        self.serving_station = serving_station
        self.pipeline = pipeline
        self.distribution = distribution
        self.deadline_ms = float(deadline_ms)
        self.arrival_slot = int(arrival_slot)
        self.stream_duration_slots = int(stream_duration_slots)
        self.c_unit_mhz_per_mbps = float(c_unit_mhz_per_mbps)
        self._realized: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------
    # Distribution-side views (available before scheduling)
    # ------------------------------------------------------------------
    @property
    def expected_rate_mbps(self) -> float:
        """``E[rho_j]``."""
        return self.distribution.expected_rate()

    @property
    def expected_reward(self) -> float:
        """``E[RD_j]``."""
        return self.distribution.expected_reward()

    @property
    def expected_demand_mhz(self) -> float:
        """``E[rho_j] * C_unit``."""
        return demand_mhz(self.expected_rate_mbps, self.c_unit_mhz_per_mbps)

    @property
    def max_demand_mhz(self) -> float:
        """Worst-case demand ``max(DR) * C_unit``."""
        return demand_mhz(self.distribution.max_rate_mbps,
                          self.c_unit_mhz_per_mbps)

    def demand_of_rate_mhz(self, rate_mbps: float) -> float:
        """Demand of a particular realized rate."""
        return demand_mhz(rate_mbps, self.c_unit_mhz_per_mbps)

    # ------------------------------------------------------------------
    # Realization protocol
    # ------------------------------------------------------------------
    @property
    def is_realized(self) -> bool:
        """Whether the data rate has been revealed."""
        return self._realized is not None

    def realize(self, rng: RngLike = None) -> Tuple[float, float]:
        """Reveal the actual (rate, reward); idempotent after first call.

        The paper's protocol: "after the scheduling of each request, it
        may instantiate its data rate and reveal the information to the
        system".  Calling :meth:`realize` twice returns the same pair.
        """
        if self._realized is None:
            self._realized = self.distribution.sample(ensure_rng(rng))
        return self._realized

    def force_realization(self, rate_mbps: float, reward: float) -> None:
        """Set the realization explicitly (tests, trace replay).

        Raises:
            SchedulingError: if already realized with different values.
        """
        if self._realized is not None and self._realized != (rate_mbps,
                                                             reward):
            raise SchedulingError(
                f"request {self.request_id} already realized as "
                f"{self._realized}")
        self._realized = (float(rate_mbps), float(reward))

    def reset_realization(self) -> None:
        """Clear the realization (for replaying a workload)."""
        self._realized = None

    @property
    def realized_rate_mbps(self) -> float:
        """The revealed rate ``rho_j``; raises before realization."""
        if self._realized is None:
            raise SchedulingError(
                f"request {self.request_id} not realized yet")
        return self._realized[0]

    @property
    def realized_reward(self) -> float:
        """The revealed reward ``RD_{j,rho}``; raises before realization."""
        if self._realized is None:
            raise SchedulingError(
                f"request {self.request_id} not realized yet")
        return self._realized[1]

    @property
    def realized_demand_mhz(self) -> float:
        """Demand of the revealed rate."""
        return self.demand_of_rate_mhz(self.realized_rate_mbps)

    # ------------------------------------------------------------------
    # Online-engine helpers
    # ------------------------------------------------------------------
    def total_work_mb(self, slot_length_ms: float) -> float:
        """Total stream volume = realized rate x stream duration (MB)."""
        if slot_length_ms <= 0:
            raise ConfigurationError(
                f"slot length must be positive, got {slot_length_ms}")
        duration_s = self.stream_duration_slots * slot_length_ms / 1000.0
        return self.realized_rate_mbps * duration_s

    def __repr__(self) -> str:
        state = "realized" if self.is_realized else "unrealized"
        return (f"ARRequest(id={self.request_id}, "
                f"station={self.serving_station}, "
                f"tasks={len(self.pipeline)}, "
                f"E[rate]={self.expected_rate_mbps:.1f} MB/s, {state})")
