"""Synthetic AR frame traces reproducing the dataset of Braud et al. [5].

The paper evaluates on a real AR dataset "collected in real
environments by adopting OpenCV for tracking and YOLO for recognizing
objects": a stream of JPEG images of ~64 KB uploaded at 90-120 frames
per second, processed by the four-stage pipeline, yielding per-request
data rates of 30-50 MB/s.  That dataset is not redistributable, so this
module synthesizes traces that match its *published statistics* - which
is all the algorithms ever consume (the scheduling layer only sees the
empirical rate distribution built from "historical information").

The substitution is behaviour-preserving because (a) frame sizes and
rates land in the same ranges, and (b) the empirical distribution
estimator below is exactly how a provider would derive the discrete
``DR`` set from history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..rng import RngLike, ensure_rng
from ..units import kb_to_mb
from .distributions import RateRewardDistribution


@dataclass(frozen=True)
class FrameTrace:
    """A timestamped sequence of captured AR frames.

    Attributes:
        timestamps_s: frame capture times (seconds, non-decreasing).
        frame_sizes_kb: JPEG sizes per frame (KB).
    """

    timestamps_s: Tuple[float, ...]
    frame_sizes_kb: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.timestamps_s) != len(self.frame_sizes_kb):
            raise ConfigurationError(
                "timestamps and frame sizes must have equal length")
        if len(self.timestamps_s) < 2:
            raise ConfigurationError("a trace needs at least two frames")
        if any(b < a for a, b in zip(self.timestamps_s,
                                     self.timestamps_s[1:])):
            raise ConfigurationError("timestamps must be non-decreasing")
        if any(s <= 0 for s in self.frame_sizes_kb):
            raise ConfigurationError("frame sizes must be positive")

    @property
    def num_frames(self) -> int:
        """Number of frames in the trace."""
        return len(self.timestamps_s)

    @property
    def duration_s(self) -> float:
        """Trace duration (seconds)."""
        return self.timestamps_s[-1] - self.timestamps_s[0]

    def mean_fps(self) -> float:
        """Average frame rate over the trace."""
        if self.duration_s <= 0:
            raise ConfigurationError("trace has zero duration")
        return (self.num_frames - 1) / self.duration_s

    def mean_rate_mbps(self) -> float:
        """Average data rate (MB/s) over the trace."""
        if self.duration_s <= 0:
            raise ConfigurationError("trace has zero duration")
        total_mb = kb_to_mb(float(sum(self.frame_sizes_kb[1:])))
        return total_mb / self.duration_s

    def windowed_rates_mbps(self, window_s: float) -> List[float]:
        """Per-window average data rates (MB/s).

        This is the "historical information about data rates" the paper
        says providers can observe: the stream's rate sampled over
        fixed-length windows.
        """
        if window_s <= 0:
            raise ConfigurationError(
                f"window must be positive, got {window_s}")
        start = self.timestamps_s[0]
        end = self.timestamps_s[-1]
        rates: List[float] = []
        t = start
        # Only full windows: a truncated tail window would turn one
        # frame over a microscopic span into an absurd rate sample.
        while t + window_s <= end + 1e-12:
            lo, hi = t, t + window_s
            volume_kb = sum(
                size for ts, size in zip(self.timestamps_s,
                                         self.frame_sizes_kb)
                if lo < ts <= hi)
            rates.append(kb_to_mb(volume_kb) / window_s)
            t += window_s
        if not rates:
            raise ConfigurationError("window longer than the whole trace")
        return rates


class TraceSynthesizer:
    """Generates frame traces matching the statistics of [5].

    Args:
        fps_range: frames-per-second range (paper: 90-120).
        frame_size_kb: mean JPEG frame size (paper: 64 KB).
        frame_size_jitter: relative std-dev of frame sizes (JPEG sizes
            vary with scene complexity).
        rng: seed or generator.
    """

    def __init__(self, fps_range: Tuple[float, float] = (90.0, 120.0),
                 frame_size_kb: float = 64.0,
                 frame_size_jitter: float = 0.25,
                 rng: RngLike = None) -> None:
        lo, hi = fps_range
        if not 0 < lo <= hi:
            raise ConfigurationError(f"invalid fps range {fps_range}")
        if frame_size_kb <= 0:
            raise ConfigurationError(
                f"frame size must be positive, got {frame_size_kb}")
        if not 0 <= frame_size_jitter < 1:
            raise ConfigurationError(
                f"jitter must lie in [0, 1), got {frame_size_jitter}")
        self._fps_range = fps_range
        self._frame_size_kb = frame_size_kb
        self._jitter = frame_size_jitter
        self._rng = ensure_rng(rng)

    def synthesize(self, duration_s: float = 10.0) -> FrameTrace:
        """Generate one trace of roughly `duration_s` seconds.

        The instantaneous frame rate wanders inside the configured fps
        range (a bounded random walk models changing network/scene
        conditions), and frame sizes jitter log-normally around the
        mean - together producing the 30-50 MB/s per-request rates the
        paper reports once the pipeline's intermediate matrices (about
        5x amplification over raw frames: 100+64+64+64 KB of task
        outputs per 64 KB input) are included.
        """
        if duration_s <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {duration_s}")
        rng = self._rng
        lo, hi = self._fps_range
        fps = float(rng.uniform(lo, hi))
        timestamps: List[float] = [0.0]
        sizes: List[float] = [self._draw_size(rng)]
        while timestamps[-1] < duration_s:
            fps = float(np.clip(fps + rng.normal(0.0, (hi - lo) * 0.02),
                                lo, hi))
            timestamps.append(timestamps[-1] + 1.0 / fps)
            sizes.append(self._draw_size(rng))
        return FrameTrace(tuple(timestamps), tuple(sizes))

    def _draw_size(self, rng: np.random.Generator) -> float:
        if self._jitter == 0:
            return self._frame_size_kb
        sigma = np.sqrt(np.log(1.0 + self._jitter ** 2))
        mu = np.log(self._frame_size_kb) - 0.5 * sigma ** 2
        return float(rng.lognormal(mean=mu, sigma=sigma))


def rate_distribution_from_traces(
        traces: Sequence[FrameTrace],
        num_levels: int,
        unit_price: float,
        window_s: float = 0.5,
        pipeline_amplification: float = 4.5) -> RateRewardDistribution:
    """Estimate the discrete ``DR`` distribution from historical traces.

    Section III-B: "the values in set DR can be obtained from historical
    information of AR applications".  We pool windowed rates from the
    traces, scale them by the pipeline's data amplification (each raw
    frame spawns the task-output matrices of the four stages), histogram
    them into `num_levels` bins, and attach rewards at `unit_price`
    dollars per MB/s of the bin's representative rate.

    Args:
        traces: observed (or synthesized) frame traces.
        num_levels: target ``|DR|``.
        unit_price: dollars per MB/s for the reward column.
        window_s: sampling window for historical rates.
        pipeline_amplification: multiplier from raw camera rate to
            total in-network processing rate.

    Returns:
        A :class:`RateRewardDistribution` fitted to the pooled history.
    """
    if not traces:
        raise ConfigurationError("need at least one trace")
    if num_levels < 1:
        raise ConfigurationError(
            f"need at least one level, got {num_levels}")
    if pipeline_amplification <= 0:
        raise ConfigurationError(
            "pipeline_amplification must be positive, got "
            f"{pipeline_amplification}")
    samples: List[float] = []
    for trace in traces:
        samples.extend(rate * pipeline_amplification
                       for rate in trace.windowed_rates_mbps(window_s))
    data = np.asarray(samples, dtype=float)
    lo, hi = float(data.min()), float(data.max())
    if num_levels == 1 or np.isclose(lo, hi):
        rates = np.array([max(float(data.mean()), 1e-9)])
        probs = np.array([1.0])
    else:
        edges = np.linspace(lo, hi, num_levels + 1)
        counts, _ = np.histogram(data, bins=edges)
        centers = 0.5 * (edges[:-1] + edges[1:])
        keep = counts > 0
        rates = centers[keep]
        probs = counts[keep].astype(float)
        probs /= probs.sum()
    rewards = unit_price * rates
    return RateRewardDistribution(rates, probs, rewards)
