"""Simulation engines and metrics.

* :mod:`~repro.sim.clock` - the slotted clock (0.05 s slots).
* :mod:`~repro.sim.engine` - offline executor: runs a batch algorithm
  on a fresh workload copy and collects its result.
* :mod:`~repro.sim.online_engine` - the slotted, preemptive engine of
  the dynamic problem: arrivals, waiting, round-robin sharing,
  completions, deadline checks.
* :mod:`~repro.sim.metrics` - reward / latency / runtime meters.
* :mod:`~repro.sim.results` - per-run and per-sweep aggregation.
"""

from .clock import SlotClock
from .engine import run_offline
from .online_engine import OnlineEngine, OnlinePolicy, Placement
from .metrics import (LatencyMeter, RewardMeter, RuntimeMeter,
                      jains_fairness_index)
from .results import RunRecord, SweepResult, aggregate_records
from .timeline import narrate, strip_chart, summarize_events

__all__ = [
    "SlotClock",
    "run_offline",
    "OnlineEngine",
    "OnlinePolicy",
    "Placement",
    "RewardMeter",
    "LatencyMeter",
    "RuntimeMeter",
    "jains_fairness_index",
    "narrate",
    "strip_chart",
    "summarize_events",
    "RunRecord",
    "SweepResult",
    "aggregate_records",
]
