"""Meters for the quantities the paper's figures plot.

Figures 3-6 report three series per algorithm: **total reward**,
**average latency of a request**, and **running time**.  The meters
here accumulate those from per-request events so both the offline and
online paths share one definition of each metric.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ConfigurationError


class RewardMeter:
    """Accumulates per-request rewards."""

    def __init__(self) -> None:
        self._rewards: List[float] = []

    def record(self, reward: float) -> None:
        """Record one request's earned reward (0 for failures)."""
        if reward < 0:
            raise ConfigurationError(f"reward must be >= 0, got {reward}")
        self._rewards.append(float(reward))

    @property
    def total(self) -> float:
        """Total reward."""
        return float(sum(self._rewards))

    @property
    def num_requests(self) -> int:
        """Requests recorded."""
        return len(self._rewards)

    @property
    def num_rewarded(self) -> int:
        """Requests with positive reward."""
        return sum(1 for r in self._rewards if r > 0)

    def mean(self) -> float:
        """Mean reward per recorded request (0 when empty)."""
        if not self._rewards:
            return 0.0
        return self.total / len(self._rewards)


class LatencyMeter:
    """Accumulates experienced latencies of admitted requests."""

    def __init__(self) -> None:
        self._latencies_ms: List[float] = []
        self._deadline_hits = 0

    def record(self, latency_ms: float, deadline_ms: float) -> None:
        """Record one admitted request's experienced latency."""
        if latency_ms < 0:
            raise ConfigurationError(
                f"latency must be >= 0, got {latency_ms}")
        self._latencies_ms.append(float(latency_ms))
        if latency_ms <= deadline_ms + 1e-9:
            self._deadline_hits += 1

    @property
    def count(self) -> int:
        """Latencies recorded."""
        return len(self._latencies_ms)

    def average_ms(self) -> float:
        """Mean latency (0 when empty)."""
        if not self._latencies_ms:
            return 0.0
        return float(np.mean(self._latencies_ms))

    def percentile_ms(self, q: float) -> float:
        """The q-th percentile latency (0 when empty)."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile must be in [0, 100]: {q}")
        if not self._latencies_ms:
            return 0.0
        return float(np.percentile(self._latencies_ms, q))

    def deadline_hit_rate(self) -> float:
        """Fraction of recorded requests meeting their deadline."""
        if not self._latencies_ms:
            return 0.0
        return self._deadline_hits / len(self._latencies_ms)


class RuntimeMeter:
    """Wall-clock running-time accumulator (Fig. 3(c))."""

    def __init__(self) -> None:
        self._total_s = 0.0
        self._started: Optional[float] = None

    def __enter__(self) -> "RuntimeMeter":
        if self._started is not None:
            # Re-entering silently would reset the start stamp and
            # drop the time accrued since the outer __enter__.
            raise ConfigurationError(
                "RuntimeMeter.__enter__ while already started; the "
                "meter is not re-entrant")
        self._started = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        return self

    def __exit__(self, *exc) -> None:
        if self._started is None:
            # Not an assert: those vanish under ``python -O``, and a
            # mismatched __exit__ must fail loudly either way.
            raise ConfigurationError(
                "RuntimeMeter.__exit__ without a matching __enter__")
        self._total_s += time.perf_counter() - self._started  # repro: noqa DET001 -- advisory runtime metric
        self._started = None

    def add(self, seconds: float) -> None:
        """Add externally measured time."""
        if seconds < 0:
            raise ConfigurationError(f"time must be >= 0, got {seconds}")
        self._total_s += seconds

    @property
    def total_s(self) -> float:
        """Total measured seconds."""
        return self._total_s


def jains_fairness_index(values) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 = perfectly equal; 1/n = maximally unfair.  Used on per-request
    waiting times to quantify the scheduling starvation that Section V
    sets out to avoid (a starving minority drives the index down).
    An all-zero (ideal) vector is perfectly equal and scores 1.0; any
    other input is evaluated exactly - no epsilon shift, which would
    distort the index whenever legitimate values sit near its scale.

    Args:
        values: non-negative per-request values (e.g. waiting ms).

    Returns:
        The index in (0, 1]; 1.0 for empty input.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return 1.0
    if np.any(data < 0):
        raise ConfigurationError("fairness values must be >= 0")
    if not data.any():
        return 1.0
    return float(data.sum() ** 2
                 / (data.size * (data ** 2).sum()))


def summarize(reward: RewardMeter, latency: LatencyMeter,
              runtime: RuntimeMeter) -> Dict[str, float]:
    """One row of the figures' data: the three plotted series."""
    return {
        "total_reward": reward.total,
        "avg_latency_ms": latency.average_ms(),
        "runtime_s": runtime.total_s,
    }
