"""Event records emitted by the simulation engines and algorithms.

These are plain observation records - the audit trail of every
scheduling decision.  Tests use them to assert invariants (no request
completes twice, completions follow starts, capacity never
oversubscribed beyond the sharing model), examples print them to
narrate a simulation, and the decision journal
(:mod:`repro.telemetry.audit`) serializes them to JSONL so two runs
can be diffed event by event (``python -m repro.experiments
trace-diff``).

Two overlapping streams exist:

* ``OnlineEngine.events`` - the engine's in-memory event list, holding
  the original lifecycle kinds (ARRIVAL/START/PREEMPT_WAIT/COMPLETE/
  DROP) exactly as before;
* the **decision journal** (:func:`repro.telemetry.audit.get_journal`)
  - a superset stream that also carries algorithm-level decisions
  (MIGRATE, REJECT_ROUNDING, ADMIT, ARM_SELECTED, ARM_ELIMINATED) and
  station availability transitions (STATION_DOWN/STATION_UP), in
  canonical, wall-clock-free form.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple


class EventKind(enum.Enum):
    """What happened."""

    ARRIVAL = "arrival"
    START = "start"
    PREEMPT_WAIT = "preempt_wait"
    COMPLETE = "complete"
    DROP = "drop"
    #: Heu moved one task of an admitted request to another station.
    MIGRATE = "migrate"
    #: A rounded assignment failed the prefix test (Algorithm 1 line 6).
    REJECT_ROUNDING = "reject_rounding"
    #: A rounded assignment passed the prefix test and reserved capacity.
    ADMIT = "admit"
    #: DynamicRR played a threshold arm this bandit round.
    ARM_SELECTED = "arm_selected"
    #: Successive elimination deactivated a threshold arm.
    ARM_ELIMINATED = "arm_eliminated"
    #: A station entered an injected outage window.
    STATION_DOWN = "station_down"
    #: A station (re)announced itself available (carries its capacity).
    STATION_UP = "station_up"
    #: The admission service accepted a request into the pending queue
    #: but did not place it in its arrival slot (it waits, and must
    #: later START or be SHED/dropped - the deferred_resolution
    #: invariant).  ``value`` carries the queue depth at deferral.
    ADMIT_DEFERRED = "admit_deferred"
    #: Bounded-queue backpressure rejected a request at ingress (it
    #: never entered the engine).  ``value`` carries the queue depth
    #: that triggered the shed.
    SHED = "shed"
    #: The admission service persisted a checkpoint after this slot.
    #: Emitted at a deterministic cadence, so an uninterrupted run and
    #: a kill/resume run journal identical CHECKPOINT events.
    CHECKPOINT = "checkpoint"
    #: The admission service restored from a checkpoint.  Recorded on
    #: the *operational* stream only (never the decision journal -
    #: resuming must not perturb journal byte-identity).
    RESUME = "resume"
    #: Periodic dump of the live metrics registry (counters/gauges/
    #: histogram summaries as canonical tuples in ``detail``).  Like
    #: RESUME, strictly operational: never the decision journal.
    METRICS_SNAPSHOT = "metrics_snapshot"


#: ``request_id`` of events that concern no particular request
#: (station availability, bandit arms).
NO_REQUEST = -1


@dataclass(frozen=True)
class Event:
    """One timestamped event.

    Attributes:
        slot: time slot of the event (for REJECT_ROUNDING/ADMIT emitted
            during batch admission this is the *resource-slot* index of
            Algorithm 1, not a time slot).
        kind: event type.
        request_id: the affected request (:data:`NO_REQUEST` for
            station/arm events).
        station_id: station involved (START/COMPLETE/ADMIT, the
            *destination* of a MIGRATE, the subject of STATION_DOWN/UP;
            for DROP, the station that last hosted the request, if
            any - None when the request was never hosted).
        reward: reward earned (START/COMPLETE; 0 on deadline miss).
        latency_ms: experienced latency (START/COMPLETE only).
        src_station_id: MIGRATE only - the station the task left.
        task_index: MIGRATE only - index of the migrated pipeline task.
        arm: ARM_SELECTED/ARM_ELIMINATED only - the arm's grid index.
        value: generic numeric payload - the threshold MHz of an arm
            event, the capacity MHz of a STATION_UP.
        reserved_mhz: MHz of *committed* reservation (offline ADMIT,
            MIGRATE share).  The invariant monitor accumulates these
            per station against capacity.
        share_mhz: MHz of an *elastic* round-robin share (online START
            first-served share, share-capped online ADMIT).  Checked
            against station capacity per event, never accumulated.
        detail: structured justification payload.  MIGRATE: a tuple of
            ``(station_id, free_mhz, reason)`` triples for the closer
            candidate stations that were skipped (reason ``"capacity"``
            or ``"latency"``).  ARM_ELIMINATED: ``(ucb, best_lcb)`` at
            elimination time.
    """

    slot: int
    kind: EventKind
    request_id: int = NO_REQUEST
    station_id: Optional[int] = None
    reward: float = 0.0
    latency_ms: Optional[float] = None
    src_station_id: Optional[int] = None
    task_index: Optional[int] = None
    arm: Optional[int] = None
    value: Optional[float] = None
    reserved_mhz: Optional[float] = None
    share_mhz: Optional[float] = None
    detail: Optional[Tuple] = None

    def to_record(self) -> Dict[str, Any]:
        """The event as a canonical JSON-serializable dict.

        Keys with ``None`` values are omitted (and ``request`` when the
        event concerns no request), so the serialized journal stays
        compact and two journals compare field by field.  ``detail``
        tuples become nested lists - the form a JSONL round-trip
        produces - so in-memory and re-read journals are equal.
        """
        record: Dict[str, Any] = {"kind": self.kind.value,
                                  "slot": self.slot}
        if self.request_id != NO_REQUEST:
            record["request"] = self.request_id
        if self.station_id is not None:
            record["station"] = self.station_id
        if self.kind in (EventKind.START, EventKind.COMPLETE,
                         EventKind.ADMIT):
            record["reward"] = self.reward
        if self.latency_ms is not None:
            record["latency_ms"] = self.latency_ms
        if self.src_station_id is not None:
            record["src"] = self.src_station_id
        if self.task_index is not None:
            record["task"] = self.task_index
        if self.arm is not None:
            record["arm"] = self.arm
        if self.value is not None:
            record["value"] = self.value
        if self.reserved_mhz is not None:
            record["reserved_mhz"] = self.reserved_mhz
        if self.share_mhz is not None:
            record["share_mhz"] = self.share_mhz
        if self.detail is not None:
            record["detail"] = _jsonable(self.detail)
        return record

    def __str__(self) -> str:
        parts = [f"t={self.slot:4d}", self.kind.value]
        if self.request_id != NO_REQUEST:
            parts.append(f"r{self.request_id}")
        if self.src_station_id is not None:
            parts.append(f"bs{self.src_station_id}->")
        if self.station_id is not None:
            parts.append(f"@bs{self.station_id}")
        if self.arm is not None:
            parts.append(f"arm={self.arm}")
        if self.kind is EventKind.COMPLETE:
            parts.append(f"reward={self.reward:.1f}")
            if self.latency_ms is not None:
                parts.append(f"latency={self.latency_ms:.0f}ms")
        return " ".join(parts)


def _jsonable(value):
    """Tuples (recursively) as lists, matching a JSONL round-trip."""
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return value
