"""Event records emitted by the online engine.

These are plain observation records - the engine's audit trail.  Tests
use them to assert invariants (no request completes twice, completions
follow starts, capacity never oversubscribed beyond the sharing model)
and examples print them to narrate a simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class EventKind(enum.Enum):
    """What happened."""

    ARRIVAL = "arrival"
    START = "start"
    PREEMPT_WAIT = "preempt_wait"
    COMPLETE = "complete"
    DROP = "drop"


@dataclass(frozen=True)
class Event:
    """One timestamped event.

    Attributes:
        slot: time slot of the event.
        kind: event type.
        request_id: the affected request.
        station_id: station involved (START/COMPLETE), if any.
        reward: reward earned (COMPLETE only; 0 on deadline miss).
        latency_ms: experienced latency (COMPLETE only).
    """

    slot: int
    kind: EventKind
    request_id: int
    station_id: Optional[int] = None
    reward: float = 0.0
    latency_ms: Optional[float] = None

    def __str__(self) -> str:
        parts = [f"t={self.slot:4d}", self.kind.value,
                 f"r{self.request_id}"]
        if self.station_id is not None:
            parts.append(f"@bs{self.station_id}")
        if self.kind is EventKind.COMPLETE:
            parts.append(f"reward={self.reward:.1f}")
            if self.latency_ms is not None:
                parts.append(f"latency={self.latency_ms:.0f}ms")
        return " ".join(parts)
