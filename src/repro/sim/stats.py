"""Replication statistics: confidence intervals over seeds.

The paper reports point estimates; a reproduction should also say how
stable they are.  This module computes t-based confidence intervals
over the per-seed replications of a sweep and flags points where two
algorithms' intervals overlap (i.e. the ordering is not resolved at
the chosen confidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..exceptions import ConfigurationError
from .results import SweepResult


@dataclass(frozen=True)
class IntervalEstimate:
    """A mean with its two-sided confidence interval.

    Attributes:
        mean: sample mean over seeds.
        half_width: half-width of the interval (0 for n = 1).
        n: number of replications.
    """

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        """Lower interval endpoint."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper interval endpoint."""
        return self.mean + self.half_width

    def overlaps(self, other: "IntervalEstimate") -> bool:
        """Whether the two intervals intersect."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.1f} +/- {self.half_width:.1f} (n={self.n})"


def interval(values, confidence: float = 0.95) -> IntervalEstimate:
    """t-based confidence interval of a sample mean.

    Args:
        values: per-seed measurements (>= 1).
        confidence: two-sided confidence level in (0, 1).
    """
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must lie in (0, 1), got {confidence}")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ConfigurationError("need at least one measurement")
    mean = float(data.mean())
    if data.size == 1:
        return IntervalEstimate(mean=mean, half_width=0.0, n=1)
    sem = float(data.std(ddof=1) / np.sqrt(data.size))
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2,
                                     df=data.size - 1))
    return IntervalEstimate(mean=mean, half_width=t_crit * sem,
                            n=int(data.size))


def sweep_intervals(sweep: SweepResult, algorithm: str, metric: str,
                    confidence: float = 0.95
                    ) -> List[Tuple[float, IntervalEstimate]]:
    """Per-x confidence intervals of one algorithm's metric."""
    out: List[Tuple[float, IntervalEstimate]] = []
    for x in sweep.x_values():
        values = [record.metrics[metric] for record in sweep.records
                  if record.algorithm == algorithm and record.x == x
                  and metric in record.metrics]
        if values:
            out.append((x, interval(values, confidence)))
    if not out:
        raise ConfigurationError(
            f"no values of {metric!r} for {algorithm!r}")
    return out


def unresolved_points(sweep: SweepResult, first: str, second: str,
                      metric: str = "total_reward",
                      confidence: float = 0.95) -> List[float]:
    """Swept values where the two algorithms' intervals overlap.

    An empty list means the ordering between `first` and `second` is
    statistically resolved at every point of the sweep.
    """
    a = dict(sweep_intervals(sweep, first, metric, confidence))
    b = dict(sweep_intervals(sweep, second, metric, confidence))
    return [x for x in sorted(set(a) & set(b))
            if a[x].overlaps(b[x])]


def render_intervals(sweep: SweepResult, metric: str,
                     confidence: float = 0.95) -> str:
    """A table of mean +/- half-width per algorithm and swept value."""
    lines = [f"{metric} ({confidence:.0%} confidence)"]
    for algorithm in sweep.algorithms():
        cells = [f"{algorithm:>12}"]
        for _x, est in sweep_intervals(sweep, algorithm, metric,
                                       confidence):
            cells.append(f"{est.mean:10.1f}+/-{est.half_width:<8.1f}")
        lines.append(" ".join(cells))
    return "\n".join(lines)
