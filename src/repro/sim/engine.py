"""Offline experiment executor.

Runs a batch (non-preemptive) algorithm on a workload and returns its
:class:`~repro.core.assignment.ScheduleResult`.  The executor owns the
two pieces of protocol hygiene every offline comparison needs:

* **fresh realizations** - request rate realizations are reset before
  the run, so comparing algorithms on the same workload stays fair
  (each algorithm reveals rates through its own admission order, and a
  request realizes the same (rate, reward) pair under every algorithm
  because realization draws come from a per-request replayable stream);
* **timing** - the algorithm's own ``runtime_s`` is preserved (it times
  the full solve + round + admit pipeline, which Fig. 3(c) plots).
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

from ..core.assignment import ScheduleResult
from ..core.instance import ProblemInstance
from ..requests.request import ARRequest
from ..rng import RngForks
from ..telemetry import get_tracer


class OfflineAlgorithm(Protocol):
    """The batch-algorithm surface (Appro, Heu, and offline baselines)."""

    name: str

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng) -> ScheduleResult:
        """Place a batch of requests and return per-request decisions."""


def _prepare(requests: Sequence[ARRequest],
             seed: int) -> List[ARRequest]:
    """Reset realizations and pre-draw each request's realization.

    Pre-drawing with a per-request named stream makes the realized
    (rate, reward) of request ``j`` identical across algorithms - the
    standard common-random-numbers variance-reduction for comparisons.
    """
    forks = RngForks(seed)
    for request in requests:
        request.reset_realization()
        rate, reward = request.distribution.sample(
            forks.child(f"real_{request.request_id}"))
        request.force_realization(rate, reward)
    return list(requests)


def run_offline(algorithm: OfflineAlgorithm,
                instance: ProblemInstance,
                requests: Sequence[ARRequest],
                seed: int = 0) -> ScheduleResult:
    """Run one offline algorithm on one workload, fairly.

    Args:
        algorithm: the batch algorithm.
        instance: the problem instance.
        requests: the workload (mutated: realizations are reset and
            re-drawn deterministically from `seed`).
        seed: controls both the common realizations and the
            algorithm's internal randomness (rounding).

    Returns:
        The algorithm's :class:`ScheduleResult`.
    """
    tracer = get_tracer()
    with tracer.span("prepare_workload"):
        prepared = _prepare(requests, seed)
        forks = RngForks(seed)
    with tracer.span("offline_run", algorithm=algorithm.name):
        return algorithm.run(instance, prepared,
                             rng=forks.child(f"algo_{algorithm.name}"))
