"""Offline experiment executor.

Runs a batch (non-preemptive) algorithm on a workload and returns its
:class:`~repro.core.assignment.ScheduleResult`.  The executor owns the
two pieces of protocol hygiene every offline comparison needs:

* **fresh realizations** - request rate realizations are reset before
  the run, so comparing algorithms on the same workload stays fair
  (each algorithm reveals rates through its own admission order, and a
  request realizes the same (rate, reward) pair under every algorithm
  because realization draws come from a per-request replayable stream);
* **timing** - the algorithm's own ``runtime_s`` is preserved (it times
  the full solve + round + admit pipeline, which Fig. 3(c) plots).
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

from ..core.assignment import ScheduleResult
from ..core.instance import ProblemInstance
from ..requests.request import ARRequest
from ..rng import RngForks
from ..telemetry import get_tracer
from ..telemetry.audit import get_journal
from .events import Event, EventKind


class OfflineAlgorithm(Protocol):
    """The batch-algorithm surface (Appro, Heu, and offline baselines)."""

    name: str

    def run(self, instance: ProblemInstance,
            requests: Sequence[ARRequest],
            rng) -> ScheduleResult:
        """Place a batch of requests and return per-request decisions."""


def _prepare(requests: Sequence[ARRequest],
             seed: int) -> List[ARRequest]:
    """Reset realizations and pre-draw each request's realization.

    Pre-drawing with a per-request named stream makes the realized
    (rate, reward) of request ``j`` identical across algorithms - the
    standard common-random-numbers variance-reduction for comparisons.
    """
    forks = RngForks(seed)
    for request in requests:
        request.reset_realization()
        rate, reward = request.distribution.sample(
            forks.child(f"real_{request.request_id}"))
        request.force_realization(rate, reward)
    return list(requests)


def run_offline(algorithm: OfflineAlgorithm,
                instance: ProblemInstance,
                requests: Sequence[ARRequest],
                seed: int = 0) -> ScheduleResult:
    """Run one offline algorithm on one workload, fairly.

    Args:
        algorithm: the batch algorithm.
        instance: the problem instance.
        requests: the workload (mutated: realizations are reset and
            re-drawn deterministically from `seed`).
        seed: controls both the common realizations and the
            algorithm's internal randomness (rounding).

    Returns:
        The algorithm's :class:`ScheduleResult`.
    """
    tracer = get_tracer()
    journal = get_journal()
    with tracer.span("prepare_workload"):
        prepared = _prepare(requests, seed)
        forks = RngForks(seed)
    if journal.enabled:
        _journal_arrivals(instance, prepared, journal)
    with tracer.span("offline_run", algorithm=algorithm.name):
        result = algorithm.run(instance, prepared,
                               rng=forks.child(f"algo_{algorithm.name}"))
    if journal.enabled:
        _journal_decisions(prepared, result, journal)
    return result


def _journal_arrivals(instance: ProblemInstance,
                      requests: Sequence[ARRequest],
                      journal) -> None:
    """Open the offline audit trail: stations, then the batch.

    Offline is a single decision epoch, so every lifecycle event lives
    at slot 0 (algorithm-level ADMIT/REJECT/MIGRATE events in between
    carry *resource-slot* indices instead - see
    :class:`~repro.sim.events.Event`).
    """
    for sid in instance.network.station_ids:
        journal.record(Event(
            slot=0, kind=EventKind.STATION_UP, station_id=sid,
            value=instance.network.station(sid).capacity_mhz))
    for request in sorted(requests, key=lambda r: r.request_id):
        journal.record(Event(slot=0, kind=EventKind.ARRIVAL,
                             request_id=request.request_id))


def _journal_decisions(requests: Sequence[ARRequest],
                       result: ScheduleResult, journal) -> None:
    """Close the offline audit trail from the final decisions.

    Every admitted request gets a START (with its settled reward and
    latency) and an immediate COMPLETE - the batch setting has no
    streaming phase - and every rejected request a DROP, in request-id
    order so the journal is canonical.
    """
    decisions = result.decisions
    for request in sorted(requests, key=lambda r: r.request_id):
        decision = decisions.get(request.request_id)
        if decision is None or not decision.admitted:
            journal.record(Event(slot=0, kind=EventKind.DROP,
                                 request_id=request.request_id))
            continue
        journal.record(Event(slot=0, kind=EventKind.START,
                             request_id=request.request_id,
                             station_id=decision.primary_station,
                             reward=decision.reward,
                             latency_ms=decision.latency_ms))
        journal.record(Event(slot=0, kind=EventKind.COMPLETE,
                             request_id=request.request_id,
                             station_id=decision.primary_station,
                             reward=decision.reward,
                             latency_ms=decision.latency_ms))
