"""The slotted clock of the dynamic problem.

Section III-D: "time is equally divided into time slots"; Section VI-A
sets the slot length to 0.05 seconds.  The clock converts between slot
indices and wall-clock milliseconds and iterates the monitoring period
``T``.
"""

from __future__ import annotations

from typing import Iterator

from ..exceptions import ConfigurationError


class SlotClock:
    """Discrete time over a horizon of ``T`` slots.

    Args:
        horizon_slots: the monitoring period ``T``.
        slot_length_ms: duration of one slot (paper: 50 ms).
    """

    def __init__(self, horizon_slots: int,
                 slot_length_ms: float = 50.0) -> None:
        if horizon_slots < 1:
            raise ConfigurationError(
                f"horizon must be >= 1 slot, got {horizon_slots}")
        if slot_length_ms <= 0:
            raise ConfigurationError(
                f"slot length must be positive, got {slot_length_ms}")
        self.horizon_slots = int(horizon_slots)
        self.slot_length_ms = float(slot_length_ms)
        self._current = 0

    @property
    def current_slot(self) -> int:
        """The slot currently being simulated."""
        return self._current

    @property
    def slot_length_s(self) -> float:
        """Slot length in seconds."""
        return self.slot_length_ms / 1000.0

    def ms_of(self, num_slots: int) -> float:
        """Milliseconds spanned by `num_slots` slots."""
        if num_slots < 0:
            raise ConfigurationError(
                f"num_slots must be >= 0, got {num_slots}")
        return num_slots * self.slot_length_ms

    def waiting_ms(self, arrival_slot: int, start_slot: int) -> float:
        """The waiting time ``(b_j - a_j)`` in milliseconds.

        Raises:
            ConfigurationError: if the request starts before arriving.
        """
        if start_slot < arrival_slot:
            raise ConfigurationError(
                f"start slot {start_slot} precedes arrival {arrival_slot}")
        return self.ms_of(start_slot - arrival_slot)

    def ticks(self, first_slot: int = 0) -> Iterator[int]:
        """Iterate slots ``first_slot..T-1``, tracking the current slot.

        Args:
            first_slot: where to start (0 for a fresh run; a resumed
                service continues from its checkpoint slot).
        """
        if first_slot < 0:
            raise ConfigurationError(
                f"first_slot must be >= 0, got {first_slot}")
        for t in range(first_slot, self.horizon_slots):
            self._current = t
            yield t

    def advance_to(self, slot: int) -> None:
        """Set the current slot directly (checkpoint restore)."""
        if not 0 <= slot < self.horizon_slots:
            raise ConfigurationError(
                f"slot {slot} outside horizon 0..{self.horizon_slots - 1}")
        self._current = slot

    def __repr__(self) -> str:
        return (f"SlotClock(T={self.horizon_slots}, "
                f"slot={self.slot_length_ms} ms, now={self._current})")
