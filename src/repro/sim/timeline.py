"""ASCII timeline rendering of online-engine event logs.

Turns the engine's event list into a compact per-slot narrative or a
station-occupancy strip chart - used by the examples and handy when
debugging a policy's behaviour slot by slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .events import Event, EventKind

#: One glyph per event kind for the strip chart.
_GLYPHS = {
    EventKind.ARRIVAL: "a",
    EventKind.START: "S",
    EventKind.PREEMPT_WAIT: "w",
    EventKind.COMPLETE: "C",
    EventKind.DROP: "x",
    EventKind.MIGRATE: "m",
    EventKind.REJECT_ROUNDING: "r",
    EventKind.ADMIT: "A",
    EventKind.ARM_SELECTED: "b",
    EventKind.ARM_ELIMINATED: "e",
    EventKind.STATION_DOWN: "D",
    EventKind.STATION_UP: "U",
    EventKind.ADMIT_DEFERRED: "d",
    EventKind.SHED: "!",
    EventKind.CHECKPOINT: "k",
    EventKind.RESUME: "R",
    EventKind.METRICS_SNAPSHOT: "M",
}


def narrate(events: Sequence[Event], first_slot: int = 0,
            last_slot: Optional[int] = None,
            max_lines: int = 200) -> str:
    """A per-event textual narrative of a slot window.

    Args:
        events: the engine's event log.
        first_slot: first slot to include.
        last_slot: last slot to include (None = everything).
        max_lines: truncate long narratives (an ellipsis line notes
            how many events were dropped).
    """
    if first_slot < 0:
        raise ConfigurationError(
            f"first_slot must be >= 0, got {first_slot}")
    window = [e for e in events
              if e.slot >= first_slot
              and (last_slot is None or e.slot <= last_slot)]
    lines = [str(event) for event in window[:max_lines]]
    if len(window) > max_lines:
        lines.append(f"... ({len(window) - max_lines} more events)")
    return "\n".join(lines)


def activity_per_slot(events: Sequence[Event],
                      horizon_slots: int) -> Dict[str, List[int]]:
    """Per-slot counts of each event kind.

    Returns:
        kind name -> list of counts indexed by slot.
    """
    if horizon_slots < 1:
        raise ConfigurationError(
            f"horizon must be >= 1, got {horizon_slots}")
    counts = {kind.value: [0] * horizon_slots for kind in EventKind}
    for event in events:
        if 0 <= event.slot < horizon_slots:
            counts[event.kind.value][event.slot] += 1
    return counts


def strip_chart(events: Sequence[Event], horizon_slots: int,
                width: int = 60) -> str:
    """A fixed-width strip chart: dominant event glyph per time bucket.

    Buckets the horizon into `width` columns; each column shows the
    glyph of the most frequent event kind in its bucket ('.' when the
    bucket is quiet).  A legend line follows.
    """
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    counts = activity_per_slot(events, horizon_slots)
    columns = []
    for col in range(min(width, horizon_slots)):
        lo = col * horizon_slots // min(width, horizon_slots)
        hi = ((col + 1) * horizon_slots // min(width, horizon_slots))
        best_kind, best_count = None, 0
        for kind in EventKind:
            total = sum(counts[kind.value][lo:max(hi, lo + 1)])
            if total > best_count:
                best_kind, best_count = kind, total
        columns.append(_GLYPHS[best_kind] if best_kind else ".")
    legend = " ".join(f"{glyph}={kind.value}"
                      for kind, glyph in _GLYPHS.items())
    return "".join(columns) + "\n" + legend


def summarize_events(events: Sequence[Event]) -> Dict[str, int]:
    """Total count per event kind (all kinds present, zero-filled)."""
    totals = {kind.value: 0 for kind in EventKind}
    for event in events:
        totals[event.kind.value] += 1
    return totals
