"""The slotted, preemptive online engine (dynamic reward maximization).

Section V's setting: requests arrive over a monitoring period of ``T``
time slots, wait in a queue (the ``b_j - a_j`` term of Eq. (2)), and -
once started - stream work through their assigned station.  Stations
serve their active requests **round-robin**: each active request
receives ``min(demand, C(bs_i) / n_active)`` MHz per slot, so admitting
too many requests at once slows everyone down (the over-congestion that
the ``C^th`` threshold of Algorithm 3 exists to prevent).

Latency and reward semantics follow Section III-D: the experienced
latency ``D_j`` is the *responsiveness* of the request -
``waiting (b_j - a_j) + round-trip transfer + pipeline processing``
where the processing term is stretched by the congestion slowdown
``demand / received share >= 1`` of the request's first served slot.
``D_j`` is therefore known as soon as the request starts, and the
reward is earned iff ``D_j <= D_hat_j`` (Eq. 1) - an over-congested
station (everyone's RR share collapsing) misses deadlines and earns
nothing, which is exactly the failure mode the ``C^th`` threshold of
Algorithm 3 exists to prevent.  The stream then keeps occupying its
share until its volume (realized rate x stream duration) has been
processed; completion frees the capacity.

Policies (DynamicRR and the online baselines) only decide *which*
pending requests start *where* each slot; all physics lives here so
every algorithm is measured identically.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..core.assignment import OffloadDecision, ScheduleResult
from ..core.instance import ProblemInstance
from ..exceptions import ConfigurationError, SchedulingError
from ..requests.request import ARRequest
from ..rng import RngLike, ensure_rng
from ..telemetry import get_tracer
from ..telemetry.audit import get_journal
from ..telemetry.metrics import get_metrics
from .clock import SlotClock
from .events import Event, EventKind


#: Pseudo station id directing a request to the remote cloud.  The
#: cloud has unbounded capacity but its round trip exceeds the AR
#: deadline, so cloud-served requests are admitted with high latency
#: and zero reward (the HeuKKT baseline's spillover path).
CLOUD_STATION = -1

#: Experienced latency of the remote-cloud path (ms).
CLOUD_LATENCY_MS = 320.0


@dataclass(frozen=True)
class SlotOutcome:
    """What one engine slot did (the :meth:`OnlineEngine.step` result).

    The streaming service consumes these instead of the end-of-run
    :class:`~repro.core.assignment.ScheduleResult`, so its metrics stay
    flat in memory no matter how long the run is.

    Attributes:
        slot: the time slot that was executed.
        num_arrivals: requests admitted into the pending queue.
        num_dropped: pending requests dropped as deadline-hopeless.
        num_started: requests started (placed) this slot.
        num_completed: streams that finished their volume this slot.
        slot_reward: reward settled by this slot's starts.
        pending_after: queue depth after the slot.
        active_after: running streams after the slot.
    """

    slot: int
    num_arrivals: int
    num_dropped: int
    num_started: int
    num_completed: int
    slot_reward: float
    pending_after: int
    active_after: int


@dataclass(frozen=True)
class Placement:
    """A policy's decision to start one pending request at a station.

    ``station_id`` may be :data:`CLOUD_STATION` to serve the request
    from the remote cloud.
    """

    request_id: int
    station_id: int


class OnlinePolicy(Protocol):
    """What the engine needs from an online algorithm."""

    name: str

    def begin(self, engine: "OnlineEngine") -> None:
        """Called once before the first slot."""

    def schedule(self, slot: int,
                 pending: Sequence[ARRequest]) -> List[Placement]:
        """Choose which pending requests start this slot, and where."""

    def observe(self, slot: int, slot_reward: float) -> None:
        """Feedback after the slot: reward settled in it (rewards
        settle at start time - see the module docstring)."""


@dataclass
class _Active:
    """Engine-internal state of one running request."""

    request: ARRequest
    station_id: int
    demand_mhz: float
    remaining_mb: float
    start_slot: int
    first_share_mhz: Optional[float] = None
    reward: float = 0.0
    latency_ms: Optional[float] = None

    def slowdown(self) -> float:
        """Congestion stretch of the first served slot."""
        if self.first_share_mhz is None:
            return 1.0
        if self.first_share_mhz <= 0:
            return float("inf")
        return max(1.0, self.demand_mhz / self.first_share_mhz)


class OnlineEngine:
    """Runs one policy over one arrival sequence.

    Args:
        instance: the problem instance.
        requests: the workload, with arrival slots inside the horizon.
        horizon_slots: monitoring period ``T``.
        slot_length_ms: slot duration.
        rng: randomness for rate realization.
        outages: optional failure injection - station id ->
            ``(first_down_slot, last_down_slot)`` during which the
            station serves nothing (its shares are 0 and its effective
            capacity is 0 in every engine view).  Models the "network
            uncertainties" the paper motivates beyond demand
            uncertainty; policies see the outage through
            :meth:`free_mhz` / :meth:`station_capacity_mhz` and must
            route around it.
        streaming: long-lived service mode.  The engine keeps no
            per-request history (no in-memory event list, no
            end-of-run :class:`OffloadDecision` table), so memory
            stays flat over an unbounded slot stream; callers consume
            the per-slot :class:`SlotOutcome` returned by :meth:`step`
            instead of :meth:`run`.  The decision physics are
            identical.
    """

    def __init__(self, instance: ProblemInstance,
                 requests: Sequence[ARRequest],
                 horizon_slots: int,
                 slot_length_ms: float = 50.0,
                 rng: RngLike = None,
                 outages: Optional[Dict[int, Tuple[int, int]]] = None,
                 streaming: bool = False) -> None:
        self.instance = instance
        self.clock = SlotClock(horizon_slots, slot_length_ms)
        self._rng = ensure_rng(rng)
        self._outages: Dict[int, Tuple[int, int]] = dict(outages or {})
        for sid, (start, end) in self._outages.items():
            if sid not in set(instance.network.station_ids):
                raise ConfigurationError(
                    f"outage names unknown station {sid}")
            if start > end or start < 0:
                raise ConfigurationError(
                    f"invalid outage window {start}..{end} for "
                    f"station {sid}")
        self._requests = list(requests)
        self._pending: List[ARRequest] = []
        self._active: Dict[int, _Active] = {}
        self._decided: Dict[int, OffloadDecision] = {}
        self.streaming = bool(streaming)
        self.events: List[Event] = []
        self._min_delay_cache: Dict[int, float] = {}
        arrivals: Dict[int, List[ARRequest]] = {}
        for request in self._requests:
            arrivals.setdefault(request.arrival_slot, []).append(request)
        self._arrivals = arrivals

    # ------------------------------------------------------------------
    # Views for policies
    # ------------------------------------------------------------------
    def active_count(self, station_id: int) -> int:
        """Active requests currently served by a station."""
        return sum(1 for a in self._active.values()
                   if a.station_id == station_id)

    def active_demand_mhz(self, station_id: int) -> float:
        """Sum of active demands at a station."""
        return float(sum(a.demand_mhz for a in self._active.values()
                         if a.station_id == station_id))

    def is_down(self, station_id: int,
                slot: Optional[int] = None) -> bool:
        """Whether a station is inside an injected outage window."""
        window = self._outages.get(station_id)
        if window is None:
            return False
        t = self.clock.current_slot if slot is None else slot
        return window[0] <= t <= window[1]

    def station_capacity_mhz(self, station_id: int) -> float:
        """Effective capacity: 0 during an injected outage."""
        if self.is_down(station_id):
            return 0.0
        return self.instance.network.station(station_id).capacity_mhz

    def free_mhz(self, station_id: int) -> float:
        """Effective capacity minus active demand (floored at 0)."""
        return max(0.0, self.station_capacity_mhz(station_id)
                   - self.active_demand_mhz(station_id))

    def total_free_mhz(self) -> float:
        """Network-wide free capacity."""
        return float(sum(self.free_mhz(sid)
                         for sid in self.instance.network.station_ids))

    def pending_count(self) -> int:
        """Requests waiting in the pending queue."""
        return len(self._pending)

    def pending_ids(self) -> Tuple[int, ...]:
        """Ids of pending requests, in queue order."""
        return tuple(r.request_id for r in self._pending)

    def active_total(self) -> int:
        """Running streams across every station."""
        return len(self._active)

    def waiting_ms(self, request: ARRequest, slot: int) -> float:
        """Waiting time if the request started at `slot`."""
        return self.clock.waiting_ms(request.arrival_slot, slot)

    def min_placement_delay_ms(self, request: ARRequest) -> float:
        """Best-case transfer+processing delay over all stations."""
        cached = self._min_delay_cache.get(request.request_id)
        if cached is None:
            cached = float(
                self.instance.latency.placement_delays(request).min())
            self._min_delay_cache[request.request_id] = cached
        return cached

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, policy: OnlinePolicy) -> ScheduleResult:
        """Simulate the whole horizon under one policy.

        Returns:
            A :class:`ScheduleResult` covering every request that
            arrived within the horizon.
        """
        if self.streaming:
            raise ConfigurationError(
                "run() needs the per-request decision table; a "
                "streaming engine is driven slot by slot via step()")
        start_time = time.perf_counter()  # repro: noqa DET001 -- advisory runtime metric
        self.announce_stations()
        policy.begin(self)
        for t in self.clock.ticks():
            self.step(policy, t, self._arrivals.get(t, ()))
        self._finalize()
        result = ScheduleResult(algorithm=policy.name)
        for request in self._requests:
            if request.arrival_slot < self.clock.horizon_slots:
                result.add(self._decided[request.request_id])
        result.runtime_s = time.perf_counter() - start_time  # repro: noqa DET001 -- advisory runtime metric
        return result

    def announce_stations(self) -> None:
        """Journal the initial STATION_UP capacity announcements."""
        journal = get_journal()
        get_metrics().inc("station_transitions_total",
                          len(self.instance.network.station_ids),
                          direction="up")
        if journal.enabled:
            for sid in self.instance.network.station_ids:
                journal.record(Event(
                    slot=0, kind=EventKind.STATION_UP, station_id=sid,
                    value=self.instance.network.station(sid).capacity_mhz))

    def step(self, policy: OnlinePolicy, t: int,
             arrivals: Sequence[ARRequest] = ()) -> SlotOutcome:
        """Execute one time slot of the admission loop.

        The slot phases are exactly those of :meth:`run` (which is
        implemented on top of this method): admit arrivals, drop
        deadline-hopeless pending requests, let the policy place, apply
        placements, progress streams, settle this slot's starts, free
        completed streams, and feed the settled reward back to the
        policy.  The streaming service calls this directly with
        externally batched arrivals.

        Args:
            policy: the online policy (must have seen :meth:`begin`).
            t: the slot to execute (callers drive slots in order).
            arrivals: requests entering the pending queue this slot.

        Returns:
            The slot's :class:`SlotOutcome`.
        """
        tracer = get_tracer()
        journal = get_journal()
        if journal.enabled:
            self._journal_outage_transitions(t, journal)
        with tracer.span("slot_admission", policy=policy.name):
            self._admit_arrivals(t, arrivals)
            dropped = self._drop_hopeless(t)
            placements = policy.schedule(t, tuple(self._pending))
            started = self._apply_placements(t, placements)
            self._progress(t)
            slot_reward = self._settle_started(t, started)
            completed = self._complete(t)
            policy.observe(t, slot_reward)
        if started:
            tracer.count("requests_started", len(started))
        metrics = get_metrics()
        if metrics.enabled:
            if arrivals:
                metrics.inc("engine_arrivals_total", len(arrivals))
            if dropped:
                metrics.inc("engine_drops_total", dropped)
            if started:
                metrics.inc("engine_starts_total", len(started))
            if completed:
                metrics.inc("engine_completions_total", completed)
            metrics.inc("engine_reward_total", slot_reward)
            metrics.set_gauge("engine_pending", float(len(self._pending)))
            metrics.set_gauge("engine_active", float(len(self._active)))
        return SlotOutcome(
            slot=t,
            num_arrivals=len(arrivals),
            num_dropped=dropped,
            num_started=len(started),
            num_completed=completed,
            slot_reward=slot_reward,
            pending_after=len(self._pending),
            active_after=len(self._active),
        )

    # ------------------------------------------------------------------
    # Slot phases
    # ------------------------------------------------------------------
    def _journal_outage_transitions(self, t: int, journal) -> None:
        """Announce injected outage edges (down at the window start,
        back up - with capacity - the slot after it ends)."""
        for sid in self.instance.network.station_ids:
            window = self._outages.get(sid)
            if window is None:
                continue
            if t == window[0]:
                get_metrics().inc("station_transitions_total",
                                  direction="down")
                journal.record(Event(slot=t,
                                     kind=EventKind.STATION_DOWN,
                                     station_id=sid))
            elif t == window[1] + 1:
                get_metrics().inc("station_transitions_total",
                                  direction="up")
                journal.record(Event(
                    slot=t, kind=EventKind.STATION_UP, station_id=sid,
                    value=self.instance.network.station(sid).capacity_mhz))

    def _admit_arrivals(self, t: int,
                        arrivals: Sequence[ARRequest]) -> None:
        if arrivals:
            get_tracer().count("arrivals", len(arrivals))
        journal = get_journal()
        for request in arrivals:
            self._pending.append(request)
            event = Event(slot=t, kind=EventKind.ARRIVAL,
                          request_id=request.request_id)
            if not self.streaming:
                self.events.append(event)
            if journal.enabled:
                journal.record(event)

    def _drop_hopeless(self, t: int) -> int:
        """Drop pending requests that can no longer meet their deadline.

        Returns:
            The number of requests dropped.
        """
        survivors: List[ARRequest] = []
        dropped = 0
        journal = get_journal()
        for request in self._pending:
            best_case = (self.waiting_ms(request, t)
                         + self.min_placement_delay_ms(request))
            if best_case > request.deadline_ms + 1e-9:
                if not self.streaming:
                    self._decided[request.request_id] = OffloadDecision(
                        request_id=request.request_id, admitted=False,
                        waiting_ms=self.waiting_ms(request, t))
                    self.events.append(Event(
                        slot=t, kind=EventKind.DROP,
                        request_id=request.request_id))
                if journal.enabled:
                    journal.record(Event(slot=t, kind=EventKind.DROP,
                                         request_id=request.request_id))
                self._min_delay_cache.pop(request.request_id, None)
                dropped += 1
            else:
                survivors.append(request)
        if dropped:
            get_tracer().count("deadline_drops", dropped)
        self._pending = survivors
        return dropped

    def _apply_placements(self, t: int,
                          placements: Sequence[Placement]
                          ) -> List["_Active"]:
        started: List[_Active] = []
        pending_by_id = {r.request_id: r for r in self._pending}
        for placement in placements:
            request = pending_by_id.get(placement.request_id)
            if request is None:
                raise SchedulingError(
                    f"policy placed request {placement.request_id} which "
                    f"is not pending at slot {t}")
            if placement.station_id == CLOUD_STATION:
                self._serve_from_cloud(t, request)
                del pending_by_id[request.request_id]
                continue
            if placement.station_id not in set(
                    self.instance.network.station_ids):
                raise SchedulingError(
                    f"policy placed request {placement.request_id} on "
                    f"unknown station {placement.station_id}")
            rate, _reward = request.realize(self._rng)
            demand = request.demand_of_rate_mhz(rate)
            active = _Active(
                request=request,
                station_id=placement.station_id,
                demand_mhz=demand,
                remaining_mb=request.total_work_mb(self.clock.slot_length_ms),
                start_slot=t,
            )
            self._active[request.request_id] = active
            started.append(active)
            del pending_by_id[request.request_id]
            self._min_delay_cache.pop(request.request_id, None)
            if not self.streaming:
                self.events.append(Event(slot=t, kind=EventKind.START,
                                         request_id=request.request_id,
                                         station_id=placement.station_id))
        self._pending = [r for r in self._pending
                         if r.request_id in pending_by_id]
        return started

    def _serve_from_cloud(self, t: int, request: ARRequest) -> None:
        """Settle a cloud placement immediately.

        The cloud path's latency exceeds the AR deadline, so the
        request is admitted with :data:`CLOUD_LATENCY_MS` experienced
        latency and earns no reward.
        """
        get_tracer().count("cloud_served")
        get_metrics().inc("engine_cloud_served_total")
        request.realize(self._rng)
        waiting = self.clock.waiting_ms(request.arrival_slot, t)
        latency = waiting + CLOUD_LATENCY_MS
        met = latency <= request.deadline_ms + 1e-9
        reward = request.realized_reward if met else 0.0
        self._min_delay_cache.pop(request.request_id, None)
        if not self.streaming:
            self._decided[request.request_id] = OffloadDecision(
                request_id=request.request_id,
                admitted=True,
                primary_station=None,
                realized_rate_mbps=request.realized_rate_mbps,
                reward=reward,
                latency_ms=latency,
                waiting_ms=waiting,
                deadline_met=met,
            )
            self.events.append(Event(slot=t, kind=EventKind.START,
                                     request_id=request.request_id,
                                     station_id=CLOUD_STATION))
        journal = get_journal()
        if journal.enabled:
            journal.record(Event(slot=t, kind=EventKind.START,
                                 request_id=request.request_id,
                                 station_id=CLOUD_STATION,
                                 reward=reward, latency_ms=latency))

    def _progress(self, t: int) -> None:
        counts: Dict[int, int] = {}
        for active in self._active.values():
            counts[active.station_id] = counts.get(active.station_id, 0) + 1
        for active in self._active.values():
            capacity = self.station_capacity_mhz(active.station_id)
            fair = capacity / counts[active.station_id]
            share = min(active.demand_mhz, fair)
            if active.first_share_mhz is None:
                active.first_share_mhz = share
            processed_mb = (share / self.instance.c_unit
                            * self.clock.slot_length_s)
            active.remaining_mb -= processed_mb

    def _settle_started(self, t: int, started: Sequence[_Active]) -> float:
        """Decide reward/latency for this slot's newly started requests.

        The responsiveness ``D_j`` is known after the first served slot
        (its RR share fixes the congestion slowdown); the reward is
        earned iff ``D_j`` meets the deadline.
        """
        slot_reward = 0.0
        journal = get_journal()
        for active in started:
            request = active.request
            latency = self._experienced_latency_ms(active)
            if not math.isfinite(latency):
                # Started on a dead station: no response at all.
                latency = None
            met = (latency is not None
                   and latency <= request.deadline_ms + 1e-9)
            reward = request.realized_reward if met else 0.0
            active.reward = reward
            active.latency_ms = latency
            slot_reward += reward
            if not self.streaming:
                self._decided[request.request_id] = OffloadDecision(
                    request_id=request.request_id,
                    admitted=True,
                    primary_station=active.station_id,
                    realized_rate_mbps=request.realized_rate_mbps,
                    reward=reward,
                    latency_ms=latency,
                    waiting_ms=self.clock.waiting_ms(
                        request.arrival_slot, active.start_slot),
                    deadline_met=met,
                )
            if journal.enabled:
                journal.record(Event(
                    slot=t, kind=EventKind.START,
                    request_id=request.request_id,
                    station_id=active.station_id, reward=reward,
                    latency_ms=latency,
                    share_mhz=active.first_share_mhz))
        return slot_reward

    def _complete(self, t: int) -> int:
        """Release the capacity of streams that finished their volume.

        Returns:
            The number of streams completed.
        """
        done = [a for a in self._active.values() if a.remaining_mb <= 1e-9]
        if done:
            get_tracer().count("completions", len(done))
        journal = get_journal()
        for active in done:
            event = Event(
                slot=t, kind=EventKind.COMPLETE,
                request_id=active.request.request_id,
                station_id=active.station_id, reward=active.reward,
                latency_ms=active.latency_ms)
            if not self.streaming:
                self.events.append(event)
            if journal.enabled:
                journal.record(event)
            del self._active[active.request.request_id]
        return len(done)

    def _experienced_latency_ms(self, active: _Active) -> float:
        request = active.request
        waiting = self.clock.waiting_ms(request.arrival_slot,
                                        active.start_slot)
        transfer = self.instance.latency.transfer_delay_ms(
            request, active.station_id)
        processing = self.instance.latency.proc_delay_ms(
            request, active.station_id)
        return waiting + transfer + processing * active.slowdown()

    def finalize(self) -> None:
        """Settle leftovers at shutdown (the streaming service's hook).

        Journals a DROP for every request still pending or running so
        the decision stream closes every lifecycle (the
        deferred_resolution invariant needs deferred requests to end in
        a terminal event even when the service stops early).
        """
        self._finalize()

    def _finalize(self) -> None:
        """Settle everything still pending at the horizon.

        Requests still *running* at the horizon already carry their
        start-time decision; only never-started requests remain open.
        """
        t = self.clock.horizon_slots - 1
        journal = get_journal()
        for request in self._pending:
            if not self.streaming:
                self._decided[request.request_id] = OffloadDecision(
                    request_id=request.request_id, admitted=False,
                    waiting_ms=self.waiting_ms(request, t))
            if journal.enabled:
                journal.record(Event(slot=t, kind=EventKind.DROP,
                                     request_id=request.request_id))
        for active in self._active.values():
            if active.latency_ms is None:
                # Started on a station that died under it: the stream
                # never responded.  The DROP carries the station that
                # last hosted the request.
                event = Event(slot=t, kind=EventKind.DROP,
                              request_id=active.request.request_id,
                              station_id=active.station_id)
                if not self.streaming:
                    self.events.append(event)
                if journal.enabled:
                    journal.record(event)
        self._pending = []
        self._active = {}

    # ------------------------------------------------------------------
    # Checkpoint/restore (streaming service)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, object]:
        """Snapshot the engine's mutable state (deep-copied).

        Everything a resumed engine needs to reproduce the remaining
        slots byte-for-byte: the pending queue, the active streams
        (with their realized rates and remaining volumes), the
        realization RNG state, and the current slot.  The static parts
        (instance, outages, clock geometry) are reconstructed from
        configuration by the caller.
        """
        import copy

        return {
            "slot": self.clock.current_slot,
            "rng_state": self._rng.bit_generator.state,
            "pending": copy.deepcopy(self._pending),
            "active": copy.deepcopy(self._active),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Install a snapshot produced by :meth:`export_state`."""
        self._rng.bit_generator.state = state["rng_state"]
        self._pending = list(state["pending"])  # type: ignore[arg-type]
        self._active = dict(state["active"])  # type: ignore[arg-type]
        self._min_delay_cache = {}
        self.clock.advance_to(int(state["slot"]))  # type: ignore[arg-type]
