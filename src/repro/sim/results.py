"""Run/sweep result containers for experiments.

A figure in the paper is a set of series: for each algorithm, a metric
as a function of a swept parameter (number of requests, number of base
stations, maximum data rate).  :class:`RunRecord` is one (algorithm,
x, seed) measurement; :class:`SweepResult` aggregates records into the
mean series the figures plot (with standard deviations for error bars).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RunRecord:
    """One measured run.

    Attributes:
        algorithm: algorithm display name.
        x: value of the swept parameter.
        seed: replication seed.
        metrics: metric name -> value (e.g. ``total_reward``).
        trace: telemetry events of the run (see
            :mod:`repro.telemetry`) when it executed with tracing
            enabled; None otherwise.  Excluded from determinism
            comparisons except in canonical form.
        journal: the decision audit journal of the run (see
            :mod:`repro.telemetry.audit`) when it executed with
            journaling enabled; None otherwise.  Journals are
            wall-clock-free, so they participate in determinism
            comparisons as-is.
        profile: serialized
            :class:`~repro.telemetry.profiling.ProfileDigest` of the
            run when it executed with profiling enabled; None
            otherwise.  The digest's calls/counters half is
            deterministic; its ``*_s`` fields are wall clock.
        profile_stats: merged picklable cProfile statistics (see
            :func:`~repro.telemetry.profiling.capture_stats`) when
            profiled; None otherwise.
        profile_mem: top allocation sites (see
            :func:`~repro.telemetry.profiling.capture_memory_top`)
            when the run executed with memory profiling; None
            otherwise.
    """

    algorithm: str
    x: float
    seed: int
    metrics: Mapping[str, float]
    trace: Optional[Tuple[Dict[str, Any], ...]] = None
    journal: Optional[Tuple[Dict[str, Any], ...]] = None
    profile: Optional[Dict[str, Any]] = None
    profile_stats: Optional[Dict[str, Any]] = None
    profile_mem: Optional[Tuple[Dict[str, Any], ...]] = None


class SweepResult:
    """All records of one experiment sweep.

    Args:
        x_label: name of the swept parameter (axis label).
    """

    def __init__(self, x_label: str) -> None:
        self.x_label = x_label
        self._records: List[RunRecord] = []

    def add(self, record: RunRecord) -> None:
        """Append one measurement."""
        self._records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        """Append many measurements."""
        for record in records:
            self.add(record)

    @property
    def records(self) -> Tuple[RunRecord, ...]:
        """All raw records."""
        return tuple(self._records)

    def algorithms(self) -> List[str]:
        """Algorithms present, in first-seen order."""
        seen: List[str] = []
        for record in self._records:
            if record.algorithm not in seen:
                seen.append(record.algorithm)
        return seen

    def x_values(self) -> List[float]:
        """Swept values present, ascending."""
        return sorted({record.x for record in self._records})

    def series(self, algorithm: str, metric: str
               ) -> Tuple[List[float], List[float], List[float]]:
        """Mean +/- std series of one algorithm and metric.

        The spread is the *sample* standard deviation (``ddof=1``, 0
        for a single seed), matching the t-based intervals of
        :mod:`repro.sim.stats`.  x-points where the algorithm has no
        values for the metric are skipped, so ``xs`` may be a subset
        of :meth:`x_values`.

        Returns:
            ``(xs, means, stds)`` over replication seeds.

        Raises:
            ConfigurationError: if the algorithm or metric is absent.
        """
        if algorithm not in self.algorithms():
            raise ConfigurationError(
                f"no records for algorithm {algorithm!r}")
        xs: List[float] = []
        means: List[float] = []
        stds: List[float] = []
        for x in self.x_values():
            values = [record.metrics[metric] for record in self._records
                      if record.algorithm == algorithm and record.x == x
                      and metric in record.metrics]
            if not values:
                continue
            xs.append(x)
            means.append(float(np.mean(values)))
            stds.append(float(np.std(values, ddof=1))
                        if len(values) > 1 else 0.0)
        if not xs:
            raise ConfigurationError(
                f"no values of metric {metric!r} for {algorithm!r}")
        return xs, means, stds

    def table(self, metric: str) -> Dict[str, List[float]]:
        """Metric means per algorithm, aligned to :meth:`x_values`.

        Every row has one entry per value of :meth:`x_values`;
        x-points where an algorithm has no values for the metric are
        padded with NaN so rows stay aligned across algorithms.
        """
        all_xs = self.x_values()
        out: Dict[str, List[float]] = {}
        for algorithm in self.algorithms():
            xs, means, _ = self.series(algorithm, metric)
            by_x = dict(zip(xs, means))
            out[algorithm] = [by_x.get(x, float("nan"))
                              for x in all_xs]
        return out

    def winner_at(self, x: float, metric: str,
                  higher_is_better: bool = True) -> str:
        """Algorithm with the best mean metric at one swept value."""
        best_name, best_val = None, None
        for algorithm in self.algorithms():
            xs, means, _ = self.series(algorithm, metric)
            if x not in xs:
                continue
            val = means[xs.index(x)]
            better = (best_val is None
                      or (higher_is_better and val > best_val)
                      or (not higher_is_better and val < best_val))
            if better:
                best_name, best_val = algorithm, val
        if best_name is None:
            raise ConfigurationError(
                f"no records at {self.x_label}={x}")
        return best_name


def aggregate_records(records: Sequence[RunRecord],
                      x_label: str) -> SweepResult:
    """Bundle raw records into a :class:`SweepResult`."""
    sweep = SweepResult(x_label)
    sweep.extend(records)
    return sweep
