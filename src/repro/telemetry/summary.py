"""Trace aggregation and the per-phase breakdown table.

Answers "where did the milliseconds go": spans are aggregated by name
(count, total / mean / p95 wall time, exclusive *self* time), counters
and value series are totalled, and the result renders as a plain-text
or Markdown table sorted by total time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

#: Annotation fields that distinguish runs inside a merged trace (see
#: :func:`repro.telemetry.export.collect_sweep_trace`); parent links
#: are only meaningful within one run.
RUN_KEY_FIELDS = ("figure", "run")


def percentile_linear(data, q: float) -> float:
    """``np.percentile`` with the interpolation method pinned.

    NumPy 1.22 renamed ``interpolation=`` to ``method=`` and added new
    estimators; pinning ``"linear"`` explicitly keeps p95 tables
    byte-stable across NumPy versions (and documents which estimator
    the summary uses).  Falls back to the pre-1.22 spelling.
    """
    try:
        return float(np.percentile(data, q, method="linear"))
    except TypeError:  # numpy < 1.22
        return float(np.percentile(data, q, interpolation="linear"))


@dataclass
class SpanStats:
    """Aggregate statistics of one span name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    durations: List[float] = field(default_factory=list)

    @property
    def mean_s(self) -> float:
        """Mean wall time per call (0 when never opened)."""
        if not self.durations:
            return 0.0
        return sum(self.durations) / len(self.durations)

    @property
    def min_s(self) -> float:
        """Fastest single call (0 when never opened)."""
        return min(self.durations) if self.durations else 0.0

    @property
    def max_s(self) -> float:
        """Slowest single call (0 when never opened)."""
        return max(self.durations) if self.durations else 0.0

    @property
    def p95_s(self) -> float:
        """95th-percentile wall time per span (0 when never opened).

        Linear interpolation, pinned explicitly so the estimate cannot
        drift with the NumPy default (see :func:`percentile_linear`).
        """
        if not self.durations:
            return 0.0
        return percentile_linear(self.durations, 95)


@dataclass
class TraceSummary:
    """The aggregated view of one (possibly merged) trace."""

    spans: Dict[str, SpanStats]
    counters: Dict[str, float]
    values: Dict[str, List[float]]
    #: Wall time of top-level (parentless) spans - the denominator of
    #: the attribution percentages.
    top_level_s: float

    def attributed_fraction(self, total_s: Optional[float] = None
                            ) -> float:
        """Fraction of ``total_s`` covered by top-level spans.

        With no ``total_s`` the fraction is 1.0 whenever any top-level
        span exists (the trace covers itself).
        """
        if total_s is None or total_s <= 0:
            return 1.0 if self.top_level_s > 0 else 0.0
        return min(1.0, self.top_level_s / total_s)


def _run_key(event: Dict[str, Any]) -> Tuple[Any, ...]:
    return tuple(event.get(key) for key in RUN_KEY_FIELDS)


def _has_same_name_ancestor(
        event: Dict[str, Any],
        by_seq: Dict[Tuple[Any, ...], Dict[str, Any]]) -> bool:
    """True when a span of the same name encloses ``event``."""
    name = event["name"]
    run = _run_key(event)
    parent = event.get("parent")
    hops = 0
    while parent is not None and hops < len(by_seq) + 1:
        ancestor = by_seq.get(run + (parent,))
        if ancestor is None:
            return False
        if ancestor["name"] == name:
            return True
        parent = ancestor.get("parent")
        hops += 1
    return False


def summarize_events(events: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Aggregate a trace event stream.

    Span self time subtracts each span's *direct* children from its
    duration, resolving parent links per run (merged traces reuse
    ``seq`` across runs).  Re-entrant spans - a name nested inside
    itself, e.g. a recursive ``lp_solve`` - accumulate ``total_s``
    only at their outermost occurrence (the outer duration already
    contains the inner one), so a name's total and its share of the
    run can never exceed wall time; ``count`` and the per-call
    duration distribution (mean / p95 / min / max) still see every
    call.  Counter and value events with the same name are totalled /
    concatenated across runs.
    """
    spans: Dict[str, SpanStats] = {}
    counters: Dict[str, float] = {}
    values: Dict[str, List[float]] = {}
    span_events: List[Dict[str, Any]] = []
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            span_events.append(event)
        elif kind == "counter":
            name = event["name"]
            counters[name] = counters.get(name, 0.0) + event["value"]
        elif kind == "value":
            values.setdefault(event["name"],
                              []).extend(event["values"])

    child_s: Dict[Tuple[Any, ...], float] = {}
    by_seq: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
    for event in span_events:
        by_seq[_run_key(event) + (event["seq"],)] = event
        if event.get("parent") is not None:
            key = _run_key(event) + (event["parent"],)
            child_s[key] = (child_s.get(key, 0.0)
                            + event.get("duration_s", 0.0))

    top_level_s = 0.0
    for event in span_events:
        stats = spans.setdefault(event["name"], SpanStats(event["name"]))
        duration = event.get("duration_s", 0.0)
        stats.count += 1
        if not _has_same_name_ancestor(event, by_seq):
            stats.total_s += duration
        stats.durations.append(duration)
        key = _run_key(event) + (event["seq"],)
        stats.self_s += max(0.0, duration - child_s.get(key, 0.0))
        if event.get("parent") is None:
            top_level_s += duration
    return TraceSummary(spans=spans, counters=counters, values=values,
                        top_level_s=top_level_s)


def _format_row(cells: List[str], widths: List[int],
                markdown: bool) -> str:
    if markdown:
        return "| " + " | ".join(cells) + " |"
    return "  ".join(cell.rjust(width) if i else cell.ljust(width)
                     for i, (cell, width) in enumerate(zip(cells, widths)))


def render_summary(events: Iterable[Dict[str, Any]],
                   total_s: Optional[float] = None,
                   markdown: bool = False) -> str:
    """Render the per-phase breakdown of a trace.

    Args:
        events: a trace event stream (merged sweeps welcome).
        total_s: run wall time the percentages are taken against; the
            top-level span total when None.
        markdown: emit a Markdown table instead of aligned text.

    Returns:
        A table of spans (call count, total / mean / p95 / min / max /
        self wall time, share of total) sorted by total time, followed
        by counters and value series when present.
    """
    summary = summarize_events(events)
    denominator = total_s if total_s and total_s > 0 \
        else summary.top_level_s
    header = ["span", "count", "total_ms", "mean_ms", "p95_ms",
              "min_ms", "max_ms", "self_ms", "%"]
    rows: List[List[str]] = []
    ordered = sorted(summary.spans.values(),
                     key=lambda s: (-s.total_s, s.name))
    for stats in ordered:
        share = (100.0 * stats.total_s / denominator
                 if denominator > 0 else 0.0)
        rows.append([stats.name, str(stats.count),
                     f"{stats.total_s * 1e3:.2f}",
                     f"{stats.mean_s * 1e3:.3f}",
                     f"{stats.p95_s * 1e3:.3f}",
                     f"{stats.min_s * 1e3:.3f}",
                     f"{stats.max_s * 1e3:.3f}",
                     f"{stats.self_s * 1e3:.2f}",
                     f"{share:.1f}"])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]
    lines = [_format_row(header, widths, markdown)]
    if markdown:
        lines.append("|---" * len(header) + "|")
    for row in rows:
        lines.append(_format_row(row, widths, markdown))
    if not rows:
        lines.append("(no spans recorded)")

    if summary.counters:
        lines.append("")
        lines.append("counters:" if not markdown else "**Counters**")
        for name in sorted(summary.counters):
            value = summary.counters[name]
            text = f"{name} = {value:g}"
            lines.append(f"- {text}" if markdown else f"  {text}")
    if summary.values:
        lines.append("")
        lines.append("values:" if not markdown else "**Values**")
        for name in sorted(summary.values):
            data = np.asarray(summary.values[name], dtype=float)
            text = (f"{name}: n={data.size} mean={data.mean():g} "
                    f"min={data.min():g} max={data.max():g}")
            lines.append(f"- {text}" if markdown else f"  {text}")
    return "\n".join(lines)
