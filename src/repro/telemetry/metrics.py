"""Streaming service metrics: slot-indexed counters, gauges, histograms.

The tracer (:mod:`repro.telemetry.tracer`) answers "where did the
milliseconds go" for one bounded run; the decision journal
(:mod:`repro.telemetry.audit`) records *what* was decided.  Neither
helps an operator watching a **live, unbounded**
:class:`~repro.service.loop.AdmissionService`: that needs flat-memory
series that can be scraped at any instant.  This module is that
runtime:

* **counters** - monotonic totals (``registry.inc("service_shed_total")``)
  keyed by name + labels;
* **gauges** - last-write-wins instantaneous values
  (``registry.set_gauge("service_queue_depth", depth)``);
* **histograms** - :class:`StreamingHistogram`: fixed log-scale
  buckets (bounded memory at any arrival count) plus a **ring-buffer
  sliding window keyed by slot index**, never by wall clock, so the
  registry's behaviour is a pure function of the observation sequence.

**Determinism contract.**  The registry itself never reads a clock and
never draws randomness; recording is strictly passive.  Attaching a
:class:`MetricsRegistry` to a run therefore cannot perturb journals,
records, or checkpoints (the inertness property test pins this), and
two runs of the same seed produce identical *deterministic* series.
Wall-clock quantities (per-slot tick latency) may be observed into
clearly named histograms (``*_seconds``) - they are advisory, exactly
like ``runtime_s`` in the run ledger.  Wall-clock *reads* stay confined
to the exposition layer (:mod:`repro.service.http`), which is DET001
allowlisted for that reason.

The module-level *current registry* defaults to :data:`NULL_REGISTRY`,
a no-op mirroring :data:`~repro.telemetry.tracer.NULL_TRACER` and
:data:`~repro.telemetry.audit.NULL_JOURNAL`: uninstrumented runs pay
one attribute lookup and one no-op call per site.

Registry state round-trips through
:meth:`MetricsRegistry.export_state` /
:meth:`~MetricsRegistry.restore_state`, and the admission service
includes it in every :class:`~repro.service.checkpoint.ServiceCheckpoint`
- a resumed service reports **continuous** (non-resetting) series.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..exceptions import ConfigurationError

#: Label set in canonical (sorted tuple) form, as in the tracer.
LabelKey = Tuple[Tuple[str, Any], ...]

#: Quantiles reported by every histogram snapshot (percent).
SNAPSHOT_QUANTILES = (50.0, 95.0, 99.0)

#: EventKind value -> metric names incremented when that decision
#: happens.  This is the **MET001 coverage table**: the static-analysis
#: rule requires every event kind the audit monitor models to map to at
#: least one metric here, and every mapped metric name to appear at an
#: instrumentation site - so metrics coverage cannot silently rot when
#: the event vocabulary grows.  (``preempt_wait`` maps to the pending
#: gauge: a preempted request is exactly one that stays in the queue.)
EVENT_METRIC_MAP: Dict[str, Tuple[str, ...]] = {
    "arrival": ("engine_arrivals_total",),
    "start": ("engine_starts_total",),
    "preempt_wait": ("engine_pending",),
    "complete": ("engine_completions_total",),
    "drop": ("engine_drops_total",),
    "migrate": ("migrations_total",),
    "reject_rounding": ("rounding_rejects_total",),
    "admit": ("rounding_admits_total",),
    "arm_selected": ("bandit_rounds_total",),
    "arm_eliminated": ("bandit_arms_eliminated_total",),
    "station_down": ("station_transitions_total",),
    "station_up": ("station_transitions_total",),
    "admit_deferred": ("service_deferred_total",),
    "shed": ("service_shed_total",),
    "checkpoint": ("service_checkpoints_total",),
    "resume": ("service_resumes_total",),
    "metrics_snapshot": ("service_metrics_snapshots_total",),
}


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def _series_name(name: str, labels: LabelKey) -> str:
    """Canonical flat series id: ``name{k="v",...}`` (sorted keys)."""
    if not labels:
        return name
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{body}}}"


class StreamingHistogram:
    """Bounded log-scale histogram with a slot-keyed sliding window.

    Memory is fixed at construction: ``num_buckets`` lifetime bucket
    counts plus a ``window_slots``-cell ring of per-slot bucket counts.
    Observing any number of values never allocates - this is what lets
    the load generator track p50/p95/p99 over 10^6+ arrivals with flat
    RSS.

    Buckets are geometric: bucket ``i`` covers
    ``(lowest * growth**(i-1), lowest * growth**i]`` with bucket 0
    catching everything at or below ``lowest`` and the last bucket
    unbounded above.  Quantiles interpolate linearly inside the
    crossing bucket (the overflow bucket interpolates toward the
    maximum ever observed), so estimates are within one bucket's
    relative width (``growth - 1``) of the exact statistic.

    The sliding window is keyed by **slot index**, not wall-clock: a
    ring cell holds the bucket counts of one slot and is lazily
    recycled ``window_slots`` slots later.  Window statistics therefore
    replay identically between serial/parallel execution and across a
    kill/resume boundary.

    Args:
        lowest: upper bound of the first bucket (> 0).
        growth: geometric bucket growth factor (> 1).
        num_buckets: total buckets including the overflow bucket.
        window_slots: sliding-window length in slots.
    """

    __slots__ = ("lowest", "growth", "num_buckets", "window_slots",
                 "_bounds", "count", "sum", "min", "max", "_total",
                 "_ring", "_ring_slots", "_last_slot")

    def __init__(self, lowest: float = 1e-6, growth: float = 2.0 ** 0.5,
                 num_buckets: int = 48, window_slots: int = 256) -> None:
        if lowest <= 0:
            raise ConfigurationError(
                f"lowest must be > 0, got {lowest}")
        if growth <= 1.0:
            raise ConfigurationError(
                f"growth must be > 1, got {growth}")
        if num_buckets < 2:
            raise ConfigurationError(
                f"num_buckets must be >= 2, got {num_buckets}")
        if window_slots < 1:
            raise ConfigurationError(
                f"window_slots must be >= 1, got {window_slots}")
        self.lowest = float(lowest)
        self.growth = float(growth)
        self.num_buckets = int(num_buckets)
        self.window_slots = int(window_slots)
        #: Upper bounds of buckets 0..num_buckets-2 (last is +inf).
        self._bounds: List[float] = [
            self.lowest * self.growth ** i
            for i in range(self.num_buckets - 1)]
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._total = [0] * self.num_buckets
        self._ring: List[List[int]] = [
            [0] * self.num_buckets for _ in range(self.window_slots)]
        self._ring_slots: List[Optional[int]] = [None] * self.window_slots
        self._last_slot = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def bucket_index(self, value: float) -> int:
        """The bucket a value falls in."""
        return bisect.bisect_left(self._bounds, value)

    def observe(self, value: float, slot: int = 0) -> None:
        """Record one observation at a slot index."""
        value = float(value)
        index = self.bucket_index(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._total[index] += 1
        if slot > self._last_slot:
            self._last_slot = slot
        cell = slot % self.window_slots
        if self._ring_slots[cell] != slot:
            self._ring_slots[cell] = slot
            self._ring[cell] = [0] * self.num_buckets
        self._ring[cell][index] += 1

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def window_counts(self, slot: Optional[int] = None) -> List[int]:
        """Per-bucket counts over the trailing window ending at `slot`
        (default: the most recent observed slot)."""
        end = self._last_slot if slot is None else int(slot)
        low = end - self.window_slots
        counts = [0] * self.num_buckets
        for cell, cell_slot in enumerate(self._ring_slots):
            if cell_slot is not None and low < cell_slot <= end:
                row = self._ring[cell]
                for i in range(self.num_buckets):
                    counts[i] += row[i]
        return counts

    def quantile(self, q: float, window: bool = False) -> float:
        """Estimate the q-th percentile (q in [0, 100]).

        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"q must be in [0, 100], got {q}")
        counts = self.window_counts() if window else self._total
        total = sum(counts)
        if total == 0:
            return 0.0
        target = (q / 100.0) * total
        cumulative = 0.0
        for i, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            lower = self._bounds[i - 1] if i > 0 else 0.0
            if i < len(self._bounds):
                upper = self._bounds[i]
            else:
                upper = max(self.max if self.max is not None else lower,
                            lower)
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                fraction = (target - previous) / bucket_count
                fraction = min(1.0, max(0.0, fraction))
                return lower + (upper - lower) * fraction
        return self.max if self.max is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary: totals, quantiles, and sparse buckets."""
        out: Dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }
        for q in SNAPSHOT_QUANTILES:
            out[f"p{q:g}"] = self.quantile(q)
        window = self.window_counts()
        window_total = sum(window)
        window_stats: Dict[str, Any] = {"count": window_total}
        for q in SNAPSHOT_QUANTILES:
            window_stats[f"p{q:g}"] = self.quantile(q, window=True)
        out["window"] = window_stats
        buckets: List[List[float]] = []
        for i, bucket_count in enumerate(self._total):
            if bucket_count == 0:
                continue
            upper = (self._bounds[i] if i < len(self._bounds)
                     else float("inf"))
            buckets.append([upper, bucket_count])
        out["buckets"] = buckets
        return out

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Everything needed to rebuild this histogram exactly."""
        return {
            "geometry": (self.lowest, self.growth, self.num_buckets,
                         self.window_slots),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "total": list(self._total),
            "ring": [list(row) for row in self._ring],
            "ring_slots": list(self._ring_slots),
            "last_slot": self._last_slot,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "StreamingHistogram":
        """Rebuild a histogram from :meth:`export_state`."""
        lowest, growth, num_buckets, window_slots = state["geometry"]
        hist = cls(lowest=lowest, growth=growth,
                   num_buckets=num_buckets, window_slots=window_slots)
        hist.count = int(state["count"])
        hist.sum = float(state["sum"])
        hist.min = state["min"]
        hist.max = state["max"]
        hist._total = list(state["total"])
        hist._ring = [list(row) for row in state["ring"]]
        hist._ring_slots = list(state["ring_slots"])
        hist._last_slot = int(state["last_slot"])
        return hist

    def __repr__(self) -> str:
        return (f"StreamingHistogram(count={self.count}, "
                f"buckets={self.num_buckets}, "
                f"window={self.window_slots})")


class NullRegistry:
    """The zero-overhead default: every operation is a no-op."""

    enabled = False

    def advance_slot(self, slot: int) -> None:
        """Discard a slot advance."""

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Discard a counter increment."""

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Discard a gauge write."""

    def observe(self, name: str, value: float,
                slot: Optional[int] = None, **labels) -> None:
        """Discard a histogram observation."""

    def counter(self, name: str, **labels) -> float:
        """A null registry has no counters."""
        return 0.0

    def gauge(self, name: str, **labels) -> Optional[float]:
        """A null registry has no gauges."""
        return None

    def histogram(self, name: str, **labels):
        """A null registry has no histograms."""
        return None

    def snapshot(self) -> Dict[str, Any]:
        """A null registry snapshots to an empty shell."""
        return {"slot": 0, "counters": {}, "gauges": {},
                "histograms": {}}

    def to_prometheus(self) -> str:
        """A null registry exposes nothing."""
        return ""

    def export_state(self) -> None:
        """A null registry carries no state."""
        return None

    def restore_state(self, state) -> None:
        """Nothing to restore into."""

    def __repr__(self) -> str:
        return "NullRegistry()"


class MetricsRegistry:
    """Deterministic, flat-memory metric store for a live service.

    All three families are keyed by ``(name, sorted labels)`` exactly
    like the tracer's counters.  Histograms are created lazily on first
    :meth:`observe` with the registry's default geometry; call
    :meth:`register_histogram` first to customize one.

    The registry tracks a *current slot* (:meth:`advance_slot`, fed by
    the admission service's tick loop) so histogram observations made
    without an explicit slot land in the right sliding-window cell.

    Args:
        histogram_window_slots: default sliding-window length for
            lazily created histograms.
    """

    enabled = True

    def __init__(self, histogram_window_slots: int = 256) -> None:
        if histogram_window_slots < 1:
            raise ConfigurationError(
                f"histogram_window_slots must be >= 1, got "
                f"{histogram_window_slots}")
        self.histogram_window_slots = int(histogram_window_slots)
        self.slot = 0
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._gauges: Dict[Tuple[str, LabelKey], float] = {}
        self._histograms: Dict[Tuple[str, LabelKey],
                               StreamingHistogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def advance_slot(self, slot: int) -> None:
        """Move the registry's current slot forward (never back)."""
        if slot > self.slot:
            self.slot = slot

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the monotonic counter ``name`` + labels."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the instantaneous value of a gauge."""
        self._gauges[(name, _label_key(labels))] = float(value)

    def register_histogram(self, name: str, lowest: float = 1e-6,
                           growth: float = 2.0 ** 0.5,
                           num_buckets: int = 48,
                           window_slots: Optional[int] = None,
                           **labels) -> StreamingHistogram:
        """Create (or return) a histogram with explicit geometry."""
        key = (name, _label_key(labels))
        existing = self._histograms.get(key)
        if existing is not None:
            return existing
        hist = StreamingHistogram(
            lowest=lowest, growth=growth, num_buckets=num_buckets,
            window_slots=(self.histogram_window_slots
                          if window_slots is None else window_slots))
        self._histograms[key] = hist
        return hist

    def observe(self, name: str, value: float,
                slot: Optional[int] = None, **labels) -> None:
        """Record one histogram observation (current slot by default)."""
        key = (name, _label_key(labels))
        hist = self._histograms.get(key)
        if hist is None:
            hist = self.register_histogram(name, **labels)
        hist.observe(value, self.slot if slot is None else slot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0.0)

    def gauge(self, name: str, **labels) -> Optional[float]:
        """Current value of one gauge (None when never set)."""
        return self._gauges.get((name, _label_key(labels)))

    def histogram(self, name: str,
                  **labels) -> Optional[StreamingHistogram]:
        """One histogram (None when never observed)."""
        return self._histograms.get((name, _label_key(labels)))

    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as a canonical JSON-able dict.

        Series are flattened to ``name{k="v"}`` ids and emitted in
        sorted order, so two registries with the same contents snapshot
        to identical bytes.
        """
        counters = {_series_name(name, labels): self._counters[key]
                    for key in sorted(self._counters)
                    for name, labels in (key,)}
        gauges = {_series_name(name, labels): self._gauges[key]
                  for key in sorted(self._gauges)
                  for name, labels in (key,)}
        histograms = {
            _series_name(name, labels): self._histograms[key].snapshot()
            for key in sorted(self._histograms)
            for name, labels in (key,)}
        return {"slot": self.slot, "counters": counters,
                "gauges": gauges, "histograms": histograms}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the registry.

        Counters and gauges render one sample per series; histograms
        render cumulative ``_bucket{le=...}`` samples plus ``_sum`` and
        ``_count``, the standard Prometheus histogram shape.
        """
        lines: List[str] = []
        seen_types: set = set()

        def type_line(name: str, family: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {family}")

        for key in sorted(self._counters):
            name, labels = key
            type_line(name, "counter")
            lines.append(f"{_series_name(name, labels)} "
                         f"{self._counters[key]:g}")
        for key in sorted(self._gauges):
            name, labels = key
            type_line(name, "gauge")
            lines.append(f"{_series_name(name, labels)} "
                         f"{self._gauges[key]:g}")
        for key in sorted(self._histograms):
            name, labels = key
            hist = self._histograms[key]
            type_line(name, "histogram")
            cumulative = 0
            for i, bucket_count in enumerate(hist._total):
                cumulative += bucket_count
                upper = (hist._bounds[i] if i < len(hist._bounds)
                         else float("inf"))
                le = "+Inf" if upper == float("inf") else f"{upper:g}"
                bucket_labels = labels + (("le", le),)
                lines.append(
                    f"{_series_name(name + '_bucket', bucket_labels)} "
                    f"{cumulative}")
            lines.append(f"{_series_name(name + '_sum', labels)} "
                         f"{hist.sum:g}")
            lines.append(f"{_series_name(name + '_count', labels)} "
                         f"{hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Snapshot the registry for a service checkpoint."""
        return {
            "slot": self.slot,
            "histogram_window_slots": self.histogram_window_slots,
            "counters": {key: self._counters[key]
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key]
                       for key in sorted(self._gauges)},
            "histograms": {key: self._histograms[key].export_state()
                           for key in sorted(self._histograms)},
        }

    def restore_state(self, state: Optional[Dict[str, Any]]) -> None:
        """Install a snapshot produced by :meth:`export_state`.

        ``None`` (the null registry's export) leaves the registry
        untouched, so resuming an unmetered checkpoint into a metered
        service starts its series from zero instead of failing.
        """
        if state is None:
            return
        self.slot = int(state["slot"])
        self.histogram_window_slots = int(
            state.get("histogram_window_slots",
                      self.histogram_window_slots))
        self._counters = dict(state["counters"])
        self._gauges = dict(state["gauges"])
        self._histograms = {
            key: StreamingHistogram.from_state(hist_state)
            for key, hist_state in state["histograms"].items()}

    def clear(self) -> None:
        """Drop everything recorded so far (slot included)."""
        self.slot = 0
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __repr__(self) -> str:
        return (f"MetricsRegistry(slot={self.slot}, "
                f"counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")


#: The shared no-op registry (also the initial current registry).
NULL_REGISTRY = NullRegistry()

_current = NULL_REGISTRY


def get_metrics():
    """The process-local current registry (:data:`NULL_REGISTRY`
    default)."""
    return _current


def set_metrics(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as current (None restores the null one).

    Returns:
        The registry now current.
    """
    global _current
    _current = registry if registry is not None else NULL_REGISTRY
    return _current


@contextmanager
def use_metrics(registry: Optional[MetricsRegistry]) -> Iterator[Any]:
    """Temporarily install a registry; always restores the previous."""
    previous = _current
    set_metrics(registry)
    try:
        yield get_metrics()
    finally:
        set_metrics(previous)
