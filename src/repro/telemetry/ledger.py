"""Run ledger: per-run provenance manifests and their persistence.

Every sweep or benchmark run can be condensed into one
:class:`RunManifest` - a JSON-serializable record of *what* ran (name,
config hash, seed list), *where* (git revision, python/numpy versions,
platform, worker count), *how long* (per-phase wall-clock, peak RSS),
and *what came out* (headline metrics per algorithm).  Manifests append
to a JSONL **ledger** (one manifest per line, the longitudinal record
a repository accumulates across commits) and export as pretty-printed
``BENCH_<name>.json`` files (one manifest per file, the snapshot CI
diffs against a committed baseline).

The split between *deterministic* and *wall-clock* content mirrors
:mod:`repro.telemetry.export`: ``metrics`` (minus ``runtime_s``) are a
pure function of config + seeds and must match across machines up to
numeric tolerance, while ``phases``, ``peak_rss_kb``, ``created_at``,
and the environment fields legitimately vary.
:mod:`repro.telemetry.regression` encodes that split when diffing two
ledgers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform as platform_module
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..exceptions import ConfigurationError

#: Manifest schema identifier written into every exported file.
MANIFEST_SCHEMA = "repro.run-manifest/1"

#: Metric names measured from the executing machine's clock; compared
#: advisory-only by :mod:`repro.telemetry.regression`.  The service
#: loadgen's throughput/latency metrics are wall-clock by nature; its
#: deterministic counts (arrivals, sheds, rewards) gate normally.
WALL_CLOCK_METRICS = ("runtime_s", "requests_per_s", "p50_slot_ms",
                      "p95_slot_ms", "p99_slot_ms")


@dataclass(frozen=True)
class RunManifest:
    """Provenance + headline results of one sweep/benchmark run.

    Attributes:
        name: the run's identity; ledgers are diffed per name.
        created_at: ISO-8601 UTC timestamp of manifest creation.
        git_rev: repository revision the run executed from
            (``"unknown"`` outside a git checkout).
        config_hash: stable hash of the experiment configuration (see
            :func:`config_hash`).
        seeds: replication seeds the run covered, sorted.
        workers: worker processes the sweep executed with.
        python_version: ``major.minor.micro`` of the interpreter.
        numpy_version: the NumPy version (percentile semantics and LP
            numerics can shift between releases).
        platform: ``platform.platform()`` of the executing machine.
        peak_rss_kb: peak resident set size in KiB via
            ``resource.getrusage`` (None where unavailable).
        phases: phase name -> wall-clock seconds (e.g. one entry per
            figure sweep, or the tracer's top-level span totals).
        metrics: algorithm -> metric -> mean value over the run's
            records.  ``runtime_s`` rides along but is wall-clock (see
            :data:`WALL_CLOCK_METRICS`).
        extra: free-form labels (scale preset, figure list, ...).
        profiles: algorithm -> serialized
            :class:`~repro.telemetry.profiling.ProfileDigest` when the
            run executed with profiling enabled; empty otherwise.
            ``perf-diff`` consumes this section.  Its calls/counters
            half is deterministic; its ``*_s`` fields are wall clock.
    """

    name: str
    created_at: str
    git_rev: str
    config_hash: str
    seeds: Tuple[int, ...]
    workers: int
    python_version: str
    numpy_version: str
    platform: str
    peak_rss_kb: Optional[int]
    phases: Mapping[str, float]
    metrics: Mapping[str, Mapping[str, float]]
    extra: Mapping[str, Any] = field(default_factory=dict)
    profiles: Mapping[str, Mapping[str, Any]] = field(
        default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """The manifest as a JSON-ready dict (schema field included)."""
        out = dataclasses.asdict(self)
        out["seeds"] = list(self.seeds)
        out["phases"] = dict(self.phases)
        out["metrics"] = {algo: dict(row)
                          for algo, row in self.metrics.items()}
        out["extra"] = dict(self.extra)
        out["profiles"] = {algo: dict(digest)
                           for algo, digest in self.profiles.items()}
        out["schema"] = MANIFEST_SCHEMA
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on missing required fields.
        """
        try:
            return cls(
                name=data["name"],
                created_at=data.get("created_at", ""),
                git_rev=data.get("git_rev", "unknown"),
                config_hash=data.get("config_hash", ""),
                seeds=tuple(int(s) for s in data.get("seeds", ())),
                workers=int(data.get("workers", 1)),
                python_version=data.get("python_version", ""),
                numpy_version=data.get("numpy_version", ""),
                platform=data.get("platform", ""),
                peak_rss_kb=data.get("peak_rss_kb"),
                phases={str(k): float(v)
                        for k, v in data.get("phases", {}).items()},
                metrics={str(algo): {str(m): float(v)
                                     for m, v in row.items()}
                         for algo, row in data.get("metrics", {}).items()},
                extra=dict(data.get("extra", {})),
                profiles={str(algo): dict(digest)
                          for algo, digest
                          in data.get("profiles", {}).items()},
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed run manifest: {error}") from error


# ----------------------------------------------------------------------
# Environment probes
# ----------------------------------------------------------------------
def git_revision(cwd: Optional[Union[str, Path]] = None) -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of this process in KiB (None if unknown).

    ``ru_maxrss`` is KiB on Linux and bytes on macOS; both normalize
    to KiB here.  Platforms without the ``resource`` module (Windows)
    report None.
    """
    try:
        import resource
    except ImportError:
        return None
    maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(maxrss // 1024)
    return int(maxrss)


def _utc_now_iso() -> str:
    import datetime

    return (datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"))


# ----------------------------------------------------------------------
# Config hashing
# ----------------------------------------------------------------------
def _jsonable(obj: Any) -> Any:
    """Reduce configs/dataclasses/containers to canonical JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__,
                "fields": {f.name: _jsonable(getattr(obj, f.name))
                           for f in dataclasses.fields(obj)}}
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return obj
    return repr(obj)


def config_hash(config: Any) -> str:
    """A stable hex digest of an experiment configuration.

    Accepts any composition of dataclasses (``SimulationConfig``,
    ``ExperimentScale``), mappings, sequences, and scalars.  Two equal
    configurations hash identically across processes and interpreter
    versions (the digest is over canonical sorted-key JSON).
    """
    payload = json.dumps(_jsonable(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Building manifests from sweep results
# ----------------------------------------------------------------------
def _mean_metrics(records: Iterable[Any]) -> Dict[str, Dict[str, float]]:
    """Per-algorithm mean of every metric over a record sequence."""
    sums: Dict[str, Dict[str, float]] = {}
    counts: Dict[str, Dict[str, int]] = {}
    for record in records:
        row = sums.setdefault(record.algorithm, {})
        n = counts.setdefault(record.algorithm, {})
        for metric, value in record.metrics.items():
            row[metric] = row.get(metric, 0.0) + float(value)
            n[metric] = n.get(metric, 0) + 1
    return {algo: {metric: row[metric] / counts[algo][metric]
                   for metric in sorted(row)}
            for algo, row in sorted(sums.items())}


def manifest_from_sweeps(name: str,
                         sweeps: Mapping[str, Any],
                         config: Any = None,
                         workers: int = 1,
                         phases: Optional[Mapping[str, float]] = None,
                         extra: Optional[Mapping[str, Any]] = None,
                         profiles: Optional[
                             Mapping[str, Mapping[str, Any]]] = None
                         ) -> RunManifest:
    """Condense one or more sweeps into a :class:`RunManifest`.

    Args:
        name: manifest identity (ledger entries diff per name).
        sweeps: group label -> :class:`~repro.sim.results.SweepResult`
            (or anything with ``records``).  With several groups the
            metric keys are namespaced ``"<group>/<algorithm>"`` so
            e.g. fig3 and fig5 Appro rows stay distinct.
        config: the experiment configuration to hash (scale preset,
            SimulationConfig, dict, ...); hashes the sweep names alone
            when None.
        workers: worker processes the sweeps executed with.
        phases: phase -> wall-clock seconds (caller-measured).
        extra: free-form labels.
        profiles: algorithm -> serialized profile digest.  When None
            (the default) the records themselves are consulted: runs
            executed with profiling enabled carry digests, which merge
            per algorithm with the same ``<group>/<algorithm>``
            namespacing as ``metrics``; unprofiled runs yield an empty
            section.
    """
    if not sweeps:
        raise ConfigurationError("manifest needs at least one sweep")
    namespaced = len(sweeps) > 1
    metrics: Dict[str, Mapping[str, float]] = {}
    seeds: set = set()
    for group in sorted(sweeps):
        records = sweeps[group].records
        for record in records:
            seeds.add(int(record.seed))
        for algo, row in _mean_metrics(records).items():
            key = f"{group}/{algo}" if namespaced else algo
            metrics[key] = row
    if profiles is None:
        from .profiling import collect_sweep_profiles

        profiles = {algo: digest.to_dict() for algo, digest
                    in collect_sweep_profiles(sweeps).items()}
    import numpy as np

    return RunManifest(
        name=name,
        created_at=_utc_now_iso(),
        git_rev=git_revision(),
        config_hash=config_hash(config if config is not None
                                else sorted(sweeps)),
        seeds=tuple(sorted(seeds)),
        workers=int(workers),
        python_version=platform_module.python_version(),
        numpy_version=np.__version__,
        platform=platform_module.platform(),
        peak_rss_kb=peak_rss_kb(),
        phases=dict(phases or {}),
        metrics=metrics,
        extra=dict(extra or {}),
        profiles={str(algo): dict(digest)
                  for algo, digest in profiles.items()},
    )


# ----------------------------------------------------------------------
# Persistence: JSONL ledger + BENCH_<name>.json snapshots
# ----------------------------------------------------------------------
def append_ledger(path: Union[str, Path],
                  manifest: RunManifest) -> Path:
    """Append one manifest to a JSONL ledger; returns the path.

    Parent directories are created as needed; the ledger is created on
    first append.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as handle:
        handle.write(json.dumps(manifest.to_dict(), sort_keys=True))
        handle.write("\n")
    return target


def read_ledger(path: Union[str, Path]) -> List[RunManifest]:
    """Read every manifest of a JSONL ledger, in append order.

    Raises:
        ConfigurationError: on unparsable lines or malformed entries.
    """
    manifests: List[RunManifest] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON: {error}"
                ) from error
            if not isinstance(data, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: ledger entries must be objects, "
                    f"got {type(data).__name__}")
            manifests.append(RunManifest.from_dict(data))
    return manifests


def write_bench(path: Union[str, Path],
                manifest: RunManifest) -> Path:
    """Write one manifest as a pretty ``BENCH_<name>.json`` snapshot."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(manifest.to_dict(), sort_keys=True,
                                 indent=2) + "\n")
    return target


def load_manifests(path: Union[str, Path]) -> List[RunManifest]:
    """Load manifests from either format.

    A ``BENCH_*.json`` snapshot (one pretty-printed object) yields a
    single-element list; a JSONL ledger yields all its entries in
    order.

    Raises:
        ConfigurationError: when the file is neither format.
    """
    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        return read_ledger(path)
    if isinstance(data, dict):
        return [RunManifest.from_dict(data)]
    raise ConfigurationError(
        f"{path}: expected a manifest object or a JSONL ledger, got "
        f"{type(data).__name__}")


def latest_by_name(manifests: Sequence[RunManifest]
                   ) -> Dict[str, RunManifest]:
    """The last-appended manifest per name (the ledger's head state)."""
    out: Dict[str, RunManifest] = {}
    for manifest in manifests:
        out[manifest.name] = manifest
    return out
