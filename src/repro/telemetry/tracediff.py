"""Localize the first divergence between two decision journals.

``python -m repro.experiments trace-diff A.jsonl B.jsonl`` aligns two
journals event by event and, when they disagree, prints the first
divergent event with +/- k events of context and a per-key field diff.
Exit codes match ``bench-diff``:

* ``0`` - the journals are identical;
* ``1`` - the journals diverge (the localization is printed);
* ``2`` - an input is unusable (missing file, malformed JSONL).

Because journals are canonical (wall-clock-free, deterministic
emission order, JSONL round-trip-stable field encoding), a serial and
a ``--workers N`` run of the same spec must produce byte-identical
journals; trace-diff turns "the blind assert failed" into "these two
runs disagreed at event 1234, and here is the decision each made".
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

#: Exit codes, mirroring :mod:`repro.telemetry.regression`.
EXIT_OK = 0
EXIT_DIVERGED = 1
EXIT_ERROR = 2


def load_journal(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL journal; raises ValueError on malformed input."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from exc
            if not isinstance(event, dict):
                raise ValueError(
                    f"{path}:{lineno}: expected a JSON object, got "
                    f"{type(event).__name__}")
            events.append(event)
    return events


def first_divergence(a: Sequence[Mapping[str, Any]],
                     b: Sequence[Mapping[str, Any]]
                     ) -> Optional[int]:
    """Index of the first event where the journals disagree.

    Returns None when the journals are identical.  If one journal is a
    strict prefix of the other, the divergence is at the shorter
    length (the first event only one side has).
    """
    for index in range(min(len(a), len(b))):
        if dict(a[index]) != dict(b[index]):
            return index
    if len(a) != len(b):
        return min(len(a), len(b))
    return None


def _field_diff(a: Mapping[str, Any], b: Mapping[str, Any]
                ) -> List[str]:
    """Per-key differences between two event dicts."""
    lines = []
    for key in sorted(set(a) | set(b)):
        left = a.get(key, "<absent>")
        right = b.get(key, "<absent>")
        if left != right:
            lines.append(f"    {key}: {left!r} != {right!r}")
    return lines


def _render_event(event: Optional[Mapping[str, Any]]) -> str:
    if event is None:
        return "<end of journal>"
    return json.dumps(event, sort_keys=True)


def render_divergence(a: Sequence[Mapping[str, Any]],
                      b: Sequence[Mapping[str, Any]],
                      index: int, context: int = 3,
                      names: Tuple[str, str] = ("A", "B")) -> str:
    """The localization report: context, the split, and a field diff."""
    lines = [f"journals diverge at event {index} "
             f"({names[0]}: {len(a)} events, {names[1]}: "
             f"{len(b)} events)"]
    lo = max(0, index - context)
    if lo > 0:
        lines.append(f"  ... {lo} matching event(s) omitted ...")
    for i in range(lo, index):
        lines.append(f"  = [{i}] {_render_event(a[i])}")
    left = a[index] if index < len(a) else None
    right = b[index] if index < len(b) else None
    lines.append(f"  < [{index}] {_render_event(left)}")
    lines.append(f"  > [{index}] {_render_event(right)}")
    if left is not None and right is not None:
        lines.extend(_field_diff(left, right))
    hi = min(min(len(a), len(b)), index + 1 + context)
    for i in range(index + 1, hi):
        marker = "=" if dict(a[i]) == dict(b[i]) else "~"
        lines.append(f"  {marker} [{i}] {_render_event(a[i])}")
        if marker == "~":
            lines.append(f"  ~ [{i}] {_render_event(b[i])}")
    return "\n".join(lines)


def diff_journals(a: Sequence[Mapping[str, Any]],
                  b: Sequence[Mapping[str, Any]],
                  context: int = 3,
                  names: Tuple[str, str] = ("A", "B")
                  ) -> Tuple[int, str]:
    """Compare two in-memory journals.

    Returns:
        ``(exit_code, report)`` - code :data:`EXIT_OK` with a one-line
        confirmation, or :data:`EXIT_DIVERGED` with the localization.
    """
    index = first_divergence(a, b)
    if index is None:
        return EXIT_OK, (f"journals identical "
                         f"({len(a)} events)")
    return EXIT_DIVERGED, render_divergence(a, b, index,
                                            context=context,
                                            names=names)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (``python -m repro.experiments trace-diff``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-diff",
        description="Align two decision journals (JSONL) and localize "
                    "the first divergent event.  Exits 0 when "
                    "identical, 1 on divergence, 2 on unusable input.")
    parser.add_argument("journal_a", metavar="A.jsonl",
                        help="first journal (e.g. the serial run)")
    parser.add_argument("journal_b", metavar="B.jsonl",
                        help="second journal (e.g. the parallel run)")
    parser.add_argument("--context", type=int, default=3, metavar="K",
                        help="events of context around the divergence "
                             "(default: 3)")
    args = parser.parse_args(argv)
    if args.context < 0:
        print("error: --context must be >= 0", file=sys.stderr)
        return EXIT_ERROR
    try:
        journal_a = load_journal(args.journal_a)
        journal_b = load_journal(args.journal_b)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    code, report = diff_journals(
        journal_a, journal_b, context=args.context,
        names=(args.journal_a, args.journal_b))
    print(report)
    return code


if __name__ == "__main__":
    sys.exit(main())
