"""Process-local tracer: nested spans, counters, value records.

A :class:`Tracer` collects three kinds of telemetry from an
instrumented run:

* **spans** - nested, labelled wall-clock intervals opened with
  ``with tracer.span("lp_solve", backend="scipy"):``.  Spans carry
  their start order (``seq``), nesting ``depth``, and the ``seq`` of
  their parent, so an exporter can reconstruct the call tree and a
  summary can compute exclusive (self) time;
* **counters** - monotonic event counts (``tracer.count("drops")``,
  ``tracer.count("bnb_nodes", 17)``) keyed by name + labels;
* **values** - deterministic numeric observations
  (``tracer.observe("threshold_mhz", 600.0)``) whose full sample list
  is retained for distribution summaries (mean/p95).

**Determinism convention.**  Everything a tracer records except span
``start_s`` / ``duration_s`` must be a deterministic function of the
run's seed: never ``observe()`` a wall-clock quantity (spans already
measure time).  Under this convention the *canonical* form of a trace
(:func:`repro.telemetry.export.canonical_events`) is bit-identical
between serial and parallel sweep executions.

The module-level *current tracer* defaults to :data:`NULL_TRACER`, a
no-op whose ``span()`` returns a shared, state-free context manager -
untraced runs pay one attribute lookup and one call per
instrumentation point and allocate nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Label set in canonical (sorted tuple) form.
LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _SpanContext:
    """Context manager for one live span of a real :class:`Tracer`."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._record = record

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        record = self._record
        record["depth"] = len(tracer._stack)
        record["parent"] = (tracer._stack[-1] if tracer._stack
                            else None)
        tracer._stack.append(record["seq"])
        record["start_s"] = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        record = self._record
        record["duration_s"] = (self._tracer._clock()
                                - record["start_s"])
        self._tracer._stack.pop()
        return False

    def annotate(self, **labels) -> None:
        """Attach labels discovered *inside* the span (e.g. whether a
        solve was a warm-start hit).  Values must follow the same
        determinism convention as span labels."""
        self._record["labels"].update(labels)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **labels) -> None:
        """Discard labels (no-op tracer)."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default: every operation is a no-op.

    ``span()`` hands back one shared context manager, so untraced hot
    paths allocate nothing and execute two bytecode-cheap calls per
    instrumentation point.
    """

    enabled = False

    def span(self, name: str, **labels) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Discard a counter increment."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Discard a value observation."""

    def events(self) -> List[Dict[str, Any]]:
        """A null tracer never has events."""
        return []

    def __repr__(self) -> str:
        return "NullTracer()"


class Tracer:
    """Collects spans, counters, and value observations.

    Args:
        clock: monotonic time source (seconds); injectable for tests.
    """

    enabled = True

    def __init__(self,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._spans: List[Dict[str, Any]] = []
        self._stack: List[int] = []
        self._counters: Dict[Tuple[str, LabelKey], float] = {}
        self._values: Dict[Tuple[str, LabelKey], List[float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **labels) -> _SpanContext:
        """Open a labelled span; use as a context manager.

        The span is appended to the event stream in *start* order
        (``seq``), which is deterministic for a deterministic run; its
        ``duration_s`` is filled in on exit.  Exceptions propagate (the
        span still records its duration).
        """
        record: Dict[str, Any] = {
            "kind": "span",
            "name": name,
            "labels": dict(labels),
            "seq": len(self._spans),
            "depth": 0,
            "parent": None,
            "start_s": 0.0,
            "duration_s": 0.0,
        }
        self._spans.append(record)
        return _SpanContext(self, record)

    def count(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the monotonic counter ``name`` + labels."""
        key = (name, _label_key(labels))
        self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        """Append one numeric observation to ``name`` + labels.

        Observe only run-deterministic quantities (see the module
        docstring); wall-clock belongs in spans.
        """
        self._values.setdefault((name, _label_key(labels)),
                                []).append(float(value))

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Currently un-exited spans (0 between instrumented calls)."""
        return len(self._stack)

    def counter(self, name: str, **labels) -> float:
        """Current value of one counter (0.0 when never incremented)."""
        return self._counters.get((name, _label_key(labels)), 0.0)

    def observations(self, name: str, **labels) -> List[float]:
        """The recorded observations of one value series."""
        return list(self._values.get((name, _label_key(labels)), []))

    def events(self) -> List[Dict[str, Any]]:
        """The trace as a flat, JSON-serializable event list.

        Spans come first in start order, then counters, then value
        series, both sorted by (name, labels) - a deterministic order
        for a deterministic run.
        """
        out: List[Dict[str, Any]] = [dict(span) for span in self._spans]
        for (name, labels) in sorted(self._counters):
            out.append({"kind": "counter", "name": name,
                        "labels": dict(labels),
                        "value": self._counters[(name, labels)]})
        for (name, labels) in sorted(self._values):
            out.append({"kind": "value", "name": name,
                        "labels": dict(labels),
                        "values": list(self._values[(name, labels)])})
        return out

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self._spans.clear()
        self._stack.clear()
        self._counters.clear()
        self._values.clear()

    def __repr__(self) -> str:
        return (f"Tracer(spans={len(self._spans)}, "
                f"counters={len(self._counters)}, "
                f"values={len(self._values)})")


#: The shared no-op tracer (also the initial current tracer).
NULL_TRACER = NullTracer()

_current = NULL_TRACER


def get_tracer():
    """The process-local current tracer (:data:`NULL_TRACER` default)."""
    return _current


def set_tracer(tracer: Optional[Tracer]):
    """Install ``tracer`` as current (None restores the null tracer).

    Returns:
        The tracer now current.
    """
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Any]:
    """Temporarily install a tracer; always restores the previous one."""
    previous = _current
    set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
