"""Performance attribution: span-tree digests and deep capture.

The tracer (:mod:`repro.telemetry.tracer`) records raw span events;
the summary (:mod:`repro.telemetry.summary`) aggregates them by flat
span name for a human table.  Neither is a *comparable artifact*: you
cannot hand two of them to CI and ask "which span regressed".  This
module closes that gap with three layers:

* :class:`ProfileDigest` - the canonical attribution record of one (or
  many merged) runs: per **span path** (``offline_run/build_lp/
  lp_solve``) the call count, cumulative wall time, exclusive self
  time, and min/max per call, plus every domain counter
  (``simplex_iterations_total{phase="warm"}``,
  ``lp_solves_total{mode="basis"}``, ``bnb_nodes``, ...) joined onto
  its owning span via :data:`COUNTER_OWNERS`.  Digests merge
  associatively (per algorithm, across ProcessPool workers), serialize
  to JSON, and split cleanly into a *deterministic* part (calls,
  counters - a pure function of config + seeds, byte-identical between
  serial and parallel execution; see :func:`canonical_digest`) and an
  advisory wall-clock part (the ``*_s`` fields).

* **Deep capture** - opt-in ``cProfile`` statistics
  (:func:`capture_stats` / :func:`merge_stats`) reduced to picklable
  dicts so they ride home on :class:`~repro.sim.results.RunRecord`
  like traces do, and opt-in ``tracemalloc`` top-N allocation sites
  (:func:`capture_memory_top` / :func:`merge_memory`) for flat-RSS
  claims.

* **Flamegraph export** - :func:`folded_from_stats` expands the
  cProfile caller graph into collapsed-stack lines ("a;b;c 1234",
  weights in microseconds) loadable by speedscope and flamegraph.pl,
  and :func:`folded_from_digest` does the same exactly (no
  approximation) for the instrumented span tree.

``python -m repro.experiments perf-diff`` (see
:mod:`repro.telemetry.perfdiff`) compares two digests and localizes
the worst regressed span; the experiments/report/service CLIs grow
``--profile`` / ``--profile-mem`` / ``--profile-out`` flags that
produce these artifacts.  Profiling is zero-overhead-by-default and
inert: enabling it cannot change any record metric, journal byte, or
checkpoint (the executor's inertness tests pin this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..exceptions import ConfigurationError
from .summary import RUN_KEY_FIELDS

#: Schema identifier of one serialized digest.
DIGEST_SCHEMA = "repro.profile-digest/1"
#: Schema identifier of a digest-set export (``PROF_*.json``).
PROFILE_SET_SCHEMA = "repro.profile-set/1"

#: Digest fields measured from the executing machine's clock.  They
#: are the advisory half of a digest; everything else (calls,
#: counters) is deterministic and must match between two executions of
#: the same run (see :func:`canonical_digest`).
DIGEST_WALL_CLOCK_FIELDS = ("total_s", "self_s", "min_s", "max_s")

#: Counter base name -> owning span leaf name.  ``perf-diff`` and the
#: digest join use this to attribute domain counters to the span whose
#: code increments them, so a report can say "simplex phase-2
#: iterations +4.1x in lp_solve" instead of listing bare counters.
COUNTER_OWNERS: Dict[str, str] = {
    # tracer counters
    "lp_solves_total": "lp_solve",
    "simplex_iterations_total": "lp_solve",
    "bnb_nodes": "ilp_solve",
    "presolve_removed_vars": "presolve",
    "presolve_removed_rows": "presolve",
    "rounding_rounds": "rounding",
    "requests_admitted": "rounding",
    "migrations": "migration",
    "arm_eliminations": "bandit_round",
    "bandit_explore_steps": "bandit_round",
    "bandit_exploit_steps": "bandit_round",
    "arrivals": "slot_admission",
    "requests_started": "slot_admission",
    "deadline_drops": "slot_admission",
    "completions": "slot_admission",
    "cloud_served": "slot_admission",
    # metrics-registry counters (same code paths, registry namespace)
    "rounding_admits_total": "rounding",
    "rounding_rejects_total": "rounding",
    "migrations_total": "migration",
    "bandit_rounds_total": "bandit_round",
    "bandit_arms_eliminated_total": "bandit_round",
    "engine_arrivals_total": "slot_admission",
    "engine_starts_total": "slot_admission",
    "engine_drops_total": "slot_admission",
    "engine_completions_total": "slot_admission",
    "engine_cloud_served_total": "slot_admission",
    "engine_reward_total": "slot_admission",
    "station_transitions_total": "slot_admission",
}

#: Separator between span names in a digest path.
PATH_SEP = "/"


def counter_base(series: str) -> str:
    """The base metric name of a flat series id (labels stripped)."""
    brace = series.find("{")
    return series if brace < 0 else series[:brace]


def series_id(name: str, labels: Mapping[str, Any]) -> str:
    """Canonical flat series id, ``name{k="v",...}`` with sorted keys.

    Matches :func:`repro.telemetry.metrics._series_name` so tracer
    counters and registry counters share one namespace in the digest.
    """
    if not labels:
        return name
    body = ",".join(f'{key}="{value}"'
                    for key, value in sorted(labels.items()))
    return f"{name}{{{body}}}"


@dataclass
class SpanProfile:
    """Attribution of one span path inside a digest."""

    path: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    @property
    def leaf(self) -> str:
        """The span's own name (last path segment)."""
        return self.path.rsplit(PATH_SEP, 1)[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {"calls": self.calls, "total_s": self.total_s,
                "self_s": self.self_s, "min_s": self.min_s,
                "max_s": self.max_s}

    @classmethod
    def from_dict(cls, path: str,
                  data: Mapping[str, Any]) -> "SpanProfile":
        return cls(path=path, calls=int(data.get("calls", 0)),
                   total_s=float(data.get("total_s", 0.0)),
                   self_s=float(data.get("self_s", 0.0)),
                   min_s=float(data.get("min_s", 0.0)),
                   max_s=float(data.get("max_s", 0.0)))

    def absorb(self, other: "SpanProfile") -> None:
        """Merge another profile of the same path into this one."""
        if self.calls == 0:
            self.min_s = other.min_s
        elif other.calls:
            self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        self.calls += other.calls
        self.total_s += other.total_s
        self.self_s += other.self_s


@dataclass
class ProfileDigest:
    """Canonical performance-attribution record of one or more runs.

    Attributes:
        spans: span path -> :class:`SpanProfile`.
        counters: flat series id -> total (tracer counters and, when a
            metrics registry rode the run, its counters too).
        top_level_s: wall time of top-level (parentless) spans.
        runs: how many runs were merged into this digest.
    """

    spans: Dict[str, SpanProfile] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    top_level_s: float = 0.0
    runs: int = 0

    def span_counters(self, leaf: str) -> Dict[str, float]:
        """The counters :data:`COUNTER_OWNERS` joins onto one span."""
        return {series: value
                for series, value in sorted(self.counters.items())
                if COUNTER_OWNERS.get(counter_base(series)) == leaf}

    def to_dict(self) -> Dict[str, Any]:
        """The digest as a canonical JSON-ready dict."""
        return {
            "schema": DIGEST_SCHEMA,
            "runs": self.runs,
            "top_level_s": self.top_level_s,
            "spans": {path: self.spans[path].to_dict()
                      for path in sorted(self.spans)},
            "counters": {series: self.counters[series]
                         for series in sorted(self.counters)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProfileDigest":
        """Rebuild a digest from :meth:`to_dict` output.

        Raises:
            ConfigurationError: on malformed input.
        """
        try:
            spans = {str(path): SpanProfile.from_dict(str(path), row)
                     for path, row in data.get("spans", {}).items()}
            counters = {str(series): float(value)
                        for series, value
                        in data.get("counters", {}).items()}
            return cls(spans=spans, counters=counters,
                       top_level_s=float(data.get("top_level_s", 0.0)),
                       runs=int(data.get("runs", 0)))
        except (AttributeError, TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed profile digest: {error}") from error

    def absorb(self, other: "ProfileDigest") -> None:
        """Merge another digest into this one (associative)."""
        for path in sorted(other.spans):
            mine = self.spans.setdefault(path, SpanProfile(path))
            mine.absorb(other.spans[path])
        for series in sorted(other.counters):
            self.counters[series] = (self.counters.get(series, 0.0)
                                     + other.counters[series])
        self.top_level_s += other.top_level_s
        self.runs += other.runs


def merge_digests(digests: Iterable[Union[ProfileDigest,
                                          Mapping[str, Any]]]
                  ) -> ProfileDigest:
    """Merge digests (objects or dicts) into one aggregate."""
    out = ProfileDigest()
    for digest in digests:
        if not isinstance(digest, ProfileDigest):
            digest = ProfileDigest.from_dict(digest)
        out.absorb(digest)
    return out


def canonical_digest(digest: Union[ProfileDigest, Mapping[str, Any]]
                     ) -> Dict[str, Any]:
    """The deterministic half of a digest (wall-clock fields removed).

    Two executions of the same run - serial vs parallel, profiled on
    different machines - must produce *equal* canonical digests: span
    paths, call counts, and domain counters are pure functions of
    config + seeds.
    """
    data = (digest.to_dict() if isinstance(digest, ProfileDigest)
            else dict(digest))
    return {
        "schema": data.get("schema", DIGEST_SCHEMA),
        "runs": data.get("runs", 0),
        "spans": {path: {key: value for key, value in row.items()
                         if key not in DIGEST_WALL_CLOCK_FIELDS}
                  for path, row in data.get("spans", {}).items()},
        "counters": dict(data.get("counters", {})),
    }


# ----------------------------------------------------------------------
# Building digests from trace events
# ----------------------------------------------------------------------
def _run_key(event: Mapping[str, Any]) -> Tuple[Any, ...]:
    return tuple(event.get(key) for key in RUN_KEY_FIELDS)


def digest_from_events(events: Iterable[Mapping[str, Any]],
                       registry_counters: Optional[
                           Mapping[str, float]] = None,
                       runs: int = 1) -> ProfileDigest:
    """Build a :class:`ProfileDigest` from a trace event stream.

    Accepts a single run's events or a merged sweep trace (parent
    links are resolved per run, exactly like
    :func:`repro.telemetry.summary.summarize_events`).  Span paths are
    the full ancestor chain joined with ``/``; a re-entrant span
    therefore lands on a *longer* path (``a/a``) instead of double
    counting on ``a``.  Tracer counter events fold in under their flat
    series id; ``registry_counters`` (a
    :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot`
    ``counters`` map) merge into the same namespace.
    """
    digest = ProfileDigest(runs=runs)
    span_events: List[Mapping[str, Any]] = []
    by_seq: Dict[Tuple[Any, ...], Mapping[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        if kind == "span":
            span_events.append(event)
            by_seq[_run_key(event) + (event.get("seq"),)] = event
        elif kind == "counter":
            series = series_id(event["name"],
                               event.get("labels") or {})
            digest.counters[series] = (digest.counters.get(series, 0.0)
                                       + float(event.get("value", 0.0)))

    # Resolve each span's full ancestor path and its direct-child time.
    paths: Dict[Tuple[Any, ...], str] = {}

    def path_of(event: Mapping[str, Any]) -> str:
        key = _run_key(event) + (event.get("seq"),)
        cached = paths.get(key)
        if cached is not None:
            return cached
        parent = event.get("parent")
        if parent is None:
            path = str(event["name"])
        else:
            parent_event = by_seq.get(_run_key(event) + (parent,))
            if parent_event is None:
                path = str(event["name"])
            else:
                path = path_of(parent_event) + PATH_SEP \
                    + str(event["name"])
        paths[key] = path
        return path

    child_s: Dict[Tuple[Any, ...], float] = {}
    for event in span_events:
        if event.get("parent") is not None:
            key = _run_key(event) + (event["parent"],)
            child_s[key] = (child_s.get(key, 0.0)
                            + float(event.get("duration_s", 0.0)))

    for event in span_events:
        duration = float(event.get("duration_s", 0.0))
        key = _run_key(event) + (event.get("seq"),)
        span = digest.spans.setdefault(path_of(event),
                                       SpanProfile(path_of(event)))
        single = SpanProfile(span.path, calls=1, total_s=duration,
                             self_s=max(0.0, duration
                                        - child_s.get(key, 0.0)),
                             min_s=duration, max_s=duration)
        span.absorb(single)
        if event.get("parent") is None:
            digest.top_level_s += duration
    if registry_counters:
        for series in sorted(registry_counters):
            digest.counters[series] = (
                digest.counters.get(series, 0.0)
                + float(registry_counters[series]))
    return digest


def collect_sweep_profiles(sweeps: Mapping[str, Any]
                           ) -> Dict[str, ProfileDigest]:
    """Merge per-record digests of one or more sweeps, per algorithm.

    Mirrors the metric namespacing of
    :func:`repro.telemetry.ledger.manifest_from_sweeps`: with several
    sweep groups the keys become ``"<group>/<algorithm>"``.  Records
    without a digest (profiling off) contribute nothing.
    """
    namespaced = len(sweeps) > 1
    out: Dict[str, ProfileDigest] = {}
    for group in sorted(sweeps):
        for record in sweeps[group].records:
            data = getattr(record, "profile", None)
            if not data:
                continue
            key = (f"{group}/{record.algorithm}" if namespaced
                   else record.algorithm)
            target = out.setdefault(key, ProfileDigest())
            target.absorb(ProfileDigest.from_dict(data))
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_digest(digest: Union[ProfileDigest, Mapping[str, Any]],
                  top: int = 20, markdown: bool = False) -> str:
    """A per-span attribution table, hottest self time first."""
    if not isinstance(digest, ProfileDigest):
        digest = ProfileDigest.from_dict(digest)
    header = ["span path", "calls", "total_ms", "self_ms", "min_ms",
              "max_ms"]
    ordered = sorted(digest.spans.values(),
                     key=lambda s: (-s.self_s, s.path))
    rows: List[List[str]] = []
    for span in ordered[:max(0, top)]:
        rows.append([span.path, str(span.calls),
                     f"{span.total_s * 1e3:.2f}",
                     f"{span.self_s * 1e3:.2f}",
                     f"{span.min_s * 1e3:.3f}",
                     f"{span.max_s * 1e3:.3f}"])
    widths = [max(len(header[i]), *(len(r[i]) for r in rows))
              if rows else len(header[i]) for i in range(len(header))]

    def fmt(cells: List[str]) -> str:
        if markdown:
            return "| " + " | ".join(cells) + " |"
        return "  ".join(cell.rjust(width) if i else cell.ljust(width)
                         for i, (cell, width)
                         in enumerate(zip(cells, widths)))

    lines = [fmt(header)]
    if markdown:
        lines.append("|---" * len(header) + "|")
    lines.extend(fmt(row) for row in rows)
    if not rows:
        lines.append("(no spans profiled)")
    omitted = len(ordered) - len(rows)
    if omitted > 0:
        lines.append(f"  ... {omitted} cooler span path(s) omitted ...")
    if digest.counters:
        lines.append("")
        lines.append("**Counters**" if markdown else "counters:")
        for series in sorted(digest.counters):
            owner = COUNTER_OWNERS.get(counter_base(series))
            where = f" [{owner}]" if owner else ""
            text = f"{series} = {digest.counters[series]:g}{where}"
            lines.append(f"- {text}" if markdown else f"  {text}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Profile-set files (PROF_*.json)
# ----------------------------------------------------------------------
def write_profile_set(path: Union[str, Path],
                      digests: Mapping[str, Union[ProfileDigest,
                                                  Mapping[str, Any]]]
                      ) -> Path:
    """Write a digest set as a pretty ``PROF_<name>.json`` snapshot."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": PROFILE_SET_SCHEMA,
        "digests": {
            name: (digest.to_dict()
                   if isinstance(digest, ProfileDigest)
                   else dict(digest))
            for name, digest in sorted(digests.items())},
    }
    target.write_text(json.dumps(payload, sort_keys=True, indent=2)
                      + "\n")
    return target


def load_profile_set(path: Union[str, Path]) -> Dict[str, ProfileDigest]:
    """Load digests from any format that can carry them.

    Accepts a ``PROF_*.json`` profile set, a single serialized digest,
    a ``BENCH_*.json`` manifest with a ``profiles`` section, or a
    JSONL ledger (head manifest per name; keys become
    ``"<run>.<algorithm>"`` when several runs carry profiles).

    Raises:
        ConfigurationError: when the file carries no digests.
    """
    from .ledger import latest_by_name, load_manifests

    text = Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    out: Dict[str, ProfileDigest] = {}
    if isinstance(data, dict) and (
            data.get("schema") == PROFILE_SET_SCHEMA
            or "digests" in data):
        out = {str(name): ProfileDigest.from_dict(digest)
               for name, digest in data.get("digests", {}).items()}
    elif isinstance(data, dict) and (
            data.get("schema") == DIGEST_SCHEMA or "spans" in data):
        out = {"profile": ProfileDigest.from_dict(data)}
    else:
        manifests = latest_by_name(load_manifests(path))
        for name in sorted(manifests):
            profiles = getattr(manifests[name], "profiles", {}) or {}
            for algo in sorted(profiles):
                key = algo if len(manifests) == 1 \
                    else f"{name}.{algo}"
                out[key] = ProfileDigest.from_dict(profiles[algo])
    if not out:
        raise ConfigurationError(
            f"{path}: no profile digests found (was the run executed "
            f"with --profile?)")
    return out


# ----------------------------------------------------------------------
# Deep capture: cProfile statistics
# ----------------------------------------------------------------------
def _func_id(func: Tuple[str, int, str]) -> str:
    """Readable, stable id of a cProfile function key."""
    filename, lineno, name = func
    if filename in ("~", ""):
        return name  # builtins: ("~", 0, "<built-in ...>")
    short = filename.replace("\\", "/")
    marker = short.rfind("/repro/")
    if marker >= 0:
        short = short[marker + 1:]
    else:
        short = short.rsplit("/", 1)[-1]
    return f"{short}:{lineno}:{name}"


def capture_stats(profiler: Any) -> Dict[str, Any]:
    """Reduce a ``cProfile.Profile`` to a picklable stats mapping.

    Returns:
        function id -> ``{"calls", "prim", "tt", "ct", "callers":
        {caller id: [calls, prim, tt, ct]}}`` - the full caller graph,
        so flamegraph expansion and cross-worker merging stay exact
        per edge.
    """
    profiler.create_stats()
    out: Dict[str, Any] = {}
    for func, (cc, nc, tt, ct, callers) in profiler.stats.items():
        out[_func_id(func)] = {
            "calls": int(nc), "prim": int(cc),
            "tt": float(tt), "ct": float(ct),
            "callers": {
                _func_id(caller): [int(ccc), int(ncc), float(ttc),
                                   float(ctc)]
                for caller, (ccc, ncc, ttc, ctc) in callers.items()},
        }
    return out


def merge_stats(stats_list: Iterable[Mapping[str, Any]]
                ) -> Dict[str, Any]:
    """Sum cProfile stats mappings across runs/workers."""
    merged: Dict[str, Any] = {}
    for stats in stats_list:
        if not stats:
            continue
        for func in sorted(stats):
            row = stats[func]
            mine = merged.setdefault(
                func, {"calls": 0, "prim": 0, "tt": 0.0, "ct": 0.0,
                       "callers": {}})
            mine["calls"] += int(row.get("calls", 0))
            mine["prim"] += int(row.get("prim", 0))
            mine["tt"] += float(row.get("tt", 0.0))
            mine["ct"] += float(row.get("ct", 0.0))
            for caller in sorted(row.get("callers", {})):
                edge = row["callers"][caller]
                target = mine["callers"].setdefault(
                    caller, [0, 0, 0.0, 0.0])
                for i in range(4):
                    target[i] += edge[i]
    return merged


def top_functions(stats: Mapping[str, Any], top: int = 15,
                  key: str = "tt") -> List[Tuple[str, Dict[str, Any]]]:
    """The hottest functions of a stats mapping, by ``tt`` or ``ct``."""
    if key not in ("tt", "ct"):
        raise ConfigurationError(f"sort key must be tt or ct, got {key!r}")
    ordered = sorted(stats.items(),
                     key=lambda item: (-float(item[1].get(key, 0.0)),
                                       item[0]))
    return [(func, dict(row)) for func, row in ordered[:max(0, top)]]


def folded_from_stats(stats: Mapping[str, Any],
                      max_depth: int = 64,
                      min_weight_us: int = 1) -> List[str]:
    """Collapsed-stack lines from a cProfile caller graph.

    cProfile records caller->callee *edges*, not full stacks, so full
    stacks are reconstructed by walking the graph from its roots and
    distributing each function's self time (``tt``) across incoming
    paths proportionally to the cumulative time (``ct``) flowing along
    each edge - the same estimate flameprof makes.  The result is
    deterministic for a given stats mapping, and loadable by
    speedscope or flamegraph.pl (weights are integer microseconds).
    Cycles are cut by never revisiting a function already on the
    current path; ``max_depth`` bounds pathological graphs.
    """
    callees: Dict[str, List[Tuple[str, float]]] = {}
    called: set = set()
    for func in sorted(stats):
        for caller in sorted(stats[func].get("callers", {})):
            edge_ct = float(stats[func]["callers"][caller][3])
            callees.setdefault(caller, []).append((func, edge_ct))
            called.add(func)
    weights: Dict[str, float] = {}

    def walk(func: str, ratio: float, path: Tuple[str, ...]) -> None:
        row = stats.get(func)
        if row is None or ratio <= 0.0:
            return
        self_s = float(row.get("tt", 0.0)) * ratio
        if self_s > 0.0:
            line = ";".join(path)
            weights[line] = weights.get(line, 0.0) + self_s
        if len(path) >= max_depth:
            return
        total_ct = max(float(row.get("ct", 0.0)), 1e-12)
        for callee, edge_ct in callees.get(func, ()):
            if callee in path:
                continue  # recursion: collapse onto the outer frame
            walk(callee, ratio * min(1.0, edge_ct / total_ct),
                 path + (callee,))

    roots = [func for func in sorted(stats) if func not in called]
    for root in roots:
        walk(root, 1.0, (root,))
    lines = []
    for line in sorted(weights):
        weight = int(round(weights[line] * 1e6))
        if weight >= min_weight_us:
            lines.append(f"{line} {weight}")
    return lines


def folded_from_digest(digest: Union[ProfileDigest, Mapping[str, Any]],
                       min_weight_us: int = 1) -> List[str]:
    """Collapsed-stack lines from a digest's span tree (exact)."""
    if not isinstance(digest, ProfileDigest):
        digest = ProfileDigest.from_dict(digest)
    lines = []
    for path in sorted(digest.spans):
        weight = int(round(digest.spans[path].self_s * 1e6))
        if weight >= min_weight_us:
            lines.append(f"{path.replace(PATH_SEP, ';')} {weight}")
    return lines


def write_folded(path: Union[str, Path],
                 lines: Sequence[str]) -> Path:
    """Write collapsed-stack lines to a ``.folded`` file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("".join(line + "\n" for line in lines))
    return target


# ----------------------------------------------------------------------
# Deep capture: tracemalloc allocation sites
# ----------------------------------------------------------------------
def capture_memory_top(snapshot: Any, top: int = 25
                       ) -> List[Dict[str, Any]]:
    """Top allocation sites of a ``tracemalloc`` snapshot.

    Returns picklable rows ``{"site": "file:lineno", "size_kb",
    "count"}`` sorted by size descending, file paths shortened to the
    ``repro/...`` suffix where possible.
    """
    rows: List[Dict[str, Any]] = []
    for stat in snapshot.statistics("lineno")[:max(0, top)]:
        frame = stat.traceback[0]
        rows.append({"site": _func_id((frame.filename, frame.lineno,
                                       ""))[:-1],
                     "size_kb": stat.size / 1024.0,
                     "count": int(stat.count)})
    return rows


def merge_memory(rows_list: Iterable[Sequence[Mapping[str, Any]]],
                 top: int = 25) -> List[Dict[str, Any]]:
    """Sum allocation-site rows across runs and re-rank by size."""
    by_site: Dict[str, Dict[str, Any]] = {}
    for rows in rows_list:
        if not rows:
            continue
        for row in rows:
            site = str(row["site"])
            mine = by_site.setdefault(site, {"site": site,
                                             "size_kb": 0.0,
                                             "count": 0})
            mine["size_kb"] += float(row.get("size_kb", 0.0))
            mine["count"] += int(row.get("count", 0))
    ordered = sorted(by_site.values(),
                     key=lambda r: (-r["size_kb"], r["site"]))
    return ordered[:max(0, top)]


def render_memory_top(rows: Sequence[Mapping[str, Any]],
                      markdown: bool = False) -> str:
    """A top-allocation-sites table (size descending)."""
    header = ["allocation site", "size_kb", "blocks"]
    body = [[str(row["site"]), f"{float(row['size_kb']):.1f}",
             str(int(row["count"]))] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body))
              if body else len(header[i]) for i in range(len(header))]

    def fmt(cells: List[str]) -> str:
        if markdown:
            return "| " + " | ".join(cells) + " |"
        return "  ".join(cell.rjust(width) if i else cell.ljust(width)
                         for i, (cell, width)
                         in enumerate(zip(cells, widths)))

    lines = [fmt(header)]
    if markdown:
        lines.append("|---" * len(header) + "|")
    lines.extend(fmt(row) for row in body)
    if not body:
        lines.append("(no allocations captured)")
    return "\n".join(lines)
