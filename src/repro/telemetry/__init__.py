"""Structured observability: spans, counters, and trace export.

The subsystem answers "where did the milliseconds go" for any run -
an LP solve, an Appro rounding pass, a Heu migration, a DynamicRR
bandit round, a simulated slot::

    from repro.telemetry import Tracer, use_tracer, render_summary

    tracer = Tracer()
    with use_tracer(tracer):
        run_offline(Appro(), instance, workload)
    print(render_summary(tracer.events()))

Instrumented code never imports a concrete tracer; it calls
:func:`get_tracer` and records through whatever is current.  The
default is :data:`NULL_TRACER`, whose operations are no-ops, so
untraced runs pay nothing measurable.  Sweeps enable tracing per
:class:`~repro.experiments.executor.RunSpec` (``--trace`` on the
experiment CLIs); each worker traces its own runs and
:func:`collect_sweep_trace` merges the fragments deterministically in
canonical spec order.
"""

from .export import (WALL_CLOCK_FIELDS, canonical_events,
                     collect_sweep_trace, read_jsonl, write_jsonl)
from .summary import (SpanStats, TraceSummary, render_summary,
                      summarize_events)
from .tracer import (NULL_TRACER, NullTracer, Tracer, get_tracer,
                     set_tracer, use_tracer)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SpanStats",
    "TraceSummary",
    "Tracer",
    "WALL_CLOCK_FIELDS",
    "canonical_events",
    "collect_sweep_trace",
    "get_tracer",
    "read_jsonl",
    "render_summary",
    "set_tracer",
    "summarize_events",
    "use_tracer",
    "write_jsonl",
]
