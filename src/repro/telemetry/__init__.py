"""Structured observability: spans, counters, and trace export.

The subsystem answers "where did the milliseconds go" for any run -
an LP solve, an Appro rounding pass, a Heu migration, a DynamicRR
bandit round, a simulated slot::

    from repro.telemetry import Tracer, use_tracer, render_summary

    tracer = Tracer()
    with use_tracer(tracer):
        run_offline(Appro(), instance, workload)
    print(render_summary(tracer.events()))

Instrumented code never imports a concrete tracer; it calls
:func:`get_tracer` and records through whatever is current.  The
default is :data:`NULL_TRACER`, whose operations are no-ops, so
untraced runs pay nothing measurable.  Sweeps enable tracing per
:class:`~repro.experiments.executor.RunSpec` (``--trace`` on the
experiment CLIs); each worker traces its own runs and
:func:`collect_sweep_trace` merges the fragments deterministically in
canonical spec order.

Beyond in-process tracing, the subsystem persists observability
*across* runs: :mod:`~repro.telemetry.ledger` condenses a sweep into a
:class:`RunManifest` (config hash, git rev, seeds, peak RSS, per-phase
wall-clock, headline metrics per algorithm) appended to a JSONL ledger
or exported as ``BENCH_<name>.json``; :mod:`~repro.telemetry.regression`
diffs two ledgers with tolerance gates (``python -m repro.experiments
bench-diff OLD NEW``); and :mod:`~repro.telemetry.progress` provides
the live stderr heartbeat behind the CLIs' ``--progress`` flag.

:mod:`~repro.telemetry.audit` adds the *decision* audit trail: a
canonical :class:`Journal` of every scheduling decision (lifecycle,
migrations, rounding admissions/rejections, bandit arm plays and
eliminations, station outages), an online :class:`InvariantMonitor`
checking the paper's invariants over that stream in ``strict`` or
``collect`` mode, and - via :mod:`~repro.telemetry.tracediff` - the
``trace-diff`` CLI that localizes the first divergent event between
two journals (``python -m repro.experiments trace-diff A B``).

:mod:`~repro.telemetry.profiling` is the performance-attribution
layer: a canonical :class:`ProfileDigest` per run (span-tree self/cum
time + call counts + domain counters joined onto their owning spans),
opt-in ``cProfile``/``tracemalloc`` deep capture with collapsed-stack
flamegraph export, and - via :mod:`~repro.telemetry.perfdiff` - the
``perf-diff`` CLI that localizes the worst regressed span between two
digests (``python -m repro.experiments perf-diff OLD NEW``).
"""

from .audit import (INVARIANTS, NULL_JOURNAL, AuditOutcome,
                    InvariantMonitor, Journal, NullJournal, Violation,
                    audit_records, collect_sweep_journal, get_journal,
                    set_journal, use_journal)
from .export import (WALL_CLOCK_FIELDS, canonical_events,
                     collect_sweep_trace, read_jsonl, write_jsonl)
from .ledger import (MANIFEST_SCHEMA, WALL_CLOCK_METRICS, RunManifest,
                     append_ledger, config_hash, git_revision,
                     latest_by_name, load_manifests,
                     manifest_from_sweeps, peak_rss_kb, read_ledger,
                     write_bench)
from .metrics import (EVENT_METRIC_MAP, NULL_REGISTRY, MetricsRegistry,
                      NullRegistry, StreamingHistogram, get_metrics,
                      set_metrics, use_metrics)
from .perfdiff import diff_profile_sets
from .profiling import (COUNTER_OWNERS, DIGEST_SCHEMA,
                        PROFILE_SET_SCHEMA, ProfileDigest, SpanProfile,
                        canonical_digest, collect_sweep_profiles,
                        digest_from_events, folded_from_digest,
                        folded_from_stats, load_profile_set,
                        merge_digests, merge_memory, merge_stats,
                        render_digest, render_memory_top,
                        write_folded, write_profile_set)
from .progress import ProgressReporter
from .regression import (DEFAULT_METRIC_TOL, DEFAULT_WALL_TOL, Delta,
                         DiffReport, diff_ledgers, diff_manifests)
from .summary import (SpanStats, TraceSummary, render_summary,
                      summarize_events)
from .tracer import (NULL_TRACER, NullTracer, Tracer, get_tracer,
                     set_tracer, use_tracer)

__all__ = [
    "AuditOutcome",
    "COUNTER_OWNERS",
    "DEFAULT_METRIC_TOL",
    "DIGEST_SCHEMA",
    "PROFILE_SET_SCHEMA",
    "ProfileDigest",
    "SpanProfile",
    "DEFAULT_WALL_TOL",
    "Delta",
    "DiffReport",
    "EVENT_METRIC_MAP",
    "INVARIANTS",
    "InvariantMonitor",
    "Journal",
    "MANIFEST_SCHEMA",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullJournal",
    "NullRegistry",
    "NullTracer",
    "StreamingHistogram",
    "ProgressReporter",
    "RunManifest",
    "SpanStats",
    "TraceSummary",
    "Tracer",
    "WALL_CLOCK_FIELDS",
    "WALL_CLOCK_METRICS",
    "Violation",
    "append_ledger",
    "audit_records",
    "canonical_digest",
    "canonical_events",
    "collect_sweep_journal",
    "collect_sweep_profiles",
    "collect_sweep_trace",
    "config_hash",
    "digest_from_events",
    "get_journal",
    "get_metrics",
    "diff_ledgers",
    "diff_manifests",
    "diff_profile_sets",
    "folded_from_digest",
    "folded_from_stats",
    "get_tracer",
    "git_revision",
    "latest_by_name",
    "load_manifests",
    "load_profile_set",
    "manifest_from_sweeps",
    "merge_digests",
    "merge_memory",
    "merge_stats",
    "peak_rss_kb",
    "read_jsonl",
    "read_ledger",
    "render_digest",
    "render_memory_top",
    "render_summary",
    "set_journal",
    "set_metrics",
    "set_tracer",
    "summarize_events",
    "use_journal",
    "use_metrics",
    "use_tracer",
    "write_bench",
    "write_folded",
    "write_jsonl",
    "write_profile_set",
]
