"""Trace export: JSONL persistence, canonicalisation, sweep merging.

A *trace* is the flat event list produced by
:meth:`repro.telemetry.tracer.Tracer.events`.  This module writes and
reads traces as JSON Lines (one event per line - the format every
trace viewer and ``jq`` pipeline can consume), strips wall-clock
fields for determinism comparisons, and merges the per-run traces a
parallel sweep produces into one stream ordered by canonical RunSpec
position.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Sequence, Union

from ..exceptions import ConfigurationError

#: Event fields measured from the executing machine's clock.  They are
#: the only fields allowed to differ between two executions of the same
#: deterministic run (serial vs parallel, this machine vs another).
WALL_CLOCK_FIELDS = ("start_s", "duration_s")


def canonical_events(events: Iterable[Dict[str, Any]]
                     ) -> List[Dict[str, Any]]:
    """A trace with wall-clock fields removed.

    Two executions of the same deterministic run must produce *equal*
    canonical traces - the property the serial/parallel equivalence
    tests assert.  Input events are not mutated.
    """
    out: List[Dict[str, Any]] = []
    for event in events:
        out.append({key: value for key, value in event.items()
                    if key not in WALL_CLOCK_FIELDS})
    return out


def write_jsonl(path: Union[str, Path],
                events: Iterable[Dict[str, Any]]) -> Path:
    """Write a trace as JSON Lines; returns the resolved path.

    Parent directories are created as needed.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
    return target


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into an event list.

    Raises:
        ConfigurationError: on a line that is not a JSON object.
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON: {error}") from error
            if not isinstance(event, dict):
                raise ConfigurationError(
                    f"{path}:{lineno}: trace events must be objects, "
                    f"got {type(event).__name__}")
            events.append(event)
    return events


def collect_sweep_trace(records: Sequence[Any]) -> List[Dict[str, Any]]:
    """Merge the per-run traces of a sweep into one event stream.

    Each record (duck-typed: ``trace`` / ``algorithm`` / ``x`` /
    ``seed`` attributes, i.e. a :class:`~repro.sim.results.RunRecord`)
    contributes its events annotated with the record's canonical
    position and identity.  Records are visited in the order given -
    the canonical RunSpec order the executor guarantees - so the merged
    stream is deterministic no matter which worker produced which run.
    Untraced records contribute nothing.
    """
    merged: List[Dict[str, Any]] = []
    for run_index, record in enumerate(records):
        trace = getattr(record, "trace", None)
        if not trace:
            continue
        for event in trace:
            annotated = dict(event)
            annotated["run"] = run_index
            annotated["algorithm"] = record.algorithm
            annotated["x"] = record.x
            annotated["seed"] = record.seed
            merged.append(annotated)
    return merged
