"""Live sweep progress: an opt-in stderr heartbeat.

A multi-minute parallel sweep is silent until it finishes; a
:class:`ProgressReporter` turns completions into periodic one-line
heartbeats::

    [fig4] 36/96 specs (37.5%) | 4.1 spec/s | ETA 15s | phase=fig4

The reporter is **observation only**: it never touches a spec, a
record, or any RNG stream, so results are byte-identical with progress
on or off (the executor tests assert exactly that).  Both executor
backends drive it - the serial backend after every run, the process
backend as chunks complete - and the experiment CLIs expose it as
``--progress``.

Output goes to ``stderr`` by default so heartbeats never corrupt
piped tables, traces, or exported CSV on ``stdout``.  Emission is
throttled to one line per ``min_interval_s`` (the first and final
updates always print); tests inject a fake clock and a ``StringIO``
stream.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from ..exceptions import ConfigurationError


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds or seconds == float("inf"):
        return "?"
    seconds = int(round(seconds))
    if seconds < 60:
        return f"{seconds}s"
    if seconds < 3600:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


class ProgressReporter:
    """Counts completed specs and emits throttled heartbeat lines.

    Args:
        stream: sink for heartbeat lines (``sys.stderr`` when None).
        label: prefix identifying the sweep (``[label]``).
        min_interval_s: minimum seconds between heartbeats (0 emits on
            every advance - useful in tests).
        clock: monotonic time source; injectable for tests.

    A reporter is reusable: each :meth:`start` begins a fresh cycle
    (the experiment CLIs reuse one reporter across figures, relabelling
    the phase per figure).
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 label: str = "sweep",
                 min_interval_s: float = 0.5,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if min_interval_s < 0:
            raise ConfigurationError(
                f"min_interval_s must be >= 0, got {min_interval_s}")
        self._stream = stream
        self._label = label
        self._min_interval_s = min_interval_s
        self._clock = clock
        self._total = 0
        self._done = 0
        self._phase: Optional[str] = None
        self._started_at = 0.0
        self._last_emit: Optional[float] = None
        self._lines_emitted = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, total: int, phase: Optional[str] = None) -> None:
        """Begin a cycle of ``total`` specs; emits the opening line.

        The phase label persists across cycles unless a new one is
        given here (callers like the figure CLIs set the phase before
        handing the reporter to the executor, which starts the cycle).
        """
        if total < 0:
            raise ConfigurationError(
                f"total must be >= 0, got {total}")
        self._total = total
        self._done = 0
        if phase is not None:
            self._phase = phase
        self._started_at = self._clock()
        self._last_emit = None
        self._emit(force=True)

    def set_phase(self, phase: Optional[str]) -> None:
        """Relabel the current phase (shown on subsequent heartbeats)."""
        self._phase = phase

    def advance(self, n: int = 1) -> None:
        """Record ``n`` more completed specs; maybe emit a heartbeat."""
        if n < 0:
            raise ConfigurationError(f"advance must be >= 0, got {n}")
        self._done += n
        self._emit(force=self._done >= self._total)

    def finish(self) -> None:
        """Emit the closing line (always prints)."""
        self._emit(force=True)

    # ------------------------------------------------------------------
    # Introspection (tests / callers)
    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        """Specs completed in the current cycle."""
        return self._done

    @property
    def total(self) -> int:
        """Specs expected in the current cycle."""
        return self._total

    @property
    def lines_emitted(self) -> int:
        """Heartbeat lines written since construction."""
        return self._lines_emitted

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit(self, force: bool = False) -> None:
        now = self._clock()
        if not force and self._last_emit is not None \
                and now - self._last_emit < self._min_interval_s:
            return
        self._last_emit = now
        elapsed = max(now - self._started_at, 0.0)
        percent = (100.0 * self._done / self._total
                   if self._total else 100.0)
        rate = self._done / elapsed if elapsed > 0 else 0.0
        remaining = self._total - self._done
        eta = remaining / rate if rate > 0 else float("inf")
        parts = [f"[{self._label}] {self._done}/{self._total} specs "
                 f"({percent:.1f}%)",
                 f"{rate:.1f} spec/s" if rate > 0 else "- spec/s",
                 f"ETA {_format_eta(eta) if remaining else '0s'}"]
        if self._phase:
            parts.append(f"phase={self._phase}")
        stream = self._stream if self._stream is not None \
            else sys.stderr
        stream.write(" | ".join(parts) + "\n")
        flush = getattr(stream, "flush", None)
        if flush is not None:
            flush()
        self._lines_emitted += 1
